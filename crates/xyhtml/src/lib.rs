//! XMLization of HTML.
//!
//! §1 of the paper: "Observe that the diff we describe here is for XML
//! documents. It can also be used for HTML documents by XMLizing them, a
//! relatively easy task that mostly consists in properly closing tags."
//! This crate is that task, done properly enough for real web pages:
//!
//! - tag and attribute names are lowercased;
//! - **void elements** (`<br>`, `<img>`, …) never take children;
//! - **implied end tags** are inserted (`<p>` closed by the next block
//!   element, `<li>` by the next `<li>`, table cells by the next cell/row…);
//! - attributes may be unquoted (`width=100`) or bare (`disabled`);
//! - the common HTML entities expand; unknown ones survive literally;
//! - `<script>` and `<style>` contents are raw text;
//! - comments and the doctype are skipped, stray close tags are dropped,
//!   everything still open at EOF is closed;
//! - multiple top-level nodes are wrapped in a synthesized `<html>` root so
//!   the result is always a well-formed [`xytree::Document`].
//!
//! ```
//! use xyhtml::htmlize;
//!
//! let doc = htmlize("<ul><li>one<li>two<br></ul>");
//! assert_eq!(doc.to_xml(), "<ul><li>one</li><li>two<br/></li></ul>");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entities;
mod rules;

pub use rules::{closes_implicitly, is_void};

use xytree::{Document, NodeId, NodeKind, Tree};

/// Convert (possibly messy) HTML into a well-formed XML document. This is
/// infallible by design: crawled HTML is never rejected, only repaired.
pub fn htmlize(html: &str) -> Document {
    Parser::new(html).run()
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
    tree: Tree,
    /// Open elements: (node, lowercased tag).
    stack: Vec<(NodeId, String)>,
    text_buf: String,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            input,
            pos: 0,
            tree: Tree::with_capacity(input.len() / 24 + 4),
            stack: Vec::new(),
            text_buf: String::new(),
        }
    }

    fn run(mut self) -> Document {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                self.flush_text();
                self.markup();
            } else {
                self.text();
            }
        }
        self.flush_text();
        let mut tree = self.tree;
        ensure_single_root(&mut tree);
        Document::from_tree(tree)
    }

    fn current_parent(&self) -> NodeId {
        self.stack.last().map(|&(n, _)| n).unwrap_or_else(|| self.tree.root())
    }

    fn text(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        entities::expand_into(&self.input[start..self.pos], &mut self.text_buf);
    }

    fn flush_text(&mut self) {
        if self.text_buf.is_empty() {
            return;
        }
        let text = std::mem::take(&mut self.text_buf);
        if text.chars().all(char::is_whitespace) {
            return;
        }
        let parent = self.current_parent();
        if let Some(last) = self.tree.last_child(parent) {
            if let NodeKind::Text(prev) = self.tree.kind_mut(last) {
                prev.push_str(&text);
                return;
            }
        }
        let n = self.tree.new_text(text);
        self.tree.append_child(parent, n);
    }

    fn markup(&mut self) {
        let rest = &self.input[self.pos..];
        if rest.starts_with("<!--") {
            self.pos += match rest.find("-->") {
                Some(i) => i + 3,
                None => rest.len(),
            };
        } else if rest.starts_with("<!") || rest.starts_with("<?") {
            // Doctype, CDATA-ish junk, processing instructions: skip to '>'.
            self.pos += rest.find('>').map(|i| i + 1).unwrap_or(rest.len());
        } else if rest.starts_with("</") {
            self.close_tag();
        } else if rest.len() > 1 && rest.as_bytes()[1].is_ascii_alphabetic() {
            self.open_tag();
        } else {
            // A bare '<' in text (e.g. "a < b"): keep it literally.
            self.text_buf.push('<');
            self.pos += 1;
        }
    }

    fn read_name(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'-' || b == b':' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.input[start..self.pos].to_lowercase()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn open_tag(&mut self) {
        self.pos += 1; // <
        let name = self.read_name();
        let mut attrs: Vec<(String, String)> = Vec::new();
        let mut self_closed = false;
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                None => break,
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'>') {
                        self.pos += 1;
                        self_closed = true;
                        break;
                    }
                }
                Some(_) => {
                    if let Some(attr) = self.read_attribute() {
                        // Crawled HTML contains attribute "names" that are
                        // not XML names (`<a !>`, `<a "x"=y>`); dropping
                        // them is the only repair that keeps the output
                        // well-formed.
                        if is_xml_name(&attr.0) && !attrs.iter().any(|(k, _)| *k == attr.0) {
                            attrs.push(attr);
                        }
                    } else {
                        self.pos += 1; // unparseable byte inside the tag
                    }
                }
            }
        }

        // Implied end tags: close open elements this tag terminates.
        while let Some((_, open)) = self.stack.last() {
            if closes_implicitly(open, &name) {
                self.stack.pop();
            } else {
                break;
            }
        }

        let parent = self.current_parent();
        let node = self.tree.new_element(name.clone());
        for (k, v) in attrs {
            self.tree.element_mut(node).unwrap().set_attr(k, v);
        }
        self.tree.append_child(parent, node);

        if is_void(&name) || self_closed {
            return;
        }
        if name == "script" || name == "style" {
            self.raw_text(node, &name);
            return;
        }
        self.stack.push((node, name));
    }

    /// Attribute forms: `k="v"`, `k='v'`, `k=v`, bare `k`.
    fn read_attribute(&mut self) -> Option<(String, String)> {
        let name = {
            let start = self.pos;
            while self.pos < self.bytes.len() {
                let b = self.bytes[self.pos];
                if b.is_ascii_whitespace() || matches!(b, b'=' | b'>' | b'/') {
                    break;
                }
                self.pos += 1;
            }
            if self.pos == start {
                return None;
            }
            self.input[start..self.pos].to_lowercase()
        };
        self.skip_ws();
        if self.bytes.get(self.pos) != Some(&b'=') {
            return Some((name, String::new())); // bare attribute
        }
        self.pos += 1;
        self.skip_ws();
        let raw = match self.bytes.get(self.pos) {
            Some(&q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != q {
                    self.pos += 1;
                }
                let v = &self.input[start..self.pos];
                if self.pos < self.bytes.len() {
                    self.pos += 1; // closing quote
                }
                v
            }
            _ => {
                let start = self.pos;
                while self.pos < self.bytes.len() {
                    let b = self.bytes[self.pos];
                    if b.is_ascii_whitespace() || b == b'>' {
                        break;
                    }
                    self.pos += 1;
                }
                &self.input[start..self.pos]
            }
        };
        let mut value = String::with_capacity(raw.len());
        entities::expand_into(raw, &mut value);
        Some((name, value))
    }

    fn close_tag(&mut self) {
        self.pos += 2; // </
        let name = self.read_name();
        let rest = &self.input[self.pos..];
        self.pos += rest.find('>').map(|i| i + 1).unwrap_or(rest.len());
        // Close up to the matching open element; drop the close tag entirely
        // if nothing matches (stray `</b>`).
        if let Some(depth) = self.stack.iter().rposition(|(_, n)| *n == name) {
            self.stack.truncate(depth);
        }
    }

    /// `<script>`/`<style>`: everything until the matching close tag is one
    /// text node, no entity expansion, no nested markup.
    fn raw_text(&mut self, node: NodeId, name: &str) {
        let close = format!("</{name}");
        let rest = &self.input[self.pos..];
        // Case-insensitive search on bytes: the close tag is pure ASCII, and
        // Unicode lowercasing of `rest` would shift byte offsets (e.g. İ).
        let end = find_ascii_ci(rest.as_bytes(), close.as_bytes()).unwrap_or(rest.len());
        let content = &rest[..end];
        if !content.trim().is_empty() {
            let t = self.tree.new_text(content.to_string());
            self.tree.append_child(node, t);
        }
        self.pos += end;
        let rest = &self.input[self.pos..];
        self.pos += rest.find('>').map(|i| i + 1).unwrap_or(rest.len());
    }
}

/// Position of the first ASCII-case-insensitive occurrence of `needle`
/// (ASCII) in `hay`.
fn find_ascii_ci(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    hay.windows(needle.len()).position(|w| {
        w.iter()
            .zip(needle)
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    })
}

/// A usable XML attribute name: starts with a letter or `_`, continues with
/// name characters.
fn is_xml_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
}

/// Guarantee exactly one root element, synthesizing `<html>` if needed.
fn ensure_single_root(tree: &mut Tree) {
    let root = tree.root();
    let elements: Vec<NodeId> = tree
        .children(root)
        .filter(|&c| tree.kind(c).is_element())
        .collect();
    let top_level: Vec<NodeId> = tree.children(root).collect();
    let needs_wrapper = elements.len() != 1 || top_level.len() != elements.len();
    if top_level.is_empty() {
        let html = tree.new_element("html");
        tree.append_child(root, html);
        return;
    }
    if !needs_wrapper {
        return;
    }
    let html = tree.new_element("html");
    for c in top_level {
        tree.detach(c);
        tree.append_child(html, c);
    }
    tree.append_child(root, html);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(html: &str) -> String {
        htmlize(html).to_xml()
    }

    #[test]
    fn well_formed_passes_through() {
        assert_eq!(x("<div><p>hi</p></div>"), "<div><p>hi</p></div>");
    }

    #[test]
    fn tags_are_lowercased() {
        assert_eq!(x("<DIV CLASS=\"a\"><P>hi</P></DIV>"), "<div class=\"a\"><p>hi</p></div>");
    }

    #[test]
    fn void_elements_self_close() {
        assert_eq!(x("<div><br><img src=\"x.png\"><hr></div>"),
            "<div><br/><img src=\"x.png\"/><hr/></div>");
    }

    #[test]
    fn unclosed_paragraphs() {
        assert_eq!(x("<div><p>one<p>two</div>"), "<div><p>one</p><p>two</p></div>");
    }

    #[test]
    fn list_items_imply_close() {
        assert_eq!(x("<ul><li>a<li>b<li>c</ul>"), "<ul><li>a</li><li>b</li><li>c</li></ul>");
    }

    #[test]
    fn table_cells_imply_close() {
        assert_eq!(
            x("<table><tr><td>1<td>2<tr><td>3</table>"),
            "<table><tr><td>1</td><td>2</td></tr><tr><td>3</td></tr></table>"
        );
    }

    #[test]
    fn p_closed_by_block_elements() {
        assert_eq!(x("<p>intro<div>body</div>"), "<html><p>intro</p><div>body</div></html>");
    }

    #[test]
    fn unquoted_and_bare_attributes() {
        assert_eq!(
            x("<input type=text disabled value='x'>"),
            "<input type=\"text\" disabled=\"\" value=\"x\"/>"
        );
    }

    #[test]
    fn entities_expand_and_unknown_survive() {
        assert_eq!(x("<p>a&nbsp;b &copy; &unknown; &amp;</p>"),
            "<p>a\u{a0}b © &amp;unknown; &amp;</p>");
    }

    #[test]
    fn script_content_is_raw() {
        assert_eq!(
            x("<div><script>if (a < b && c) { x(); }</script>after</div>"),
            "<div><script>if (a &lt; b &amp;&amp; c) { x(); }</script>after</div>"
        );
    }

    #[test]
    fn script_close_found_past_multibyte_lowercasing() {
        // U+0130 lowercases to two characters; byte-offset math over a
        // lowercased copy would drag "</s" into the script text.
        let html = "<div><SCRIPT>var s = \"\u{0130}\u{0130}\u{0130}\";</SCRIPT><p>after</p></div>";
        let doc = htmlize(html);
        let xml = doc.to_xml();
        assert!(xml.contains("İİİ\";</script><p>after</p>"), "{xml}");
        assert!(!xml.contains("&lt;/s"), "close tag leaked into content: {xml}");
    }

    #[test]
    fn comments_and_doctype_skipped() {
        assert_eq!(x("<!DOCTYPE html><!-- hi --><p>x</p>"), "<p>x</p>");
    }

    #[test]
    fn stray_close_tags_dropped() {
        assert_eq!(x("<div></b>text</div></div>"), "<div>text</div>");
    }

    #[test]
    fn unclosed_at_eof_are_closed() {
        assert_eq!(x("<div><b>bold"), "<div><b>bold</b></div>");
    }

    #[test]
    fn multiple_roots_get_wrapped() {
        assert_eq!(x("<p>a</p><p>b</p>"), "<html><p>a</p><p>b</p></html>");
        assert_eq!(x("hello <b>world</b>"), "<html>hello <b>world</b></html>");
    }

    #[test]
    fn empty_input_yields_empty_html() {
        assert_eq!(x(""), "<html/>");
        assert_eq!(x("   \n "), "<html/>");
    }

    #[test]
    fn bare_less_than_in_text() {
        assert_eq!(x("<p>a < b</p>"), "<p>a &lt; b</p>");
    }

    #[test]
    fn output_always_reparses_as_xml() {
        for nasty in [
            "<p>one<p>two<ul><li>x<li>y</ul><table><tr><td>z",
            "<<<>>>",
            "<a href=foo?bar=1&baz=2>link",
            "<b><i>cross</b>over</i>",
            "<script>while(i<10){}</script>",
        ] {
            let doc = htmlize(nasty);
            let xml = doc.to_xml();
            xytree::Document::parse(&xml)
                .unwrap_or_else(|e| panic!("{nasty:?} -> {xml:?} does not reparse: {e}"));
        }
    }

    #[test]
    fn htmlized_pages_diff_end_to_end() {
        // The paper's point: XMLize, then diff like any XML.
        let old = htmlize("<ul><li>camera<li>phone</ul>");
        let new = htmlize("<ul><li>camera<li>tablet<li>phone</ul>");
        let old_x = xydelta::XidDocument::assign_initial(old);
        let r = xydiff::diff(&old_x, &new, &xydiff::DiffOptions::default());
        let mut replay = old_x.clone();
        r.delta.apply_to(&mut replay).unwrap();
        assert_eq!(replay.doc.to_xml(), new.to_xml());
        assert_eq!(r.delta.counts().inserts, 1);
    }
}
