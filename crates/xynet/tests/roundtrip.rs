//! Socket-level tests of the network front: real `TcpStream` clients
//! speaking raw HTTP/1.1 against a [`NetServer`] on a loopback port.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xynet::{NetConfig, NetServer};
use xyserve::ServeConfig;

/// Write `raw` on a fresh connection and read the response(s) to EOF.
fn send_raw(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write");
    stream.shutdown(std::net::Shutdown::Write).expect("shutdown write");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

/// One request with `Connection: close`; returns (status, response text).
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let body = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let text = send_raw(addr, &raw);
    (parse_status(&text), text)
}

fn parse_status(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

fn response_body(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

/// Read exactly one response (headers + `Content-Length` body) from an open
/// keep-alive connection.
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "EOF mid-response: {:?}", String::from_utf8_lossy(&buf));
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let len: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string))
        .and_then(|v| v.trim().parse().ok())
        .expect("response has a Content-Length");
    while buf.len() < head_end + len {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "EOF mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(buf.len(), head_end + len, "over-read past one response");
    String::from_utf8_lossy(&buf).to_string()
}

fn start(net: NetConfig, serve: ServeConfig) -> NetServer {
    NetServer::start(net.with_io_timeout(Duration::from_secs(3)), serve).expect("start")
}

#[test]
fn ingest_roundtrip_stores_versions_and_serves_them_back() {
    let server = start(
        NetConfig::new(),
        ServeConfig::new().with_workers(2).unwrap().with_shards(2).unwrap(),
    );
    let addr = server.local_addr();

    let v0 = "<catalog><product>alpha</product></catalog>";
    let v1 = "<catalog><product>alpha</product><product>beta</product></catalog>";
    let (code, text) = request(addr, "POST", "/ingest/doc-a", Some(v0));
    assert_eq!(code, 200, "{text}");
    assert!(response_body(&text).contains("\"version\":0"), "{text}");
    assert!(response_body(&text).contains("\"ops\":0"), "first version runs no diff: {text}");
    assert!(
        response_body(&text).contains("\"durable\":false"),
        "no WAL configured, so the ack must say so: {text}"
    );

    let (code, text) = request(addr, "POST", "/ingest/doc-a", Some(v1));
    assert_eq!(code, 200, "{text}");
    let body = response_body(&text);
    assert!(body.contains("\"version\":1"), "{text}");
    assert!(!body.contains("\"ops\":0"), "an insert must produce delta ops: {text}");

    // Latest, explicit versions, and misses.
    let (code, text) = request(addr, "GET", "/doc/doc-a", None);
    assert_eq!(code, 200);
    assert_eq!(response_body(&text), v1, "latest version must be byte-identical");
    let (code, text) = request(addr, "GET", "/doc/doc-a/0", None);
    assert_eq!(code, 200);
    assert_eq!(response_body(&text), v0);
    assert_eq!(request(addr, "GET", "/doc/doc-a/7", None).0, 404);
    assert_eq!(request(addr, "GET", "/doc/ghost", None).0, 404);

    // A malformed snapshot dead-letters and reports as 422.
    let (code, text) = request(addr, "POST", "/ingest/doc-a", Some("<broken"));
    assert_eq!(code, 422, "{text}");
    assert!(response_body(&text).contains("parse error"), "{text}");

    let report = server.shutdown();
    assert!(report.ingest.is_balanced(), "{report:?}");
    assert_eq!(report.ingest.succeeded, 2);
    assert_eq!(report.ingest.dead_lettered, 1);
}

#[test]
fn typed_errors_for_bad_requests_and_bad_routes() {
    let server = start(
        NetConfig::new().with_max_body_bytes(64).with_max_head_bytes(512),
        ServeConfig::new().with_workers(1).unwrap(),
    );
    let addr = server.local_addr();

    assert_eq!(request(addr, "GET", "/nope", None).0, 404);
    let (code, text) = request(addr, "GET", "/ingest/k", None);
    assert_eq!(code, 405);
    assert!(text.contains("Allow: POST"), "{text}");
    assert_eq!(request(addr, "DELETE", "/metrics", None).0, 405);
    assert_eq!(request(addr, "POST", "/ingest/", Some("<d/>")).0, 404, "empty key");

    // Malformed request line.
    assert_eq!(parse_status(&send_raw(addr, "NONSENSE\r\n\r\n")), 400);
    // POST without Content-Length.
    let raw = "POST /ingest/k HTTP/1.1\r\nHost: t\r\n\r\n";
    assert_eq!(parse_status(&send_raw(addr, raw)), 411);
    // Body over the configured 64-byte limit is refused up front.
    let big = "x".repeat(65);
    let (code, text) = request(addr, "POST", "/ingest/k", Some(&big));
    assert_eq!(code, 413, "{text}");
    // Head over the configured 512-byte limit.
    let raw = format!("GET /healthz HTTP/1.1\r\nCookie: {}\r\n\r\n", "c".repeat(600));
    assert_eq!(parse_status(&send_raw(addr, &raw)), 431);
    // Unsupported HTTP version.
    assert_eq!(parse_status(&send_raw(addr, "GET /healthz HTTP/2.0\r\n\r\n")), 501);

    // Nothing reached the pipeline.
    let report = server.shutdown();
    assert_eq!(report.ingest.submitted, 0);
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let server = start(NetConfig::new(), ServeConfig::new().with_workers(1).unwrap());
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    for i in 0..3 {
        let body = format!("<d><v>{i}</v></d>");
        let raw = format!(
            "POST /ingest/ka HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        );
        stream.write_all(raw.as_bytes()).expect("write");
        let resp = read_one_response(&mut stream);
        assert_eq!(parse_status(&resp), 200, "{resp}");
        assert!(resp.contains(&format!("\"version\":{i}")), "{resp}");
        assert!(!resp.contains("Connection: close"), "keep-alive must stay open: {resp}");
    }
    // Same connection can still serve other routes.
    stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("write");
    let resp = read_one_response(&mut stream);
    assert_eq!(parse_status(&resp), 200);
    drop(stream);

    let report = server.shutdown();
    assert_eq!(report.ingest.succeeded, 3);
    assert_eq!(report.connections, 1, "one keep-alive connection served everything");
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    static HOLD: AtomicBool = AtomicBool::new(true);
    HOLD.store(true, Ordering::SeqCst);

    let server = Arc::new(start(
        NetConfig::new().with_http_workers(4).with_retry_after_secs(7),
        ServeConfig::new()
            .with_workers(1)
            .unwrap()
            .with_queue_capacity(1)
            .unwrap()
            .with_fault_hook(Arc::new(
            |key, _, _| {
                // Park the single worker while HOLD is up, but only for the
                // designated key so the release path drains instantly.
                if key == "block" {
                    while HOLD.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                false
            },
        )),
    ));
    let addr = server.local_addr();

    // Client A occupies the only ingest worker.
    let a = std::thread::spawn(move || request(addr, "POST", "/ingest/block", Some("<d/>")));
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.ingest().metrics().parse_time.count() < 1 {
        assert!(Instant::now() < deadline, "worker never picked up the blocking job");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Client B fills the 1-slot queue.
    let b = std::thread::spawn(move || request(addr, "POST", "/ingest/fill", Some("<d/>")));
    while server.ingest().metrics().enqueued.get() < 2 {
        assert!(Instant::now() < deadline, "second job never enqueued");
        std::thread::sleep(Duration::from_millis(2));
    }

    // The queue is provably full and the worker parked: shed deterministically.
    let (code, text) = request(addr, "POST", "/ingest/shed", Some("<d/>"));
    assert_eq!(code, 503, "{text}");
    assert!(text.contains("Retry-After: 7"), "{text}");

    HOLD.store(false, Ordering::SeqCst);
    assert_eq!(a.join().unwrap().0, 200);
    assert_eq!(b.join().unwrap().0, 200);

    // The shed key burned no sequence number: retrying it starts at seq 0.
    let (code, text) = request(addr, "POST", "/ingest/shed", Some("<d/>"));
    assert_eq!(code, 200, "{text}");
    assert!(response_body(&text).contains("\"seq\":0"), "{text}");

    assert_eq!(server.http_metrics().status_count(503), 1);
    let report = Arc::into_inner(server).unwrap().shutdown();
    assert!(report.ingest.is_balanced(), "{report:?}");
    assert_eq!(report.ingest.succeeded, 3);
}

#[test]
fn metrics_exposition_covers_both_layers() {
    let server = start(NetConfig::new(), ServeConfig::new().with_workers(1).unwrap());
    let addr = server.local_addr();
    request(addr, "POST", "/ingest/m", Some("<d/>"));
    let (code, text) = request(addr, "GET", "/metrics", None);
    assert_eq!(code, 200);
    assert!(text.contains("Content-Type: text/plain; version=0.0.4"), "{text}");
    let body = response_body(&text);
    // Ingest families...
    assert!(body.contains("# TYPE ingest_succeeded_total counter"), "{body}");
    assert!(body.contains("ingest_succeeded_total 1"), "{body}");
    // ...and HTTP families in the same document.
    assert!(body.contains("# TYPE http_requests_total counter"), "{body}");
    assert!(body.contains("http_requests_total{route=\"ingest\"} 1"), "{body}");
    assert!(body.contains("# TYPE http_request_seconds histogram"), "{body}");
    assert!(body.contains("http_responses_total{code=\"200\"} 1"), "{body}");
    drop(server);
}

/// Soft fd limit from `/proc/self/limits`, or `None` off Linux.
fn fd_budget() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// The reactor's reason to exist: one thread holding ≥1k idle keep-alive
/// connections while staying responsive, then draining them all loss-free.
/// The count is bounded by the process fd budget so constrained CI runners
/// degrade instead of erroring (10k+ is a real-hardware experiment, see
/// ROADMAP). The blocking front would need a thread per connection here.
#[test]
fn one_reactor_thread_sustains_1k_idle_keep_alive_connections() {
    // Keep a margin for the listener, poller, and test scaffolding.
    let target = fd_budget().map_or(1000, |b| b.saturating_sub(200)).min(1000);
    assert!(target >= 256, "fd budget too small to say anything useful");

    let server = start(
        NetConfig::new()
            .with_max_connections(target + 64)
            .with_shed_connections(target + 64)
            .with_idle_timeout(Duration::from_secs(60)),
        ServeConfig::new().with_workers(1).unwrap(),
    );
    let addr = server.local_addr();

    // Each connection completes one request and then sits idle, keep-alive.
    let mut idle = Vec::with_capacity(target);
    for i in 0..target {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("write");
        let resp = read_one_response(&mut stream);
        assert_eq!(parse_status(&resp), 200, "connection {i}: {resp}");
        idle.push(stream);
    }
    assert_eq!(server.http_metrics().active_connections.get(), target as u64);

    // Still responsive with every connection registered: a fresh client
    // runs a full ingest roundtrip...
    let (code, text) = request(addr, "POST", "/ingest/under-load", Some("<d><v>1</v></d>"));
    assert_eq!(code, 200, "{text}");
    // ...and an arbitrary long-idle connection still serves.
    let probe = &mut idle[target / 2];
    probe.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("write");
    assert_eq!(parse_status(&read_one_response(probe)), 200);

    let report = server.shutdown();
    assert!(report.ingest.is_balanced(), "{report:?}");
    assert_eq!(report.connections, target as u64 + 1);
    // The drain closed every idle connection: reads observe EOF.
    for (i, stream) in idle.iter_mut().enumerate() {
        let mut buf = [0u8; 64];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue, // tail of an earlier response
                Err(e) => panic!("connection {i}: drain should close cleanly, got {e}"),
            }
        }
    }
}

#[test]
fn admin_shutdown_drains_and_flips_health() {
    let server = start(NetConfig::new(), ServeConfig::new().with_workers(1).unwrap());
    let addr = server.local_addr();

    let (code, text) = request(addr, "GET", "/healthz", None);
    assert_eq!(code, 200);
    assert!(text.contains("\"status\":\"ok\""));
    assert_eq!(request(addr, "POST", "/ingest/d", Some("<d/>")).0, 200);

    assert!(!server.wait_for_shutdown_request(Duration::from_millis(10)));
    let (code, text) = request(addr, "POST", "/admin/shutdown", None);
    assert_eq!(code, 202, "{text}");
    assert!(text.contains("Connection: close"), "drain responses end their session");
    assert!(server.wait_for_shutdown_request(Duration::from_secs(5)));

    let report = server.shutdown();
    assert!(report.ingest.is_balanced(), "{report:?}");
    assert_eq!(report.ingest.succeeded, 1);
    assert!(report.requests >= 3);
}
