//! Differential protocol test: the event-driven reactor and the legacy
//! blocking front must be **byte-identical** on the wire.
//!
//! The corpus below is the socket-level request set the blocking front was
//! originally tested against (well-formed roundtrips, every typed error,
//! pipelined keep-alive), and each script runs twice — once against a
//! [`LegacyServer`], once against a [`NetServer`] — on fresh pipelines with
//! the same configuration. Any divergence in the raw response bytes fails
//! with the script name. `/metrics` is exercised for status only: its body
//! contains live histograms.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use xynet::legacy::LegacyServer;
use xynet::{NetConfig, NetServer};
use xyserve::ServeConfig;

/// One differential script: named raw writes on a single connection, sent
/// in order, then read to EOF.
struct Script {
    name: &'static str,
    writes: &'static [&'static str],
}

/// Scripts shared by both fronts. Bodies and keys are fixed so sequence
/// numbers, versions, and diff outcomes match run-to-run.
const CORPUS: &[Script] = &[
    Script {
        name: "healthz",
        writes: &["GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"],
    },
    Script {
        name: "malformed-request-line",
        writes: &["NONSENSE\r\n\r\n"],
    },
    Script {
        name: "missing-content-length",
        writes: &["POST /ingest/k HTTP/1.1\r\nHost: t\r\n\r\n"],
    },
    Script {
        name: "unsupported-version",
        writes: &["GET /healthz HTTP/2.0\r\n\r\n"],
    },
    Script {
        name: "unknown-route",
        writes: &["GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"],
    },
    Script {
        name: "method-not-allowed",
        writes: &[
            "GET /ingest/k HTTP/1.1\r\nHost: t\r\n\r\n",
            "DELETE /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        ],
    },
    Script {
        name: "empty-ingest-key",
        writes: &[
            "POST /ingest/ HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\nConnection: close\r\n\r\n<d/>",
        ],
    },
    Script {
        name: "ingest-then-fetch-pipelined",
        writes: &[
            "POST /ingest/diff-doc HTTP/1.1\r\nHost: t\r\nContent-Length: 26\r\n\r\n<c><p>alpha</p></c>\n\n\n\n\n\n",
            "POST /ingest/diff-doc HTTP/1.1\r\nHost: t\r\nContent-Length: 32\r\n\r\n<c><p>alpha</p><p>beta</p></c>\n\n",
            "GET /doc/diff-doc HTTP/1.1\r\nHost: t\r\n\r\n",
            "GET /doc/diff-doc/0 HTTP/1.1\r\nHost: t\r\n\r\n",
            "GET /doc/diff-doc/9 HTTP/1.1\r\nHost: t\r\n\r\n",
            "GET /doc/ghost HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        ],
    },
    Script {
        name: "dead-letter-parse-error",
        writes: &[
            "POST /ingest/broken HTTP/1.1\r\nHost: t\r\nContent-Length: 7\r\nConnection: close\r\n\r\n<broken",
        ],
    },
    Script {
        name: "expect-100-continue",
        writes: &[
            "POST /ingest/cont HTTP/1.1\r\nHost: t\r\nExpect: 100-continue\r\nContent-Length: 4\r\nConnection: close\r\n\r\n",
            "<d/>",
        ],
    },
];

/// Scripts whose config needs tight limits (64-byte bodies, 512-byte heads).
const LIMIT_CORPUS: &[Script] = &[
    Script {
        name: "body-too-large",
        writes: &[
            "POST /ingest/fat HTTP/1.1\r\nHost: t\r\nContent-Length: 65\r\n\r\n",
        ],
    },
    Script {
        name: "head-too-large",
        // 600 'c's, beyond the 512-byte head limit.
        writes: &[
            "GET /healthz HTTP/1.1\r\nCookie: cccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccc: v\r\n\r\n",
        ],
    },
];

/// Run one script against `addr` and collect the entire response stream.
fn run_script(addr: SocketAddr, script: &Script) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    for (i, chunk) in script.writes.iter().enumerate() {
        if stream.write_all(chunk.as_bytes()).is_err() {
            // The server may already have rejected and closed (e.g. 413 on
            // the declared length): stop writing, what's readable decides.
            break;
        }
        // Force each write onto the wire as its own packet-ish unit.
        if i + 1 < script.writes.len() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out); // reset after 413/431 is fine
    out
}

fn tight_config() -> NetConfig {
    NetConfig::new().with_max_body_bytes(64).with_max_head_bytes(512)
}

fn serve_config() -> ServeConfig {
    ServeConfig::new().with_workers(2).expect("valid worker count")
}

/// Drive `corpus` through both fronts and demand byte equality per script.
fn run_differential(corpus: &[Script], net: impl Fn() -> NetConfig) {
    let legacy = LegacyServer::start(net(), serve_config()).expect("legacy start");
    let reactor = NetServer::start(net(), serve_config()).expect("reactor start");

    for script in corpus {
        let old = run_script(legacy.local_addr(), script);
        let new = run_script(reactor.local_addr(), script);
        assert_eq!(
            String::from_utf8_lossy(&old),
            String::from_utf8_lossy(&new),
            "script {:?} diverged between the blocking front and the reactor",
            script.name,
        );
    }

    let old = legacy.shutdown();
    let new = reactor.shutdown();
    assert!(old.ingest.is_balanced(), "{old:?}");
    assert!(new.ingest.is_balanced(), "{new:?}");
    assert_eq!(old.ingest.succeeded, new.ingest.succeeded, "fronts disagree on successes");
    assert_eq!(
        old.ingest.dead_lettered, new.ingest.dead_lettered,
        "fronts disagree on dead letters"
    );
}

#[test]
fn corpus_is_byte_identical_across_fronts() {
    run_differential(CORPUS, NetConfig::new);
}

#[test]
fn limit_corpus_is_byte_identical_across_fronts() {
    run_differential(LIMIT_CORPUS, tight_config);
}

/// `/metrics` bodies contain live histograms; both fronts must still agree
/// on status, content type, and the families present.
#[test]
fn metrics_route_agrees_on_shape() {
    let legacy = LegacyServer::start(NetConfig::new(), serve_config()).expect("legacy start");
    let reactor = NetServer::start(NetConfig::new(), serve_config()).expect("reactor start");
    let script = Script {
        name: "metrics",
        writes: &["GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"],
    };
    let old = String::from_utf8(run_script(legacy.local_addr(), &script)).expect("utf8");
    let new = String::from_utf8(run_script(reactor.local_addr(), &script)).expect("utf8");
    for text in [&old, &new] {
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: text/plain; version=0.0.4"), "{text}");
        assert!(text.contains("# TYPE ingest_succeeded_total counter"), "{text}");
        assert!(text.contains("# TYPE http_requests_total counter"), "{text}");
    }
    // The reactor additionally exports its loop families; the legacy front
    // renders them too (same registry), so the family set matches.
    let families = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(families(&old), families(&new), "metric family sets diverged");
    drop(legacy.shutdown());
    drop(reactor.shutdown());
}
