//! `xynet` — the HTTP/1.1 network front for the `xyserve` ingestion
//! pipeline.
//!
//! The paper's Figure 1 architecture ends at a service boundary: crawlers
//! push snapshots in, subscribers get alerts out. `xyserve` implements the
//! loop; this crate puts a wire protocol in front of it as an
//! **event-driven reactor**: one thread multiplexes every connection over
//! nonblocking sockets behind a readiness seam ([`driver::Driver`]) with
//! three backends — epoll (Linux), a portable `poll(2)` fallback, and a
//! deterministic in-memory simulator for tests. Per-connection state
//! machines ([`machine`]) drive the incremental HTTP parser ([`http`]);
//! only complete requests reach the xyserve scheduler, so idle keep-alive
//! clients cost a file descriptor each, not a thread.
//!
//! ```no_run
//! use xynet::{NetConfig, NetServer};
//! use xyserve::ServeConfig;
//!
//! let server = NetServer::start(
//!     NetConfig::new().with_addr("127.0.0.1:8080"),
//!     ServeConfig::new().with_workers(4).expect("valid worker count"),
//! )
//! .expect("bind failed");
//! println!("listening on {} ({})", server.local_addr(), server.backend());
//! // POST /ingest/{key} bodies flow through the diff pipeline; when a
//! // drain is requested (POST /admin/shutdown), finish loss-free:
//! server.wait_for_shutdown_request(std::time::Duration::MAX);
//! let report = server.shutdown();
//! assert!(report.ingest.is_balanced());
//! ```
//!
//! Design notes live in `DESIGN.md` §9 (routes, backpressure) and §15
//! (reactor architecture) at the repository root.

#![forbid(unsafe_code)]

pub mod config;
pub mod driver;
pub mod http;
pub mod legacy;
mod machine;
pub mod metrics;
pub mod reactor;
mod router;
pub mod server;
pub mod sim;
pub mod sysdrv;

pub use config::NetConfig;
pub use driver::{Driver, Event, Interest, Token, Transport, Waker};
pub use metrics::HttpMetrics;
pub use reactor::{FrontHandle, Reactor};
pub use server::{NetServer, NetShutdownReport, NetStartError};
pub use sim::{SimClient, SimDriver, SimNet};
pub use sysdrv::SysDriver;
