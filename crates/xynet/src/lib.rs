//! `xynet` — the HTTP/1.1 network front for the `xyserve` ingestion
//! pipeline.
//!
//! The paper's Figure 1 architecture ends at a service boundary: crawlers
//! push snapshots in, subscribers get alerts out. `xyserve` implements the
//! loop; this crate puts a wire protocol in front of it using nothing but
//! `std::net` — a blocking acceptor, a bounded connection queue (the same
//! [`xyserve::queue::Queue`] the pipeline uses for jobs), and a pool of HTTP
//! worker threads.
//!
//! ```no_run
//! use xynet::{NetConfig, NetServer};
//! use xyserve::ServeConfig;
//!
//! let server = NetServer::start(
//!     NetConfig::new().with_addr("127.0.0.1:8080"),
//!     ServeConfig::new().with_workers(4).expect("valid worker count"),
//! )
//! .expect("bind failed");
//! println!("listening on {}", server.local_addr());
//! // POST /ingest/{key} bodies flow through the diff pipeline; when a
//! // drain is requested (POST /admin/shutdown), finish loss-free:
//! server.wait_for_shutdown_request(std::time::Duration::MAX);
//! let report = server.shutdown();
//! assert!(report.ingest.is_balanced());
//! ```
//!
//! Design notes live in `DESIGN.md` §9 at the repository root.

#![forbid(unsafe_code)]

pub mod config;
pub mod http;
pub mod metrics;
pub mod server;

pub use config::NetConfig;
pub use metrics::HttpMetrics;
pub use server::{NetServer, NetShutdownReport, NetStartError};
