//! A minimal, dependency-free HTTP/1.1 request reader and response writer.
//!
//! Only what the ingest front needs: request line + headers +
//! `Content-Length` bodies, keep-alive and pipelining, strict size limits
//! that map to typed errors (`400`/`411`/`413`/`431`/`501`). Reads are
//! incremental — a request arriving one byte at a time parses identically to
//! one arriving in a single packet — and leftover bytes after a body are
//! retained for the next pipelined request on the connection.

use std::io::{self, Read, Write};

/// Size limits enforced while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (terminator included).
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
}

/// Why a request could not be read, each mapping to one response status.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (including read timeouts); no response possible.
    Io(io::Error),
    /// Syntactically invalid request → `400`.
    BadRequest(String),
    /// Body-bearing request without a `Content-Length` → `411`.
    LengthRequired,
    /// Declared `Content-Length` exceeds the limit → `413`.
    PayloadTooLarge(usize),
    /// Request head exceeds the limit → `431`.
    HeadersTooLarge,
    /// Syntactically valid but unsupported (e.g. chunked encoding) → `501`.
    Unsupported(&'static str),
}

impl HttpError {
    /// The response status this error maps to (0 for I/O errors, where no
    /// response can be written).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Io(_) => 0,
            HttpError::BadRequest(_) => 400,
            HttpError::LengthRequired => 411,
            HttpError::PayloadTooLarge(_) => 413,
            HttpError::HeadersTooLarge => 431,
            HttpError::Unsupported(_) => 501,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::BadRequest(why) => write!(f, "malformed request: {why}"),
            HttpError::LengthRequired => write!(f, "Content-Length is required"),
            HttpError::PayloadTooLarge(n) => write!(f, "request body of {n} bytes is too large"),
            HttpError::HeadersTooLarge => write!(f, "request head is too large"),
            HttpError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed request head: everything before the body.
#[derive(Debug)]
pub struct Head {
    /// Request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent, including any query string.
    pub path: String,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default; HTTP/1.0 opts in via `Connection: keep-alive`).
    pub keep_alive: bool,
    /// Whether the client sent `Expect: 100-continue` and is waiting for
    /// an interim response before transmitting the body.
    pub expects_continue: bool,
    content_length: Option<usize>,
}

impl Head {
    /// First value of `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The parsed `Content-Length`, when one was sent.
    pub fn content_length(&self) -> Option<usize> {
        self.content_length
    }

    /// The request path with any query string stripped.
    pub fn route_path(&self) -> &str {
        self.path.split('?').next().unwrap_or("")
    }
}

/// Buffered request reader over one connection. Owns the unconsumed tail of
/// the stream so pipelined requests and keep-alive sequencing work.
pub struct Conn<R: Read> {
    inner: R,
    /// Bytes read from the socket but not yet consumed by a request.
    buf: Vec<u8>,
}

const READ_CHUNK: usize = 4096;

impl<R: Read> Conn<R> {
    /// Wrap a readable stream.
    pub fn new(inner: R) -> Conn<R> {
        Conn { inner, buf: Vec::new() }
    }

    /// The wrapped stream, for writing responses between requests (requests
    /// and responses on one connection are strictly sequential).
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Read and parse one request head. `Ok(None)` means the peer closed
    /// the connection cleanly between requests; bytes followed by EOF mid-
    /// head are a [`HttpError::BadRequest`].
    pub fn read_head(&mut self, limits: &Limits) -> Result<Option<Head>, HttpError> {
        let end = loop {
            if let Some(end) = find_head_end(&self.buf) {
                break end;
            }
            if self.buf.len() > limits.max_head_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            if self.fill()? == 0 {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("connection closed mid-head".to_string()));
            }
        };
        if end > limits.max_head_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        let head_bytes: Vec<u8> = self.buf.drain(..end).collect();
        parse_head(&head_bytes).map(Some)
    }

    /// Read exactly `len` body bytes (buffered tail first, then the socket).
    pub fn read_body(&mut self, len: usize) -> Result<Vec<u8>, HttpError> {
        while self.buf.len() < len {
            if self.fill()? == 0 {
                return Err(HttpError::BadRequest("connection closed mid-body".to_string()));
            }
        }
        Ok(self.buf.drain(..len).collect())
    }

    /// Convenience for tests and simple callers: one full request, body
    /// checked against `limits` and `411` enforced for `POST`/`PUT`.
    pub fn next_request(
        &mut self,
        limits: &Limits,
    ) -> Result<Option<(Head, Vec<u8>)>, HttpError> {
        let Some(head) = self.read_head(limits)? else {
            return Ok(None);
        };
        let len = body_length(&head, limits)?;
        let body = self.read_body(len)?;
        Ok(Some((head, body)))
    }

    /// One `read` into the buffer; returns the byte count (0 = EOF).
    fn fill(&mut self) -> Result<usize, HttpError> {
        let mut chunk = [0u8; READ_CHUNK];
        let n = self.inner.read(&mut chunk).map_err(HttpError::Io)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }
}

/// Validate the body-related headers of `head` and return how many body
/// bytes to read: enforces `411` for body-bearing methods without a length
/// and `413` against the configured limit.
pub fn body_length(head: &Head, limits: &Limits) -> Result<usize, HttpError> {
    match head.content_length() {
        Some(n) if n > limits.max_body_bytes => Err(HttpError::PayloadTooLarge(n)),
        Some(n) => Ok(n),
        None if matches!(head.method.as_str(), "POST" | "PUT" | "PATCH") => {
            Err(HttpError::LengthRequired)
        }
        None => Ok(0),
    }
}

/// Byte offset one past the `\r\n\r\n` head terminator, if present.
/// Shared with the reactor's push-parser state machine.
pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Parse a complete request head (everything up to and including the blank
/// line). Shared with the reactor's push-parser state machine.
pub(crate) fn parse_head(bytes: &[u8]) -> Result<Head, HttpError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8".to_string()))?;
    let mut lines = text.split("\r\n");
    let request_line =
        lines.next().ok_or_else(|| HttpError::BadRequest("empty request".to_string()))?;

    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!("bad method {method:?}")));
    }
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest(format!("bad request target {path:?}")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::Unsupported("HTTP version")),
    };

    let mut headers = Vec::new();
    let mut content_length = None;
    for line in lines {
        if line.is_empty() {
            continue; // the blank line terminating the head
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("bad header line {line:?}")));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest(format!("bad header name {name:?}")));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let n: usize = value
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {value:?}")))?;
            if content_length.replace(n).is_some_and(|prev| prev != n) {
                return Err(HttpError::BadRequest("conflicting Content-Length".to_string()));
            }
        }
        if name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity") {
            return Err(HttpError::Unsupported("transfer encoding"));
        }
        headers.push((name, value));
    }

    let head = Head {
        method: method.to_string(),
        path: path.to_string(),
        keep_alive: false,
        expects_continue: false,
        content_length,
        headers,
    };
    let connection = head.header("connection").map(str::to_ascii_lowercase);
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };
    let expects_continue = head
        .header("expect")
        .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"));
    Ok(Head { keep_alive, expects_continue, ..head })
}

/// Canonical reason phrase for the statuses this server emits.
pub fn status_reason(code: u16) -> &'static str {
    match code {
        100 => "Continue",
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one complete response. `extra` headers come after `Content-Type`
/// and `Content-Length`; `Connection: close` is added when `keep_alive` is
/// false.
pub fn write_response(
    w: &mut impl Write,
    code: u16,
    content_type: &str,
    body: &[u8],
    extra: &[(&str, String)],
    keep_alive: bool,
) -> io::Result<()> {
    let mut out = Vec::with_capacity(128 + body.len());
    write!(
        out,
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        status_reason(code),
        body.len(),
    )?;
    for (name, value) in extra {
        write!(out, "{name}: {value}\r\n")?;
    }
    if !keep_alive {
        out.extend_from_slice(b"Connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    w.write_all(&out)
}

/// Write the `100 Continue` interim response.
pub fn write_continue(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Yields the input `step` bytes per read, simulating split packets.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        step: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.step.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn conn(data: &str, step: usize) -> Conn<Trickle> {
        Conn::new(Trickle { data: data.as_bytes().to_vec(), pos: 0, step })
    }

    const LIMITS: Limits = Limits { max_head_bytes: 1024, max_body_bytes: 64 };

    #[test]
    fn request_parses_identically_at_every_split_granularity() {
        let raw = "POST /ingest/doc-1 HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n<d>hello</d>";
        // 11 bytes of declared body leaves one pipelined byte unconsumed.
        for step in 1..=raw.len() {
            let mut c = conn(raw, step);
            let (head, body) = c.next_request(&LIMITS).unwrap().unwrap();
            assert_eq!(head.method, "POST", "step {step}");
            assert_eq!(head.path, "/ingest/doc-1");
            assert_eq!(head.header("host"), Some("x"));
            assert!(head.keep_alive);
            assert_eq!(body, b"<d>hello</d>"[..11].to_vec());
        }
    }

    #[test]
    fn pipelined_requests_sequence_on_one_connection() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nPOST /ingest/k HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut c = conn(raw, 7);
        let (h1, b1) = c.next_request(&LIMITS).unwrap().unwrap();
        assert_eq!((h1.method.as_str(), h1.path.as_str()), ("GET", "/healthz"));
        assert!(b1.is_empty());
        let (h2, b2) = c.next_request(&LIMITS).unwrap().unwrap();
        assert_eq!(h2.path, "/ingest/k");
        assert_eq!(b2, b"abc");
        let (h3, _) = c.next_request(&LIMITS).unwrap().unwrap();
        assert_eq!(h3.path, "/metrics");
        assert!(!h3.keep_alive, "Connection: close must end keep-alive");
        assert!(c.next_request(&LIMITS).unwrap().is_none(), "clean EOF after the last request");
    }

    #[test]
    fn malformed_heads_are_bad_requests() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
            "GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
        ] {
            let err = conn(raw, 5).next_request(&LIMITS).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?} -> {err}");
        }
    }

    #[test]
    fn truncation_mid_head_and_mid_body_are_bad_requests() {
        let err = conn("GET /x HTTP/1.1\r\nHost:", 3).next_request(&LIMITS).unwrap_err();
        assert_eq!(err.status(), 400);
        let err =
            conn("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 3).next_request(&LIMITS);
        assert_eq!(err.unwrap_err().status(), 400);
    }

    #[test]
    fn size_limits_map_to_413_and_431() {
        let body = "POST /x HTTP/1.1\r\nContent-Length: 65\r\n\r\n";
        assert_eq!(conn(body, 9).next_request(&LIMITS).unwrap_err().status(), 413);

        let huge_head = format!("GET /x HTTP/1.1\r\nCookie: {}\r\n\r\n", "c".repeat(2000));
        assert_eq!(conn(&huge_head, 64).next_request(&LIMITS).unwrap_err().status(), 431);
    }

    #[test]
    fn post_without_length_requires_length() {
        let err = conn("POST /x HTTP/1.1\r\n\r\n", 5).next_request(&LIMITS).unwrap_err();
        assert_eq!(err.status(), 411);
        // ...but GET without a length is a normal zero-body request.
        assert!(conn("GET /x HTTP/1.1\r\n\r\n", 5).next_request(&LIMITS).unwrap().is_some());
    }

    #[test]
    fn keep_alive_defaults_follow_the_http_version() {
        let (h, _) = conn("GET / HTTP/1.1\r\n\r\n", 99).next_request(&LIMITS).unwrap().unwrap();
        assert!(h.keep_alive);
        let (h, _) = conn("GET / HTTP/1.0\r\n\r\n", 99).next_request(&LIMITS).unwrap().unwrap();
        assert!(!h.keep_alive);
        let raw = "GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n";
        let (h, _) = conn(raw, 99).next_request(&LIMITS).unwrap().unwrap();
        assert!(h.keep_alive, "HTTP/1.0 opts in via the Connection header");
    }

    #[test]
    fn unsupported_features_are_501() {
        let raw = "GET / HTTP/2.0\r\n\r\n";
        assert_eq!(conn(raw, 99).next_request(&LIMITS).unwrap_err().status(), 501);
        let raw = "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(conn(raw, 99).next_request(&LIMITS).unwrap_err().status(), 501);
    }

    #[test]
    fn expect_continue_and_query_strings_are_recognised() {
        let raw = "POST /ingest/k?debug=1 HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nhi";
        let (h, body) = conn(raw, 4).next_request(&LIMITS).unwrap().unwrap();
        assert!(h.expects_continue);
        assert_eq!(h.route_path(), "/ingest/k");
        assert_eq!(body, b"hi");
    }

    #[test]
    fn responses_have_the_expected_shape() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "application/json",
            b"{}",
            &[("Retry-After", "1".to_string())],
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
