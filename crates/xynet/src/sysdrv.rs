//! The production [`Driver`]: nonblocking `std::net` sockets polled through
//! the `polling` shim (epoll on Linux, `poll(2)` fallback, selectable at
//! runtime with `XYPOLL_BACKEND=poll`).
//!
//! Registration keys are the reactor's tokens; the listener lives under
//! [`LISTENER_TOKEN`] and the poller's notify wake-up (an eventfd or
//! self-pipe inside the shim) backs [`Driver::waker`]. All registrations
//! follow the shim's oneshot contract, so this driver is a thin mapping
//! layer with no interest bookkeeping of its own beyond the listener arm.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polling::{Event as PollEvent, Events, Poller};

use crate::driver::{Driver, Event, Interest, Token, Transport, Waker, LISTENER_TOKEN};

/// Borrow a raw descriptor as a pollable source.
struct FdSource(RawFd);

impl AsRawFd for FdSource {
    fn as_raw_fd(&self) -> RawFd {
        self.0
    }
}

/// A nonblocking TCP connection.
struct TcpTransport {
    stream: TcpStream,
}

impl Transport for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(&mut self.stream, buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(&mut self.stream, buf)
    }

    fn id(&self) -> u64 {
        self.stream.as_raw_fd() as u64
    }
}

/// Real-socket driver: a nonblocking listener plus a [`Poller`].
pub struct SysDriver {
    poller: Arc<Poller>,
    listener: TcpListener,
    local_addr: SocketAddr,
    events: Events,
    listener_registered: bool,
    listener_armed: bool,
}

impl SysDriver {
    /// Bind `addr` (port 0 picks a free port) and create the poller.
    pub fn bind(addr: &str) -> io::Result<SysDriver> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(SysDriver {
            poller: Arc::new(Poller::new()?),
            listener,
            local_addr,
            events: Events::new(),
            listener_registered: false,
            listener_armed: false,
        })
    }
}

fn interest_event(token: Token, interest: Interest) -> PollEvent {
    PollEvent { key: token, readable: interest.readable, writable: interest.writable }
}

impl Driver for SysDriver {
    fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn backend(&self) -> &'static str {
        self.poller.backend()
    }

    fn now(&self) -> Instant {
        Instant::now()
    }

    fn poll(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        self.poller.wait(&mut self.events, timeout)?;
        for ev in self.events.iter() {
            if ev.key == LISTENER_TOKEN {
                // Oneshot: the listener is dormant until re-armed.
                self.listener_armed = false;
            }
            out.push(Event { token: ev.key, readable: ev.readable, writable: ev.writable });
        }
        Ok(())
    }

    fn accept(&mut self) -> io::Result<Option<Box<dyn Transport>>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(true)?;
                let _ = stream.set_nodelay(true);
                Ok(Some(Box::new(TcpTransport { stream })))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn arm_accept(&mut self, enabled: bool) -> io::Result<()> {
        let want = if enabled {
            PollEvent::readable(LISTENER_TOKEN)
        } else {
            PollEvent::none(LISTENER_TOKEN)
        };
        if !self.listener_registered {
            self.poller.add(&self.listener, want)?;
            self.listener_registered = true;
            self.listener_armed = enabled;
            return Ok(());
        }
        if self.listener_armed != enabled {
            self.poller.modify(&self.listener, want)?;
            self.listener_armed = enabled;
        }
        Ok(())
    }

    fn register(
        &mut self,
        token: Token,
        transport: &dyn Transport,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = FdSource(transport.id() as RawFd);
        self.poller.add(&fd, interest_event(token, interest))
    }

    fn rearm(
        &mut self,
        token: Token,
        transport: &dyn Transport,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = FdSource(transport.id() as RawFd);
        self.poller.modify(&fd, interest_event(token, interest))
    }

    fn deregister(&mut self, transport: &dyn Transport) -> io::Result<()> {
        let fd = FdSource(transport.id() as RawFd);
        self.poller.delete(&fd)
    }

    fn waker(&self) -> Waker {
        let poller = Arc::clone(&self.poller);
        Arc::new(move || {
            let _ = poller.notify();
        })
    }
}
