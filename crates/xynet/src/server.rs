//! The network front: a thread-per-connection HTTP/1.1 server over an
//! [`IngestServer`].
//!
//! One acceptor thread feeds accepted connections into the same bounded
//! [`Queue`] the ingest pipeline uses for jobs; a pool of HTTP workers pops
//! connections and serves them to completion (keep-alive included). The
//! routes:
//!
//! | route                   | behaviour                                        |
//! |-------------------------|--------------------------------------------------|
//! | `POST /ingest/{key}`    | body = XML snapshot → `{version, ops, ...}` JSON |
//! | `GET /doc/{key}[/{v}]`  | reconstructed XML of version `v` (default last)  |
//! | `GET /metrics`          | Prometheus exposition (ingest + HTTP layers)     |
//! | `GET /healthz`          | `200` while serving, `503` while draining        |
//! | `POST /admin/shutdown`  | begin a loss-free drain, `202`                   |
//!
//! Backpressure is explicit: a full ingest queue turns into `503` with a
//! `Retry-After` header via [`IngestServer::try_submit_tracked`], which
//! sheds the request without burning a per-key sequence number. Shutdown is
//! loss-free — every accepted snapshot resolves before the pipeline stops.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xyserve::queue::Queue;
use xyserve::{
    Completed, DeadLetter, IngestServer, ServeConfig, ShutdownReport, StartError, SubmitError,
};

use crate::config::NetConfig;
use crate::http::{self, body_length, Conn, Head, HttpError, Limits};
use crate::metrics::HttpMetrics;

/// Error starting a [`NetServer`].
#[derive(Debug)]
pub enum NetStartError {
    /// Binding the listen socket failed.
    Bind(io::Error),
    /// Starting the ingest pipeline failed (snapshot restore).
    Ingest(StartError),
}

impl std::fmt::Display for NetStartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetStartError::Bind(e) => write!(f, "binding listen socket: {e}"),
            NetStartError::Ingest(e) => write!(f, "starting ingest pipeline: {e}"),
        }
    }
}

impl std::error::Error for NetStartError {}

/// Accounting returned by [`NetServer::shutdown`].
#[derive(Debug)]
pub struct NetShutdownReport {
    /// The ingest pipeline's loss-free accounting.
    pub ingest: ShutdownReport,
    /// Connections the network front accepted.
    pub connections: u64,
    /// Requests served across every route.
    pub requests: u64,
}

/// State shared by the acceptor, the HTTP workers, and the handle.
struct Shared {
    ingest: IngestServer,
    http: HttpMetrics,
    config: NetConfig,
    local_addr: SocketAddr,
    /// Set once a drain begins; new snapshots are refused from then on.
    draining: AtomicBool,
    /// Signals [`NetServer::wait_for_shutdown_request`].
    shutdown_flag: Mutex<bool>,
    shutdown_cv: Condvar,
}

impl Shared {
    /// Idempotently begin a loss-free drain: refuse new snapshots, wake the
    /// acceptor, and signal anyone blocked in `wait_for_shutdown_request`.
    fn begin_shutdown(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.ingest.begin_drain();
        // Unblock the acceptor's `accept()` with a throwaway connection; it
        // re-checks the draining flag before queuing anything.
        drop(TcpStream::connect(self.local_addr));
        // INVARIANT: a poisoned lock means a panicking holder; propagate.
        *self.shutdown_flag.lock().unwrap() = true;
        self.shutdown_cv.notify_all();
    }
}

/// The HTTP front over an [`IngestServer`]. Dropping the handle without
/// calling [`NetServer::shutdown`] drains the same way.
pub struct NetServer {
    /// `Some` until [`NetServer::shutdown`] consumes it.
    shared: Option<Arc<Shared>>,
    conns: Arc<Queue<TcpStream>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `net.addr`, start the ingest pipeline from `serve`, and begin
    /// accepting connections.
    pub fn start(net: NetConfig, serve: ServeConfig) -> Result<NetServer, NetStartError> {
        let ingest = IngestServer::try_start(serve).map_err(NetStartError::Ingest)?;
        let listener = TcpListener::bind(&net.addr).map_err(NetStartError::Bind)?;
        let local_addr = listener.local_addr().map_err(NetStartError::Bind)?;

        let http_workers = net.http_workers;
        let conns = Arc::new(Queue::new(http_workers.saturating_mul(4).max(16)));
        let shared = Arc::new(Shared {
            ingest,
            http: HttpMetrics::new(),
            config: net,
            local_addr,
            draining: AtomicBool::new(false),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });

        let workers = (0..http_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let conns = Arc::clone(&conns);
                std::thread::Builder::new()
                    .name(format!("xynet-http-{i}"))
                    .spawn(move || {
                        while let Some(stream) = conns.pop() {
                            handle_connection(&shared, stream);
                        }
                    })
                    // INVARIANT: spawn only fails on OS thread exhaustion;
                    // a server that cannot start its workers cannot run.
                    .expect("spawning an HTTP worker thread cannot fail")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("xynet-accept".to_string())
                .spawn(move || loop {
                    // Transient accept errors (e.g. the peer resetting
                    // while queued in the backlog) are not fatal, but
                    // must not spin hot if the listener is truly broken.
                    let Ok((stream, _)) = listener.accept() else {
                        if shared.draining.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    };
                    if shared.draining.load(Ordering::SeqCst) {
                        break;
                    }
                    shared.http.connections.inc();
                    if conns.push(stream).is_err() {
                        break;
                    }
                })
                // INVARIANT: spawn only fails on OS thread exhaustion;
                // a server that cannot start its acceptor cannot run.
                .expect("spawning the acceptor thread cannot fail")
        };

        Ok(NetServer { shared: Some(shared), conns, acceptor: Some(acceptor), workers })
    }

    fn shared(&self) -> &Shared {
        // INVARIANT: `shared` is only vacated by `shutdown`, which consumes
        // the handle — no method can run after it.
        self.shared.as_ref().expect("NetServer used after shutdown")
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared().local_addr
    }

    /// The ingest pipeline behind the front.
    pub fn ingest(&self) -> &IngestServer {
        &self.shared().ingest
    }

    /// The HTTP-layer metric registry.
    pub fn http_metrics(&self) -> &HttpMetrics {
        &self.shared().http
    }

    /// The full Prometheus exposition: ingest families then HTTP families
    /// (exactly what `GET /metrics` serves).
    pub fn metrics_text(&self) -> String {
        let shared = self.shared();
        let mut out = shared.ingest.metrics().render();
        shared.http.render_into(&mut out);
        out
    }

    /// Begin a loss-free drain without consuming the handle (the same thing
    /// `POST /admin/shutdown` does). Follow with [`NetServer::shutdown`].
    pub fn request_shutdown(&self) {
        self.shared().begin_shutdown();
    }

    /// Block until a drain has been requested — by [`NetServer::request_shutdown`]
    /// or by `POST /admin/shutdown` — or until `timeout` elapses. Returns
    /// true when the drain was requested.
    pub fn wait_for_shutdown_request(&self, timeout: Duration) -> bool {
        let shared = self.shared();
        // INVARIANT: a poisoned lock means a panicking holder; propagate.
        let flag = shared.shutdown_flag.lock().unwrap();
        let (flag, _) = shared
            .shutdown_cv
            .wait_timeout_while(flag, timeout, |requested| !*requested)
            // INVARIANT: a poisoned lock means a panicking holder; propagate.
            .unwrap();
        *flag
    }

    /// Stop accepting, serve out every connection already accepted, drain
    /// the ingest pipeline loss-free, and return the combined accounting.
    pub fn shutdown(mut self) -> NetShutdownReport {
        self.shared().begin_shutdown();
        self.conns.close();
        if let Some(acceptor) = self.acceptor.take() {
            // INVARIANT: a panicking acceptor is a server bug; propagate.
            acceptor.join().expect("acceptor thread panicked");
        }
        for w in self.workers.drain(..) {
            // INVARIANT: a panicking HTTP worker is a server bug; propagate.
            w.join().expect("HTTP worker thread panicked");
        }
        // INVARIANT: `shared` is only vacated here, and `self` is consumed.
        let shared = self.shared.take().expect("NetServer used after shutdown");
        let connections = shared.http.connections.get();
        let requests = shared.http.requests_total();
        let shared = Arc::into_inner(shared)
            // INVARIANT: every thread holding a clone has been joined above.
            .expect("all worker threads joined, so no Arc clones remain");
        NetShutdownReport { ingest: shared.ingest.shutdown(), connections, requests }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        let Some(shared) = self.shared.as_ref() else {
            return; // shutdown() already ran
        };
        shared.begin_shutdown();
        self.conns.close();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // The ingest pipeline's own Drop drains it once `shared` is released.
    }
}

/// A fully materialised response, built by the router and written by the
/// connection loop.
struct Response {
    code: u16,
    content_type: &'static str,
    body: Vec<u8>,
    extra: Vec<(&'static str, String)>,
    /// Close the connection after writing (overrides keep-alive).
    close: bool,
}

impl Response {
    fn json(code: u16, body: String) -> Response {
        Response {
            code,
            content_type: "application/json",
            body: body.into_bytes(),
            extra: Vec::new(),
            close: false,
        }
    }

    fn error(code: u16, message: &str) -> Response {
        Response::json(code, format!("{{\"error\":\"{}\"}}", json_escape(message)))
    }
}

/// Serve one connection to completion: requests are read and answered in
/// sequence until EOF, an unrecoverable parse error, a timeout, or a drain.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    shared.http.active_connections.inc();
    serve_connection(shared, stream);
    shared.http.active_connections.dec();
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let timeout = Some(shared.config.io_timeout);
    if stream.set_read_timeout(timeout).is_err() || stream.set_write_timeout(timeout).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let limits = Limits {
        max_head_bytes: shared.config.max_head_bytes,
        max_body_bytes: shared.config.max_body_bytes,
    };
    let mut conn = Conn::new(stream);

    loop {
        let head = match conn.read_head(&limits) {
            Ok(Some(head)) => head,
            Ok(None) => return,
            Err(HttpError::Io(_)) => return, // timeout or reset: nothing to say
            Err(e) => {
                shared.http.rejected.inc();
                let mut resp = Response::error(e.status(), &e.to_string());
                resp.close = true;
                shared.http.observe_status(resp.code);
                let _ = write_out(conn.inner_mut(), &resp);
                return;
            }
        };
        let started = Instant::now();

        // Read the declared body up front — even for routes that ignore it —
        // so keep-alive connections stay in sync with request framing.
        let body = match body_length(&head, &limits) {
            Ok(len) => {
                if head.expects_continue
                    && len > 0
                    && http::write_continue(conn.inner_mut()).is_err()
                {
                    return;
                }
                match conn.read_body(len) {
                    Ok(body) => body,
                    Err(_) => return,
                }
            }
            Err(e) => {
                shared.http.rejected.inc();
                let mut resp = Response::error(e.status(), &e.to_string());
                resp.close = true;
                shared.http.observe_status(resp.code);
                let _ = write_out(conn.inner_mut(), &resp);
                return;
            }
        };

        let mut resp = route(shared, &head, body);
        // While draining, answer the request in hand but end the session.
        if shared.draining.load(Ordering::SeqCst) || !head.keep_alive {
            resp.close = true;
        }
        shared.http.observe_status(resp.code);
        shared.http.request_time.observe(started.elapsed());
        if write_out(conn.inner_mut(), &resp).is_err() || resp.close {
            return;
        }
    }
}

fn write_out(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    http::write_response(w, resp.code, resp.content_type, &resp.body, &resp.extra, !resp.close)
}

/// Dispatch one request to its handler.
fn route(shared: &Shared, head: &Head, body: Vec<u8>) -> Response {
    let path = head.route_path().to_string();
    let segments: Vec<&str> = path.strip_prefix('/').unwrap_or(&path).split('/').collect();
    let method = head.method.as_str();

    match (method, segments.as_slice()) {
        ("POST", ["ingest", key]) if !key.is_empty() => {
            shared.http.observe_route("ingest");
            handle_ingest(shared, key, body)
        }
        (_, ["ingest", key]) if !key.is_empty() => {
            shared.http.observe_route("ingest");
            method_not_allowed("POST")
        }
        ("GET", ["metrics"]) => {
            shared.http.observe_route("metrics");
            let mut text = shared.ingest.metrics().render();
            shared.http.render_into(&mut text);
            Response {
                code: 200,
                content_type: "text/plain; version=0.0.4",
                body: text.into_bytes(),
                extra: Vec::new(),
                close: false,
            }
        }
        (_, ["metrics"]) => method_not_allowed_on(shared, "metrics"),
        ("GET", ["healthz"]) => {
            shared.http.observe_route("healthz");
            if shared.draining.load(Ordering::SeqCst) {
                Response::json(503, "{\"status\":\"draining\"}".to_string())
            } else {
                Response::json(200, "{\"status\":\"ok\"}".to_string())
            }
        }
        (_, ["healthz"]) => method_not_allowed_on(shared, "healthz"),
        ("GET", ["doc", key]) if !key.is_empty() => {
            shared.http.observe_route("doc");
            handle_doc(shared, key, None)
        }
        ("GET", ["doc", key, version]) if !key.is_empty() => {
            shared.http.observe_route("doc");
            match version.parse::<usize>() {
                Ok(v) => handle_doc(shared, key, Some(v)),
                Err(_) => Response::error(400, "version must be a non-negative integer"),
            }
        }
        (_, ["doc", ..]) => method_not_allowed_on(shared, "doc"),
        ("POST", ["admin", "shutdown"]) => {
            shared.http.observe_route("admin");
            shared.begin_shutdown();
            let mut resp = Response::json(202, "{\"status\":\"draining\"}".to_string());
            resp.close = true;
            resp
        }
        (_, ["admin", "shutdown"]) => method_not_allowed_on(shared, "admin"),
        _ => {
            shared.http.observe_route("other");
            Response::error(404, "no such route")
        }
    }
}

fn method_not_allowed(allow: &str) -> Response {
    let mut resp = Response::error(405, "method not allowed");
    resp.extra.push(("Allow", allow.to_string()));
    resp
}

fn method_not_allowed_on(shared: &Shared, route: &str) -> Response {
    shared.http.observe_route(route);
    method_not_allowed(if route == "admin" { "POST" } else { "GET" })
}

/// `POST /ingest/{key}`: submit the body as the next snapshot of `key` and
/// wait for its outcome.
fn handle_ingest(shared: &Shared, key: &str, body: Vec<u8>) -> Response {
    let Ok(xml) = String::from_utf8(body) else {
        return Response::error(400, "request body must be UTF-8 XML");
    };
    let ticket = match shared.ingest.try_submit_tracked(key, xml) {
        Ok(ticket) => ticket,
        Err(SubmitError::QueueFull) => {
            let mut resp = Response::error(503, "ingest queue is full, retry shortly");
            resp.extra.push(("Retry-After", shared.config.retry_after_secs.to_string()));
            return resp;
        }
        Err(SubmitError::ShuttingDown) => {
            let mut resp = Response::error(503, "server is draining");
            resp.close = true;
            return resp;
        }
    };
    let waited = Instant::now();
    let outcome = ticket.wait();
    shared.http.ingest_wait_time.observe(waited.elapsed());
    match outcome {
        Ok(done) => Response::json(200, completed_json(&done)),
        Err(letter) => Response::json(422, dead_letter_json(&letter)),
    }
}

/// `GET /doc/{key}[/{version}]`: reconstruct a stored version's XML.
fn handle_doc(shared: &Shared, key: &str, version: Option<usize>) -> Response {
    let repo = shared.ingest.repository_for(key);
    let count = repo.version_count(key);
    if count == 0 {
        return Response::error(404, "no such document");
    }
    let v = version.unwrap_or(count - 1);
    match repo.version_xml(key, v) {
        Ok(xml) => Response {
            code: 200,
            content_type: "application/xml",
            body: xml.into_bytes(),
            extra: vec![("X-Version", v.to_string())],
            close: false,
        },
        Err(_) => Response::error(404, "no such version"),
    }
}

fn completed_json(done: &Completed) -> String {
    format!(
        "{{\"key\":\"{}\",\"seq\":{},\"version\":{},\"ops\":{},\"alerts\":{},\
         \"schema_warnings\":{},\"durable\":{},\"mode\":\"{}\"}}",
        json_escape(&done.key),
        done.seq,
        done.version,
        done.ops,
        done.alerts,
        done.schema_warnings,
        done.durable,
        done.mode,
    )
}

fn dead_letter_json(letter: &DeadLetter) -> String {
    format!(
        "{{\"error\":\"{}\",\"key\":\"{}\",\"seq\":{},\"attempts\":{}}}",
        json_escape(&letter.error),
        json_escape(&letter.key),
        letter.seq,
        letter.attempts,
    )
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
