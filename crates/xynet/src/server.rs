//! The network front: an event-driven HTTP/1.1 server over an
//! [`IngestServer`].
//!
//! One reactor thread multiplexes every connection over nonblocking
//! sockets (see [`crate::reactor`]); requests are parsed incrementally by
//! per-connection state machines and only complete, ready-to-diff
//! snapshots are handed to the xyserve scheduler. The routes:
//!
//! | route                   | behaviour                                        |
//! |-------------------------|--------------------------------------------------|
//! | `POST /ingest/{key}`    | body = XML snapshot → `{version, ops, ...}` JSON |
//! | `GET /doc/{key}[/{v}]`  | reconstructed XML of version `v` (default last)  |
//! | `GET /metrics`          | Prometheus exposition (ingest + HTTP layers)     |
//! | `GET /healthz`          | `200` while serving, `503` while draining        |
//! | `POST /admin/shutdown`  | begin a loss-free drain, `202`                   |
//!
//! Backpressure is layered: a full ingest queue turns into `503` +
//! `Retry-After` via [`IngestServer::try_submit_with`] (shedding without
//! burning a per-key sequence number), too many open connections shed new
//! arrivals with the same `503`, and at `max_connections` the listener
//! itself pauses. Shutdown is loss-free — every accepted snapshot resolves
//! before the pipeline stops, and the drain is signalled to the reactor
//! through the poller's eventfd/self-pipe wake-up (no loopback connects).

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use xyserve::{IngestServer, ServeConfig, ShutdownReport, StartError};

use crate::config::NetConfig;
use crate::driver::Waker;
use crate::metrics::HttpMetrics;
use crate::reactor::{FrontHandle, Reactor};
use crate::sysdrv::SysDriver;

/// Error starting a [`NetServer`].
#[derive(Debug)]
pub enum NetStartError {
    /// Binding the listen socket (or creating the poller) failed.
    Bind(io::Error),
    /// Starting the ingest pipeline failed (snapshot restore).
    Ingest(StartError),
}

impl std::fmt::Display for NetStartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetStartError::Bind(e) => write!(f, "binding listen socket: {e}"),
            NetStartError::Ingest(e) => write!(f, "starting ingest pipeline: {e}"),
        }
    }
}

impl std::error::Error for NetStartError {}

/// Accounting returned by [`NetServer::shutdown`].
#[derive(Debug)]
pub struct NetShutdownReport {
    /// The ingest pipeline's loss-free accounting.
    pub ingest: ShutdownReport,
    /// Connections the network front accepted.
    pub connections: u64,
    /// Requests served across every route.
    pub requests: u64,
}

/// State shared by the reactor, the control handles, and (for one more
/// release) the legacy blocking front.
pub(crate) struct Shared {
    pub(crate) ingest: IngestServer,
    pub(crate) http: HttpMetrics,
    pub(crate) config: NetConfig,
    pub(crate) local_addr: SocketAddr,
    /// Driver backend name, for banners: `"epoll"`, `"poll"`, `"sim"`,
    /// `"blocking"`.
    pub(crate) backend: &'static str,
    /// Set once a drain begins; new snapshots are refused from then on.
    pub(crate) draining: AtomicBool,
    /// Signals [`NetServer::wait_for_shutdown_request`].
    pub(crate) shutdown_flag: Mutex<bool>,
    pub(crate) shutdown_cv: Condvar,
    /// Wakes the reactor's poll when a drain is requested from another
    /// thread (`None` for the legacy front, which has no poller).
    pub(crate) waker: Mutex<Option<Waker>>,
}

impl Shared {
    pub(crate) fn new(
        ingest: IngestServer,
        config: NetConfig,
        local_addr: SocketAddr,
        backend: &'static str,
    ) -> Shared {
        Shared {
            ingest,
            http: HttpMetrics::new(),
            config,
            local_addr,
            backend,
            draining: AtomicBool::new(false),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            waker: Mutex::new(None),
        }
    }

    /// Idempotently begin a loss-free drain: refuse new snapshots, wake the
    /// reactor's poll, and signal anyone blocked in
    /// `wait_for_shutdown_request`.
    pub(crate) fn begin_shutdown(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.ingest.begin_drain();
        // INVARIANT: a poisoned lock means a panicking holder; propagate.
        if let Some(waker) = self.waker.lock().unwrap().as_ref() {
            waker();
        }
        // INVARIANT: a poisoned lock means a panicking holder; propagate.
        *self.shutdown_flag.lock().unwrap() = true;
        self.shutdown_cv.notify_all();
    }

    pub(crate) fn wait_for_shutdown_request(&self, timeout: Duration) -> bool {
        // INVARIANT: a poisoned lock means a panicking holder; propagate.
        let flag = self.shutdown_flag.lock().unwrap();
        let (flag, _) = self
            .shutdown_cv
            .wait_timeout_while(flag, timeout, |requested| !*requested)
            // INVARIANT: a poisoned lock means a panicking holder; propagate.
            .unwrap();
        *flag
    }

    /// Drop the poller wake-up (after the reactor exits, so the poller's
    /// descriptors can close).
    pub(crate) fn take_waker(&self) {
        // INVARIANT: a poisoned lock means a panicking holder; propagate.
        self.waker.lock().unwrap().take();
    }
}

/// The HTTP front over an [`IngestServer`]: binds a nonblocking listener
/// and runs a [`Reactor`] on a single `xynet-reactor` thread. Dropping the
/// handle without calling [`NetServer::shutdown`] drains the same way.
pub struct NetServer {
    /// `Some` until [`NetServer::shutdown`] consumes it.
    handle: Option<FrontHandle>,
    reactor: Option<JoinHandle<Reactor<SysDriver>>>,
}

impl NetServer {
    /// Bind `net.addr`, start the ingest pipeline from `serve`, and begin
    /// accepting connections on the reactor thread.
    pub fn start(net: NetConfig, serve: ServeConfig) -> Result<NetServer, NetStartError> {
        let driver = SysDriver::bind(&net.addr).map_err(NetStartError::Bind)?;
        let mut reactor = Reactor::new(driver, net, serve)?;
        let handle = reactor.handle();
        let thread = std::thread::Builder::new()
            .name("xynet-reactor".to_string())
            .spawn(move || {
                reactor.run();
                reactor
            })
            // INVARIANT: spawn only fails on OS thread exhaustion; a server
            // that cannot start its reactor cannot run.
            .expect("spawning the reactor thread cannot fail");
        Ok(NetServer { handle: Some(handle), reactor: Some(thread) })
    }

    fn handle(&self) -> &FrontHandle {
        // INVARIANT: `handle` is only vacated by `shutdown`, which consumes
        // the handle — no method can run after it.
        self.handle.as_ref().expect("NetServer used after shutdown")
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.handle().local_addr()
    }

    /// The active readiness backend: `"epoll"` or `"poll"`.
    pub fn backend(&self) -> &'static str {
        self.handle().backend()
    }

    /// The ingest pipeline behind the front.
    pub fn ingest(&self) -> &IngestServer {
        self.handle().ingest()
    }

    /// The HTTP-layer metric registry.
    pub fn http_metrics(&self) -> &HttpMetrics {
        self.handle().http_metrics()
    }

    /// The full Prometheus exposition: ingest families then HTTP families
    /// (exactly what `GET /metrics` serves).
    pub fn metrics_text(&self) -> String {
        self.handle().metrics_text()
    }

    /// Begin a loss-free drain without consuming the handle (the same thing
    /// `POST /admin/shutdown` does). Follow with [`NetServer::shutdown`].
    pub fn request_shutdown(&self) {
        self.handle().request_shutdown();
    }

    /// Block until a drain has been requested — by
    /// [`NetServer::request_shutdown`] or by `POST /admin/shutdown` — or
    /// until `timeout` elapses. Returns true when the drain was requested.
    pub fn wait_for_shutdown_request(&self, timeout: Duration) -> bool {
        self.handle().wait_for_shutdown_request(timeout)
    }

    /// Stop accepting, serve out every connection already accepted, drain
    /// the ingest pipeline loss-free, and return the combined accounting.
    pub fn shutdown(mut self) -> NetShutdownReport {
        self.handle().request_shutdown();
        // Release this side's FrontHandle before consuming the reactor, so
        // its accounting sees the last Arc.
        self.handle = None;
        // INVARIANT: `reactor` is only vacated here, and `self` is consumed.
        let thread = self.reactor.take().expect("NetServer used after shutdown");
        // INVARIANT: a panicking reactor is a server bug; propagate.
        let reactor = thread.join().expect("reactor thread panicked");
        reactor.into_report()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        let Some(handle) = self.handle.take() else {
            return; // shutdown() already ran
        };
        handle.request_shutdown();
        drop(handle);
        if let Some(thread) = self.reactor.take() {
            if let Ok(reactor) = thread.join() {
                // Runs the ingest pipeline's own drain via its Drop.
                drop(reactor.into_report());
            }
        }
    }
}
