//! The event-driven connection engine: one thread, many connections.
//!
//! A [`Reactor`] owns every accepted connection as a slot in a token table.
//! Each slot couples a nonblocking [`Transport`] with a push-parser
//! [`ConnMachine`] and an output buffer; the loop is the classic readiness
//! shape:
//!
//! ```text
//!    poll ──► completions ──► events (read/flush) ──► accept ──► sweep
//!     ▲                                                            │
//!     └──────────────── re-arm interest (oneshot) ◄────────────────┘
//! ```
//!
//! Requests that resolve synchronously (routing, `/metrics`, `/doc`) are
//! answered in place. `POST /ingest/{key}` is handed to the xyserve
//! scheduler through [`xyserve::IngestServer::try_submit_with`]; the
//! completion callback pushes the outcome onto a queue and fires the
//! driver's [`Waker`] (eventfd/self-pipe — this replaced the old loopback
//! dummy-connect wake), so a reactor blocked in `poll` resumes immediately
//! while never parking a thread per request.
//!
//! Robustness guards, all tunable through [`NetConfig`]:
//!
//! - **idle/slow-loris eviction** — a connection's `last_progress` advances
//!   only when a full response is flushed (or on accept); anything idle or
//!   trickling longer than `idle_timeout` without an in-flight request is
//!   evicted and counted in `http_evicted_connections_total`;
//! - **read/write budgets** — per-connection per-iteration byte caps, so
//!   one firehose connection cannot starve the loop;
//! - **connection-count backpressure** — above `shed_connections` new
//!   connections get an immediate `503` + `Retry-After`; at
//!   `max_connections` the listener itself is paused (and resumed at a
//!   low-water mark), visible as the `http_accept_paused` gauge.
//!
//! Stale-event safety: slots carry a generation counter, completion
//! callbacks capture `(token, generation)`, and freed slots are quarantined
//! for one iteration (`free_pending`) so an event already delivered in the
//! current batch can never alias a newly accepted connection.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use xyserve::{CompletionFn, IngestOutcome, IngestServer, ServeConfig, SubmitError};

use crate::config::NetConfig;
use crate::driver::{Driver, Event, Interest, Token, Waker, LISTENER_TOKEN};
use crate::http::{self, Limits};
use crate::machine::{ConnMachine, Step};
use crate::metrics::HttpMetrics;
use crate::router::{self, Response, Routed};
use crate::server::{NetShutdownReport, NetStartError, Shared};

/// Most connections accepted in one loop iteration, so a connect storm
/// cannot starve established connections.
const ACCEPT_BATCH: usize = 256;

/// Read chunk size; the per-iteration cap is `NetConfig::read_budget`.
const READ_CHUNK: usize = 4096;

/// Resolved ingest outcomes en route from worker threads to the reactor.
pub(crate) struct CompletionQueue {
    queue: Mutex<Vec<(Token, u64, IngestOutcome)>>,
    waker: Waker,
}

impl CompletionQueue {
    fn new(waker: Waker) -> CompletionQueue {
        CompletionQueue { queue: Mutex::new(Vec::new()), waker }
    }

    fn push(&self, token: Token, gen: u64, outcome: IngestOutcome) {
        // INVARIANT: a poisoned lock means a panicking holder; propagate.
        self.queue.lock().unwrap().push((token, gen, outcome));
        (self.waker)();
    }

    fn drain(&self) -> Vec<(Token, u64, IngestOutcome)> {
        // INVARIANT: a poisoned lock means a panicking holder; propagate.
        std::mem::take(&mut *self.queue.lock().unwrap())
    }
}

/// Where one connection is in its request/response cycle.
#[derive(Clone, Copy)]
enum ConnState {
    /// Parsing and answering requests inline.
    Ready,
    /// One request is on the scheduler; awaiting its completion callback.
    InFlight {
        /// When the request's head finished parsing (request latency).
        started: Instant,
        /// When the submission was accepted (ingest wait latency).
        waited: Instant,
        /// Close once the outcome response is flushed.
        close_after: bool,
    },
}

/// One live connection.
struct Conn {
    transport: Box<dyn crate::driver::Transport>,
    machine: ConnMachine,
    /// Serialized responses not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    /// Close as soon as `out` is fully flushed.
    close_after_flush: bool,
    /// The peer half-closed; stop arming for reads.
    eof: bool,
    /// Advanced on accept and on every fully flushed response; the idle /
    /// slow-loris eviction clock.
    last_progress: Instant,
}

struct Slot {
    conn: Option<Conn>,
    /// Bumped on close so stale completions and events cannot alias a
    /// reused slot.
    gen: u64,
}

/// The single-threaded event loop multiplexing every connection over one
/// [`Driver`]. Constructed by [`crate::NetServer`] over real sockets, or
/// directly over [`crate::sim::SimDriver`] in tests.
pub struct Reactor<D: Driver> {
    driver: D,
    shared: Arc<Shared>,
    completions: Arc<CompletionQueue>,
    events: Vec<Event>,
    slots: Vec<Slot>,
    /// Tokens free for immediate reuse.
    free: Vec<Token>,
    /// Tokens freed this iteration; promoted to `free` at iteration end.
    free_pending: Vec<Token>,
    open: usize,
    accept_paused: bool,
    drain_swept: bool,
}

impl<D: Driver> Reactor<D> {
    /// Start the ingest pipeline and wrap `driver` in a ready-to-run
    /// reactor. The listener is armed; call [`Reactor::run`] (or step with
    /// [`Reactor::turn`]) to serve.
    pub fn new(driver: D, net: NetConfig, serve: ServeConfig) -> Result<Reactor<D>, NetStartError> {
        let ingest = IngestServer::try_start(serve).map_err(NetStartError::Ingest)?;
        let shared = Arc::new(Shared {
            ingest,
            http: HttpMetrics::new(),
            local_addr: driver.local_addr(),
            backend: driver.backend(),
            config: net,
            draining: AtomicBool::new(false),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            waker: Mutex::new(Some(driver.waker())),
        });
        let completions = Arc::new(CompletionQueue::new(driver.waker()));
        let mut reactor = Reactor {
            driver,
            shared,
            completions,
            events: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            free_pending: Vec::new(),
            open: 0,
            accept_paused: false,
            drain_swept: false,
        };
        let _ = reactor.driver.arm_accept(true);
        Ok(reactor)
    }

    /// A cloneable control/observability handle (metrics, shutdown
    /// requests) that stays valid while the reactor runs on another thread.
    pub fn handle(&self) -> FrontHandle {
        FrontHandle { shared: Arc::clone(&self.shared) }
    }

    /// Connections currently registered.
    pub fn open_connections(&self) -> usize {
        self.open
    }

    /// The driver backend name (`"epoll"`, `"poll"`, `"sim"`).
    pub fn backend(&self) -> &'static str {
        self.shared.backend
    }

    /// Run until a drain is requested and every connection has resolved.
    pub fn run(&mut self) {
        while self.turn(None) {}
    }

    /// One loop iteration: poll (bounded by `max_wait` when given), then
    /// dispatch completions, events, accepts, and sweeps. Returns `false`
    /// once draining has finished and the loop should exit.
    pub fn turn(&mut self, max_wait: Option<Duration>) -> bool {
        let draining = self.shared.draining.load(Ordering::SeqCst);
        let mut timeout = self.poll_timeout(self.driver.now());
        if draining {
            // Keep sweeping promptly while a drain is in progress.
            let cap = Duration::from_millis(50);
            timeout = Some(timeout.map_or(cap, |t| t.min(cap)));
        }
        if let Some(cap) = max_wait {
            timeout = Some(timeout.map_or(cap, |t| t.min(cap)));
        }
        let mut events = std::mem::take(&mut self.events);
        if self.driver.poll(&mut events, timeout).is_err() {
            // A transiently failing poller must not spin the loop hot.
            std::thread::sleep(Duration::from_millis(5));
        }
        let iter_started = Instant::now();

        for (token, gen, outcome) in self.completions.drain() {
            self.handle_completion(token, gen, outcome);
        }

        let mut accept_ready = false;
        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                accept_ready = true;
            }
        }
        for i in 0..events.len() {
            let ev = events[i];
            if ev.token != LISTENER_TOKEN {
                self.handle_conn_event(ev);
            }
        }
        events.clear();
        self.events = events;
        if accept_ready {
            self.do_accept();
        }

        let draining = self.shared.draining.load(Ordering::SeqCst);
        if draining && !self.drain_swept {
            self.drain_swept = true;
            self.close_idle_for_drain();
        }
        self.evict_idle(self.driver.now());
        // Quarantined slots become reusable only now: no event delivered in
        // this batch can refer to a connection accepted in the next one.
        self.free.append(&mut self.free_pending);
        self.update_accept();
        self.shared.http.loop_time.observe(iter_started.elapsed());
        !(draining && self.open == 0)
    }

    /// Consume the reactor after [`Reactor::run`] exits: release the driver
    /// (closing the listener and poller), drain the ingest pipeline, and
    /// return the combined accounting.
    pub fn into_report(self) -> NetShutdownReport {
        let Reactor { driver, shared, completions, .. } = self;
        drop(driver);
        drop(completions);
        // The caller dropped every FrontHandle before joining the reactor
        // thread, and the completion callbacks only capture the queue.
        match Arc::into_inner(shared) {
            Some(shared) => {
                shared.take_waker();
                let connections = shared.http.connections.get();
                let requests = shared.http.requests_total();
                NetShutdownReport { ingest: shared.ingest.shutdown(), connections, requests }
            }
            // INVARIANT: reaching this means a FrontHandle outlived the
            // server handle — a caller bug the accounting cannot paper over.
            None => panic!("into_report with FrontHandle clones still alive"),
        }
    }

    /// Smallest duration until an idle-eviction deadline, or `None` when
    /// nothing is waiting on time.
    fn poll_timeout(&self, now: Instant) -> Option<Duration> {
        let idle = self.shared.config.idle_timeout;
        let mut next: Option<Duration> = None;
        for slot in &self.slots {
            let Some(conn) = slot.conn.as_ref() else { continue };
            if matches!(conn.state, ConnState::InFlight { .. }) {
                continue;
            }
            let Some(deadline) = conn.last_progress.checked_add(idle) else { continue };
            let left = deadline.saturating_duration_since(now).max(Duration::from_millis(1));
            next = Some(next.map_or(left, |n| n.min(left)));
        }
        next
    }

    fn alloc_slot(&mut self) -> Token {
        self.free.pop().unwrap_or_else(|| {
            self.slots.push(Slot { conn: None, gen: 0 });
            self.slots.len() - 1
        })
    }

    fn close_conn(&mut self, token: Token) {
        let Some(conn) = self.slots[token].conn.take() else { return };
        let _ = self.driver.deregister(conn.transport.as_ref());
        self.slots[token].gen += 1;
        self.shared.http.active_connections.dec();
        self.open -= 1;
        self.free_pending.push(token);
    }

    /// Re-arm `token` for the interest its state implies (oneshot refresh).
    fn arm(&mut self, token: Token) {
        let (slots, driver) = (&self.slots, &mut self.driver);
        let Some(conn) = slots[token].conn.as_ref() else { return };
        let want = Interest {
            readable: matches!(conn.state, ConnState::Ready)
                && !conn.eof
                && !conn.close_after_flush,
            writable: conn.out_pos < conn.out.len(),
        };
        if driver.rearm(token, conn.transport.as_ref(), want).is_err() {
            self.close_conn(token);
        }
    }

    fn handle_conn_event(&mut self, ev: Event) {
        if self.slots.get(ev.token).and_then(|s| s.conn.as_ref()).is_none() {
            return; // stale token: the connection closed earlier this batch
        }
        if ev.readable && !self.do_read(ev.token) {
            return;
        }
        self.finish_conn(ev.token);
    }

    /// Read up to the budget, feed the machine, and process what completed.
    /// Returns false when the connection died.
    fn do_read(&mut self, token: Token) -> bool {
        let budget = self.shared.config.read_budget;
        let mut dead = false;
        let mut progressed = false;
        {
            let Some(conn) = self.slots[token].conn.as_mut() else { return false };
            let readable_state = matches!(conn.state, ConnState::Ready)
                && !conn.eof
                && !conn.close_after_flush;
            if readable_state {
                let mut chunk = [0u8; READ_CHUNK];
                let mut total = 0usize;
                loop {
                    match conn.transport.read(&mut chunk) {
                        Ok(0) => {
                            conn.eof = true;
                            conn.machine.note_eof();
                            progressed = true;
                            break;
                        }
                        Ok(n) => {
                            conn.machine.feed(&chunk[..n]);
                            progressed = true;
                            total += n;
                            if total >= budget {
                                break; // budget spent; re-arm picks it up
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true; // reset mid-read: nothing to say
                            break;
                        }
                    }
                }
            }
        }
        if dead {
            self.close_conn(token);
            return false;
        }
        if progressed {
            self.process_machine(token);
        }
        true
    }

    /// Drive the state machine over whatever is buffered: route completed
    /// requests, queue responses, submit ingests, stop on `InFlight`.
    fn process_machine(&mut self, token: Token) {
        let gen = self.slots[token].gen;
        let shared = Arc::clone(&self.shared);
        loop {
            let Some(conn) = self.slots[token].conn.as_mut() else { return };
            if !matches!(conn.state, ConnState::Ready) || conn.close_after_flush {
                return;
            }
            match conn.machine.next() {
                Step::NeedRead => return,
                Step::Continue100 => {
                    let _ = http::write_continue(&mut conn.out);
                }
                Step::Close => {
                    conn.close_after_flush = true;
                    return;
                }
                Step::Fail(e) => {
                    shared.http.rejected.inc();
                    let mut resp = Response::error(e.status(), &e.to_string());
                    resp.close = true;
                    shared.http.observe_status(resp.code);
                    queue_response(conn, &resp);
                    return;
                }
                Step::Request(head, body) => {
                    let started = Instant::now();
                    let force_close =
                        shared.draining.load(Ordering::SeqCst) || !head.keep_alive;
                    match router::route(&shared, &head, body) {
                        Routed::Done(mut resp) => {
                            if force_close {
                                resp.close = true;
                            }
                            shared.http.observe_status(resp.code);
                            shared.http.request_time.observe(started.elapsed());
                            queue_response(conn, &resp);
                        }
                        Routed::Ingest { key, xml } => {
                            let queue = Arc::clone(&self.completions);
                            let done: CompletionFn = Box::new(move |outcome| {
                                queue.push(token, gen, outcome);
                            });
                            match shared.ingest.try_submit_with(&key, xml, done) {
                                Ok(()) => {
                                    conn.state = ConnState::InFlight {
                                        started,
                                        waited: Instant::now(),
                                        close_after: force_close,
                                    };
                                    return;
                                }
                                Err(SubmitError::QueueFull) => {
                                    let mut resp = router::queue_full_response(&shared);
                                    if force_close {
                                        resp.close = true;
                                    }
                                    shared.http.observe_status(resp.code);
                                    shared.http.request_time.observe(started.elapsed());
                                    queue_response(conn, &resp);
                                }
                                Err(SubmitError::ShuttingDown) => {
                                    let resp = router::draining_response();
                                    shared.http.observe_status(resp.code);
                                    shared.http.request_time.observe(started.elapsed());
                                    queue_response(conn, &resp);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// An ingest outcome arrived from a worker thread for `(token, gen)`.
    fn handle_completion(&mut self, token: Token, gen: u64, outcome: IngestOutcome) {
        let shared = Arc::clone(&self.shared);
        {
            let Some(slot) = self.slots.get_mut(token) else { return };
            if slot.gen != gen {
                return; // the connection died while the request was in flight
            }
            let Some(conn) = slot.conn.as_mut() else { return };
            let ConnState::InFlight { started, waited, close_after } = conn.state else {
                return;
            };
            shared.http.ingest_wait_time.observe(waited.elapsed());
            let mut resp = router::outcome_response(&outcome);
            if close_after || shared.draining.load(Ordering::SeqCst) {
                resp.close = true;
            }
            shared.http.observe_status(resp.code);
            shared.http.request_time.observe(started.elapsed());
            conn.state = ConnState::Ready;
            queue_response(conn, &resp);
        }
        // Pipelined requests may already be buffered behind the one that
        // was in flight.
        self.process_machine(token);
        self.finish_conn(token);
    }

    /// Flush pending output (bounded by the write budget), then close or
    /// re-arm.
    fn finish_conn(&mut self, token: Token) {
        let budget = self.shared.config.write_budget;
        let now = self.driver.now();
        let mut dead = false;
        {
            let Some(conn) = self.slots[token].conn.as_mut() else { return };
            let mut written = 0usize;
            while conn.out_pos < conn.out.len() && written < budget {
                let end = conn.out.len().min(conn.out_pos + (budget - written));
                match conn.transport.write(&conn.out[conn.out_pos..end]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        written += n;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead && conn.out_pos >= conn.out.len() {
                if !conn.out.is_empty() {
                    conn.out.clear();
                    conn.out_pos = 0;
                    conn.last_progress = now;
                }
                if conn.close_after_flush && matches!(conn.state, ConnState::Ready) {
                    dead = true;
                }
            }
        }
        if dead {
            self.close_conn(token);
        } else {
            self.arm(token);
        }
    }

    /// Accept a bounded batch: shed above the high-water mark, register the
    /// rest.
    fn do_accept(&mut self) {
        let shared = Arc::clone(&self.shared);
        let limits = Limits {
            max_head_bytes: shared.config.max_head_bytes,
            max_body_bytes: shared.config.max_body_bytes,
        };
        for _ in 0..ACCEPT_BATCH {
            let mut transport = match self.driver.accept() {
                Ok(Some(t)) => t,
                Ok(None) => break,
                Err(_) => break, // transient (e.g. reset while in the backlog)
            };
            if shared.draining.load(Ordering::SeqCst) {
                continue; // dropped: a draining front takes no new sessions
            }
            shared.http.connections.inc();
            if self.open >= shared.config.shed_connections {
                // Backpressure by connection count: answer 503 without ever
                // registering the socket, then drop it.
                shared.http.shed.inc();
                shared.http.observe_status(503);
                let mut resp =
                    Response::error(503, "connection limit reached, retry shortly");
                resp.extra.push(("Retry-After", shared.config.retry_after_secs.to_string()));
                resp.close = true;
                let mut bytes = Vec::new();
                let _ = http::write_response(
                    &mut bytes,
                    resp.code,
                    resp.content_type,
                    &resp.body,
                    &resp.extra,
                    false,
                );
                let _ = transport.write(&bytes); // best-effort single write
                continue;
            }
            let conn = Conn {
                transport,
                machine: ConnMachine::new(limits),
                out: Vec::new(),
                out_pos: 0,
                state: ConnState::Ready,
                close_after_flush: false,
                eof: false,
                last_progress: self.driver.now(),
            };
            let token = self.alloc_slot();
            if self.driver.register(token, conn.transport.as_ref(), Interest::READ).is_err() {
                self.slots[token].gen += 1;
                self.free_pending.push(token);
                continue; // cannot watch it; the socket drops here
            }
            self.slots[token].conn = Some(conn);
            self.open += 1;
            shared.http.active_connections.inc();
        }
    }

    /// Evict connections idle past the deadline. In-flight requests are
    /// exempt — their latency belongs to the scheduler, not the client.
    fn evict_idle(&mut self, now: Instant) {
        let idle = self.shared.config.idle_timeout;
        let expired: Vec<Token> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(token, slot)| {
                let conn = slot.conn.as_ref()?;
                if matches!(conn.state, ConnState::InFlight { .. }) {
                    return None;
                }
                (now.saturating_duration_since(conn.last_progress) >= idle).then_some(token)
            })
            .collect();
        for token in expired {
            self.shared.http.evicted.inc();
            self.close_conn(token);
        }
    }

    /// On drain: connections parked between requests close immediately;
    /// anything mid-request finishes its response (forced `close`) first.
    fn close_idle_for_drain(&mut self) {
        let idle: Vec<Token> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(token, slot)| {
                let conn = slot.conn.as_ref()?;
                let parked = matches!(conn.state, ConnState::Ready)
                    && conn.machine.is_idle()
                    && conn.out_pos >= conn.out.len();
                parked.then_some(token)
            })
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }

    /// Maintain the accept gate: pause at `max_connections`, resume at the
    /// low-water mark, stay closed while draining. Also refreshes the
    /// oneshot listener arm after a delivered accept event.
    fn update_accept(&mut self) {
        if self.shared.draining.load(Ordering::SeqCst) {
            let _ = self.driver.arm_accept(false);
            self.shared.http.accept_paused.set(0);
            return;
        }
        let max = self.shared.config.max_connections;
        let low = max.saturating_sub(max / 16).saturating_sub(1).max(1);
        if self.accept_paused {
            if self.open <= low {
                self.accept_paused = false;
                self.shared.http.accept_paused.set(0);
            }
        } else if self.open >= max {
            self.accept_paused = true;
            self.shared.http.accept_paused.set(1);
        }
        let _ = self.driver.arm_accept(!self.accept_paused);
    }
}

/// Serialize `resp` onto the connection's output buffer.
fn queue_response(conn: &mut Conn, resp: &Response) {
    let _ = http::write_response(
        &mut conn.out,
        resp.code,
        resp.content_type,
        &resp.body,
        &resp.extra,
        !resp.close,
    );
    if resp.close {
        conn.close_after_flush = true;
    }
}

/// A cloneable handle onto a running reactor: metrics, the ingest pipeline,
/// and drain signalling. [`crate::NetServer`] wraps one; sim-driven tests
/// use it directly.
#[derive(Clone)]
pub struct FrontHandle {
    shared: Arc<Shared>,
}

impl FrontHandle {
    /// The bound listen address (a placeholder for the sim driver).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.shared.local_addr
    }

    /// The driver backend name (`"epoll"`, `"poll"`, `"sim"`).
    pub fn backend(&self) -> &'static str {
        self.shared.backend
    }

    /// The ingest pipeline behind the front.
    pub fn ingest(&self) -> &IngestServer {
        &self.shared.ingest
    }

    /// The HTTP-layer metric registry.
    pub fn http_metrics(&self) -> &HttpMetrics {
        &self.shared.http
    }

    /// The full Prometheus exposition (ingest families then HTTP families).
    pub fn metrics_text(&self) -> String {
        let mut out = self.shared.ingest.metrics().render();
        self.shared.http.render_into(&mut out);
        out
    }

    /// Begin a loss-free drain (what `POST /admin/shutdown` does).
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until a drain has been requested or `timeout` elapses;
    /// true when the drain was requested.
    pub fn wait_for_shutdown_request(&self, timeout: Duration) -> bool {
        self.shared.wait_for_shutdown_request(timeout)
    }
}
