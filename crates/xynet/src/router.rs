//! Route dispatch shared by the reactor and the legacy blocking front.
//!
//! Both fronts parse requests with the same code and route them here, so
//! their responses are byte-identical — the property the differential test
//! replays the PR 4 protocol corpus to enforce. The one asymmetry is how
//! `POST /ingest/{key}` waits for its outcome: the blocking front parks on
//! a [`xyserve::Ticket`], the reactor registers a completion callback and
//! keeps multiplexing. [`route`] therefore returns [`Routed`]: either a
//! finished [`Response`] or an ingest submission for the caller to drive
//! its own way.

use std::sync::atomic::Ordering;

use xyserve::{Completed, DeadLetter, IngestOutcome};

use crate::http::Head;
use crate::server::Shared;

/// A fully materialised response, built by the router and written by the
/// connection loop.
pub(crate) struct Response {
    pub(crate) code: u16,
    pub(crate) content_type: &'static str,
    pub(crate) body: Vec<u8>,
    pub(crate) extra: Vec<(&'static str, String)>,
    /// Close the connection after writing (overrides keep-alive).
    pub(crate) close: bool,
}

impl Response {
    pub(crate) fn json(code: u16, body: String) -> Response {
        Response {
            code,
            content_type: "application/json",
            body: body.into_bytes(),
            extra: Vec::new(),
            close: false,
        }
    }

    pub(crate) fn error(code: u16, message: &str) -> Response {
        Response::json(code, format!("{{\"error\":\"{}\"}}", json_escape(message)))
    }
}

/// The router's verdict on one request.
pub(crate) enum Routed {
    /// The response is ready to write.
    Done(Response),
    /// `POST /ingest/{key}` with a valid UTF-8 body: submit `xml` to the
    /// pipeline and answer with [`outcome_response`] when it resolves.
    Ingest {
        /// The document key from the request path.
        key: String,
        /// The snapshot body.
        xml: String,
    },
}

/// Dispatch one request. Route metrics are counted here; status metrics are
/// counted by the caller once the response (and any forced `close`) is
/// final.
pub(crate) fn route(shared: &Shared, head: &Head, body: Vec<u8>) -> Routed {
    let path = head.route_path().to_string();
    let segments: Vec<&str> = path.strip_prefix('/').unwrap_or(&path).split('/').collect();
    let method = head.method.as_str();

    let done = match (method, segments.as_slice()) {
        ("POST", ["ingest", key]) if !key.is_empty() => {
            shared.http.observe_route("ingest");
            let Ok(xml) = String::from_utf8(body) else {
                return Routed::Done(Response::error(400, "request body must be UTF-8 XML"));
            };
            return Routed::Ingest { key: (*key).to_string(), xml };
        }
        (_, ["ingest", key]) if !key.is_empty() => {
            shared.http.observe_route("ingest");
            method_not_allowed("POST")
        }
        ("GET", ["metrics"]) => {
            shared.http.observe_route("metrics");
            let mut text = shared.ingest.metrics().render();
            shared.http.render_into(&mut text);
            Response {
                code: 200,
                content_type: "text/plain; version=0.0.4",
                body: text.into_bytes(),
                extra: Vec::new(),
                close: false,
            }
        }
        (_, ["metrics"]) => method_not_allowed_on(shared, "metrics"),
        ("GET", ["healthz"]) => {
            shared.http.observe_route("healthz");
            if shared.draining.load(Ordering::SeqCst) {
                Response::json(503, "{\"status\":\"draining\"}".to_string())
            } else {
                Response::json(200, "{\"status\":\"ok\"}".to_string())
            }
        }
        (_, ["healthz"]) => method_not_allowed_on(shared, "healthz"),
        ("GET", ["doc", key]) if !key.is_empty() => {
            shared.http.observe_route("doc");
            handle_doc(shared, key, None)
        }
        ("GET", ["doc", key, version]) if !key.is_empty() => {
            shared.http.observe_route("doc");
            match version.parse::<usize>() {
                Ok(v) => handle_doc(shared, key, Some(v)),
                Err(_) => Response::error(400, "version must be a non-negative integer"),
            }
        }
        (_, ["doc", ..]) => method_not_allowed_on(shared, "doc"),
        ("POST", ["admin", "shutdown"]) => {
            shared.http.observe_route("admin");
            shared.begin_shutdown();
            let mut resp = Response::json(202, "{\"status\":\"draining\"}".to_string());
            resp.close = true;
            resp
        }
        (_, ["admin", "shutdown"]) => method_not_allowed_on(shared, "admin"),
        _ => {
            shared.http.observe_route("other");
            Response::error(404, "no such route")
        }
    };
    Routed::Done(done)
}

fn method_not_allowed(allow: &str) -> Response {
    let mut resp = Response::error(405, "method not allowed");
    resp.extra.push(("Allow", allow.to_string()));
    resp
}

fn method_not_allowed_on(shared: &Shared, route: &str) -> Response {
    shared.http.observe_route(route);
    method_not_allowed(if route == "admin" { "POST" } else { "GET" })
}

/// `GET /doc/{key}[/{version}]`: reconstruct a stored version's XML.
fn handle_doc(shared: &Shared, key: &str, version: Option<usize>) -> Response {
    let repo = shared.ingest.repository_for(key);
    let count = repo.version_count(key);
    if count == 0 {
        return Response::error(404, "no such document");
    }
    let v = version.unwrap_or(count - 1);
    match repo.version_xml(key, v) {
        Ok(xml) => Response {
            code: 200,
            content_type: "application/xml",
            body: xml.into_bytes(),
            extra: vec![("X-Version", v.to_string())],
            close: false,
        },
        Err(_) => Response::error(404, "no such version"),
    }
}

/// The response for a resolved ingest submission (shared verbatim by both
/// fronts).
pub(crate) fn outcome_response(outcome: &IngestOutcome) -> Response {
    match outcome {
        Ok(done) => Response::json(200, completed_json(done)),
        Err(letter) => Response::json(422, dead_letter_json(letter)),
    }
}

/// The backpressure `503` for a full ingest queue, keep-alive preserved.
pub(crate) fn queue_full_response(shared: &Shared) -> Response {
    let mut resp = Response::error(503, "ingest queue is full, retry shortly");
    resp.extra.push(("Retry-After", shared.config.retry_after_secs.to_string()));
    resp
}

/// The `503` answered once a drain has begun; always closes.
pub(crate) fn draining_response() -> Response {
    let mut resp = Response::error(503, "server is draining");
    resp.close = true;
    resp
}

fn completed_json(done: &Completed) -> String {
    format!(
        "{{\"key\":\"{}\",\"seq\":{},\"version\":{},\"ops\":{},\"alerts\":{},\
         \"schema_warnings\":{},\"durable\":{},\"mode\":\"{}\"}}",
        json_escape(&done.key),
        done.seq,
        done.version,
        done.ops,
        done.alerts,
        done.schema_warnings,
        done.durable,
        done.mode,
    )
}

fn dead_letter_json(letter: &DeadLetter) -> String {
    format!(
        "{{\"error\":\"{}\",\"key\":\"{}\",\"seq\":{},\"attempts\":{}}}",
        json_escape(&letter.error),
        json_escape(&letter.key),
        letter.seq,
        letter.attempts,
    )
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
