//! The pre-reactor blocking front, kept for exactly one release as the
//! reference implementation for the differential protocol test
//! (`crates/xynet/tests/reactor_differential.rs`): the same request corpus
//! must produce byte-identical responses from this thread-per-connection
//! path and from the event loop. Scheduled for deletion once the reactor
//! has soaked a release — do not grow new features here.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xyserve::queue::Queue;
use xyserve::{IngestServer, ServeConfig, SubmitError};

use crate::config::NetConfig;
use crate::http::{self, body_length, Conn, HttpError, Limits};
use crate::router::{self, Response, Routed};
use crate::server::{NetShutdownReport, NetStartError, Shared};

/// The blocking thread-per-connection server. Hidden from the public API:
/// only the differential test should construct one.
#[doc(hidden)]
pub struct LegacyServer {
    shared: Option<Arc<Shared>>,
    conns: Arc<Queue<TcpStream>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl LegacyServer {
    /// Bind, start the ingest pipeline, and serve with blocking workers.
    pub fn start(net: NetConfig, serve: ServeConfig) -> Result<LegacyServer, NetStartError> {
        let ingest = IngestServer::try_start(serve).map_err(NetStartError::Ingest)?;
        let listener = TcpListener::bind(&net.addr).map_err(NetStartError::Bind)?;
        let local_addr = listener.local_addr().map_err(NetStartError::Bind)?;

        let http_workers = net.http_workers;
        let conns = Arc::new(Queue::new(http_workers.saturating_mul(4).max(16)));
        let shared = Arc::new(Shared::new(ingest, net, local_addr, "blocking"));

        let workers = (0..http_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let conns = Arc::clone(&conns);
                std::thread::Builder::new()
                    .name(format!("xynet-http-{i}"))
                    .spawn(move || {
                        while let Some(stream) = conns.pop() {
                            shared.http.active_connections.inc();
                            serve_connection(&shared, stream);
                            shared.http.active_connections.dec();
                        }
                    })
                    // INVARIANT: spawn only fails on OS thread exhaustion;
                    // a server that cannot start its workers cannot run.
                    .expect("spawning an HTTP worker thread cannot fail")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("xynet-accept".to_string())
                .spawn(move || loop {
                    let Ok((stream, _)) = listener.accept() else {
                        if shared.draining.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    };
                    if shared.draining.load(Ordering::SeqCst) {
                        break;
                    }
                    shared.http.connections.inc();
                    if conns.push(stream).is_err() {
                        break;
                    }
                })
                // INVARIANT: spawn only fails on OS thread exhaustion;
                // a server that cannot start its acceptor cannot run.
                .expect("spawning the acceptor thread cannot fail")
        };

        Ok(LegacyServer { shared: Some(shared), conns, acceptor: Some(acceptor), workers })
    }

    fn shared(&self) -> &Shared {
        // INVARIANT: `shared` is only vacated by `shutdown`, which consumes
        // the handle — no method can run after it.
        self.shared.as_ref().expect("LegacyServer used after shutdown")
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared().local_addr
    }

    /// Drain loss-free and return the combined accounting.
    pub fn shutdown(mut self) -> NetShutdownReport {
        let shared = self.shared();
        shared.begin_shutdown();
        // The blocking acceptor has no poller to notify: unblock its
        // `accept()` with a throwaway loopback connection (the historical
        // wake-up the reactor replaced with an eventfd).
        drop(TcpStream::connect(shared.local_addr));
        self.conns.close();
        if let Some(acceptor) = self.acceptor.take() {
            // INVARIANT: a panicking acceptor is a server bug; propagate.
            acceptor.join().expect("acceptor thread panicked");
        }
        for w in self.workers.drain(..) {
            // INVARIANT: a panicking HTTP worker is a server bug; propagate.
            w.join().expect("HTTP worker thread panicked");
        }
        // INVARIANT: `shared` is only vacated here, and `self` is consumed.
        let shared = self.shared.take().expect("LegacyServer used after shutdown");
        let connections = shared.http.connections.get();
        let requests = shared.http.requests_total();
        let shared = Arc::into_inner(shared)
            // INVARIANT: every thread holding a clone has been joined above.
            .expect("all worker threads joined, so no Arc clones remain");
        NetShutdownReport { ingest: shared.ingest.shutdown(), connections, requests }
    }
}

impl Drop for LegacyServer {
    fn drop(&mut self) {
        let Some(shared) = self.shared.as_ref() else {
            return; // shutdown() already ran
        };
        shared.begin_shutdown();
        drop(TcpStream::connect(shared.local_addr));
        self.conns.close();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Serve one connection to completion: requests are read and answered in
/// sequence until EOF, an unrecoverable parse error, a timeout, or a drain.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let timeout = Some(shared.config.io_timeout);
    if stream.set_read_timeout(timeout).is_err() || stream.set_write_timeout(timeout).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let limits = Limits {
        max_head_bytes: shared.config.max_head_bytes,
        max_body_bytes: shared.config.max_body_bytes,
    };
    let mut conn = Conn::new(stream);

    loop {
        let head = match conn.read_head(&limits) {
            Ok(Some(head)) => head,
            Ok(None) => return,
            Err(HttpError::Io(_)) => return, // timeout or reset: nothing to say
            Err(e) => {
                shared.http.rejected.inc();
                let mut resp = Response::error(e.status(), &e.to_string());
                resp.close = true;
                shared.http.observe_status(resp.code);
                let _ = write_out(conn.inner_mut(), &resp);
                return;
            }
        };
        let started = Instant::now();

        // Read the declared body up front — even for routes that ignore it —
        // so keep-alive connections stay in sync with request framing.
        let body = match body_length(&head, &limits) {
            Ok(len) => {
                if head.expects_continue
                    && len > 0
                    && http::write_continue(conn.inner_mut()).is_err()
                {
                    return;
                }
                match conn.read_body(len) {
                    Ok(body) => body,
                    Err(_) => return,
                }
            }
            Err(e) => {
                shared.http.rejected.inc();
                let mut resp = Response::error(e.status(), &e.to_string());
                resp.close = true;
                shared.http.observe_status(resp.code);
                let _ = write_out(conn.inner_mut(), &resp);
                return;
            }
        };

        let keep_alive = head.keep_alive;
        let mut resp = match router::route(shared, &head, body) {
            Routed::Done(resp) => resp,
            Routed::Ingest { key, xml } => handle_ingest(shared, &key, xml),
        };
        // While draining, answer the request in hand but end the session.
        if shared.draining.load(Ordering::SeqCst) || !keep_alive {
            resp.close = true;
        }
        shared.http.observe_status(resp.code);
        shared.http.request_time.observe(started.elapsed());
        if write_out(conn.inner_mut(), &resp).is_err() || resp.close {
            return;
        }
    }
}

fn write_out(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    http::write_response(w, resp.code, resp.content_type, &resp.body, &resp.extra, !resp.close)
}

/// `POST /ingest/{key}`: submit and block on the ticket (the behaviour the
/// reactor reimplements with a completion callback).
fn handle_ingest(shared: &Shared, key: &str, xml: String) -> Response {
    let ticket = match shared.ingest.try_submit_tracked(key, xml) {
        Ok(ticket) => ticket,
        Err(SubmitError::QueueFull) => return router::queue_full_response(shared),
        Err(SubmitError::ShuttingDown) => return router::draining_response(),
    };
    let waited = Instant::now();
    let outcome = ticket.wait();
    shared.http.ingest_wait_time.observe(waited.elapsed());
    router::outcome_response(&outcome)
}
