//! The per-connection HTTP state machine driven by the reactor.
//!
//! [`crate::http::Conn`] *pulls* bytes from a blocking `Read`; the reactor
//! cannot block, so this is the same parser inverted into a *push* machine:
//! the event loop [`ConnMachine::feed`]s whatever bytes the socket had and
//! asks [`ConnMachine::next`] what to do. The parsing itself is shared with
//! the pull path (`find_head_end` / `parse_head` / `body_length`), so a
//! request arriving one byte at a time parses identically under both
//! fronts — the differential test in `tests/reactor_differential.rs` holds
//! the two to byte-identical responses.

use crate::http::{body_length, find_head_end, parse_head, Head, HttpError, Limits};

/// A head whose declared body has not fully arrived yet.
struct PendingBody {
    head: Head,
    len: usize,
    /// A `100 Continue` interim response is still owed to the client.
    continue_due: bool,
}

/// What the reactor should do next for this connection.
pub(crate) enum Step {
    /// Nothing actionable buffered: wait for more bytes.
    NeedRead,
    /// Write the `100 Continue` interim response, then call `next` again.
    Continue100,
    /// One complete request is ready for routing.
    Request(Head, Vec<u8>),
    /// The peer finished cleanly (EOF between requests): flush and close.
    Close,
    /// Protocol error: send the mapped status (if possible) and close.
    Fail(HttpError),
}

/// Incremental request assembler over one connection's inbound bytes.
pub(crate) struct ConnMachine {
    limits: Limits,
    /// Bytes received but not yet consumed by a request.
    buf: Vec<u8>,
    pending: Option<PendingBody>,
    /// The peer half-closed its sending side.
    eof: bool,
    /// A `Fail` was emitted; the connection is beyond repair.
    failed: bool,
}

impl ConnMachine {
    pub(crate) fn new(limits: Limits) -> ConnMachine {
        ConnMachine { limits, buf: Vec::new(), pending: None, eof: false, failed: false }
    }

    /// Append bytes read from the transport.
    pub(crate) fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Record that the peer will send no more bytes (read returned 0).
    pub(crate) fn note_eof(&mut self) {
        self.eof = true;
    }

    /// True between requests: no buffered bytes and no partial request.
    /// Idle connections are the ones a drain may close immediately.
    pub(crate) fn is_idle(&self) -> bool {
        self.buf.is_empty() && self.pending.is_none() && !self.failed
    }

    /// Advance as far as the buffered bytes allow.
    pub(crate) fn next(&mut self) -> Step {
        if self.failed {
            return Step::Close;
        }
        loop {
            if let Some(pending) = self.pending.as_mut() {
                if pending.continue_due {
                    pending.continue_due = false;
                    return Step::Continue100;
                }
                if self.buf.len() >= pending.len {
                    // INVARIANT: the `Some` was just matched; take() is the
                    // by-value move the borrow checker cannot see through.
                    let pending = self.pending.take().expect("pending body present");
                    let body: Vec<u8> = self.buf.drain(..pending.len).collect();
                    return Step::Request(pending.head, body);
                }
                if self.eof {
                    return self.fail(HttpError::BadRequest(
                        "connection closed mid-body".to_string(),
                    ));
                }
                return Step::NeedRead;
            }

            let Some(end) = find_head_end(&self.buf) else {
                if self.buf.len() > self.limits.max_head_bytes {
                    return self.fail(HttpError::HeadersTooLarge);
                }
                if self.eof {
                    if self.buf.is_empty() {
                        return Step::Close;
                    }
                    return self.fail(HttpError::BadRequest(
                        "connection closed mid-head".to_string(),
                    ));
                }
                return Step::NeedRead;
            };
            if end > self.limits.max_head_bytes {
                return self.fail(HttpError::HeadersTooLarge);
            }
            let head_bytes: Vec<u8> = self.buf.drain(..end).collect();
            let head = match parse_head(&head_bytes) {
                Ok(head) => head,
                Err(e) => return self.fail(e),
            };
            let len = match body_length(&head, &self.limits) {
                Ok(len) => len,
                Err(e) => return self.fail(e),
            };
            let continue_due = head.expects_continue && len > 0;
            self.pending = Some(PendingBody { head, len, continue_due });
        }
    }

    fn fail(&mut self, e: HttpError) -> Step {
        self.failed = true;
        Step::Fail(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: Limits = Limits { max_head_bytes: 1024, max_body_bytes: 64 };

    /// Feed `raw` in `step`-byte chunks, collecting completed requests.
    fn drive(raw: &[u8], step: usize) -> (Vec<(Head, Vec<u8>)>, Option<u16>, bool) {
        let mut m = ConnMachine::new(LIMITS);
        let mut requests = Vec::new();
        let mut fail = None;
        let mut closed = false;
        for chunk in raw.chunks(step.max(1)) {
            m.feed(chunk);
            loop {
                match m.next() {
                    Step::NeedRead => break,
                    Step::Continue100 => continue,
                    Step::Request(h, b) => requests.push((h, b)),
                    Step::Close => {
                        closed = true;
                        break;
                    }
                    Step::Fail(e) => {
                        fail = Some(e.status());
                        break;
                    }
                }
            }
            if fail.is_some() || closed {
                return (requests, fail, closed);
            }
        }
        m.note_eof();
        loop {
            match m.next() {
                Step::NeedRead => break,
                Step::Continue100 => continue,
                Step::Request(h, b) => requests.push((h, b)),
                Step::Close => {
                    closed = true;
                    break;
                }
                Step::Fail(e) => {
                    fail = Some(e.status());
                    break;
                }
            }
        }
        (requests, fail, closed)
    }

    #[test]
    fn parses_identically_at_every_split_granularity() {
        let raw = b"POST /ingest/doc-1 HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\n<d>hello</d>";
        for step in 1..=raw.len() {
            let (reqs, fail, _) = drive(raw, step);
            assert_eq!(fail, None, "step {step}");
            assert_eq!(reqs.len(), 1, "step {step}");
            assert_eq!(reqs[0].0.method, "POST");
            assert_eq!(reqs[0].0.path, "/ingest/doc-1");
            assert_eq!(reqs[0].1, b"<d>hello</d>");
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nPOST /ingest/k HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        for step in [1, 3, 7, raw.len()] {
            let (reqs, fail, closed) = drive(raw, step);
            assert_eq!(fail, None);
            assert!(closed, "clean EOF after the last request");
            let paths: Vec<&str> = reqs.iter().map(|(h, _)| h.path.as_str()).collect();
            assert_eq!(paths, ["/healthz", "/ingest/k", "/metrics"], "step {step}");
            assert_eq!(reqs[1].1, b"abc");
        }
    }

    #[test]
    fn failures_match_the_pull_parser_statuses() {
        for (raw, want) in [
            (&b"GARBAGE\r\n\r\n"[..], 400),
            (&b"POST /x HTTP/1.1\r\n\r\n"[..], 411),
            (&b"POST /x HTTP/1.1\r\nContent-Length: 65\r\n\r\n"[..], 413),
            (&b"GET /x HTTP/2.0\r\n\r\n"[..], 501),
        ] {
            let (_, fail, _) = drive(raw, 5);
            assert_eq!(fail, Some(want), "{:?}", String::from_utf8_lossy(raw));
        }
        let huge = format!("GET /x HTTP/1.1\r\nCookie: {}\r\n\r\n", "c".repeat(2000));
        let (_, fail, _) = drive(huge.as_bytes(), 64);
        assert_eq!(fail, Some(431));
    }

    #[test]
    fn eof_mid_request_is_a_bad_request() {
        let (_, fail, _) = drive(b"GET /x HTTP/1.1\r\nHost:", 3);
        assert_eq!(fail, Some(400));
        let (_, fail, _) = drive(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 4);
        assert_eq!(fail, Some(400));
    }

    #[test]
    fn expect_continue_surfaces_the_interim_step() {
        let raw = b"POST /i/k HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n";
        let mut m = ConnMachine::new(LIMITS);
        m.feed(raw);
        assert!(matches!(m.next(), Step::Continue100));
        assert!(matches!(m.next(), Step::NeedRead), "body still outstanding");
        m.feed(b"hi");
        match m.next() {
            Step::Request(h, b) => {
                assert!(h.expects_continue);
                assert_eq!(b, b"hi");
            }
            _ => panic!("expected a completed request"),
        }
    }

    #[test]
    fn idleness_tracks_partial_requests() {
        let mut m = ConnMachine::new(LIMITS);
        assert!(m.is_idle());
        m.feed(b"GET /x");
        assert!(matches!(m.next(), Step::NeedRead));
        assert!(!m.is_idle(), "mid-head is not idle");
        m.feed(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(m.next(), Step::Request(..)));
        assert!(m.is_idle(), "between requests is idle again");
    }
}
