//! Network-layer configuration.

use std::time::Duration;

/// Configuration for [`crate::NetServer`]: where to listen and how the HTTP
/// layer behaves. The ingestion pipeline behind it is configured separately
/// via [`xyserve::ServeConfig`].
///
/// Construct with [`NetConfig::new`] and the `with_*` builders; the struct is
/// `#[non_exhaustive]` so fields can be added without breaking callers.
///
/// ```
/// use xynet::NetConfig;
/// let config = NetConfig::new()
///     .with_addr("127.0.0.1:0")
///     .with_max_connections(2048)
///     .with_idle_timeout(std::time::Duration::from_secs(30));
/// assert_eq!(config.addr, "127.0.0.1:0");
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct NetConfig {
    /// Listen address, e.g. `"127.0.0.1:8080"`. Port 0 picks a free port
    /// (the bound address is available via [`crate::NetServer::local_addr`]).
    pub addr: String,
    /// Threads serving HTTP connections on the legacy blocking front. The
    /// reactor multiplexes every connection on one thread and ignores this.
    pub http_workers: usize,
    /// Largest accepted request body; larger `Content-Length` gets `413`.
    pub max_body_bytes: usize,
    /// Largest accepted request head (request line + headers); `431` beyond.
    pub max_head_bytes: usize,
    /// `Retry-After` value (seconds) sent with backpressure `503`s.
    pub retry_after_secs: u64,
    /// Socket read/write timeout on the legacy blocking front. The reactor
    /// uses [`NetConfig::idle_timeout`] instead.
    pub io_timeout: Duration,
    /// Reactor eviction deadline: a connection that completes no response
    /// for this long — idle keep-alive, a slow-loris trickling its head,
    /// or a peer not reading its response — is closed and counted in
    /// `http_evicted_connections_total`. Requests waiting on the scheduler
    /// are exempt.
    pub idle_timeout: Duration,
    /// Hard cap on open connections: at this many, the listener pauses
    /// (`http_accept_paused` gauge) and resumes once the count falls to a
    /// low-water mark (1/16 below the cap).
    pub max_connections: usize,
    /// Soft cap: above this many open connections, new arrivals are
    /// answered `503` + `Retry-After` and closed without being registered.
    pub shed_connections: usize,
    /// Most bytes read from one connection per loop iteration, so a
    /// firehose peer cannot starve the others.
    pub read_budget: usize,
    /// Most bytes written to one connection per loop iteration.
    pub write_budget: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            max_body_bytes: 4 << 20,
            max_head_bytes: 8 << 10,
            retry_after_secs: 1,
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(10),
            max_connections: 8192,
            shed_connections: 8192 - 8192 / 8,
            read_budget: 64 << 10,
            write_budget: 64 << 10,
        }
    }
}

impl NetConfig {
    /// The default configuration: loopback on a free port, 4 MiB body
    /// limit, 8 KiB head limit, 10 s idle timeout, 8192-connection cap with
    /// shedding from 7168.
    pub fn new() -> NetConfig {
        NetConfig::default()
    }

    /// Set the listen address.
    #[must_use]
    pub fn with_addr(mut self, addr: impl Into<String>) -> NetConfig {
        self.addr = addr.into();
        self
    }

    /// Set the number of HTTP worker threads on the legacy blocking front
    /// (minimum 1). The reactor ignores this.
    #[must_use]
    pub fn with_http_workers(mut self, workers: usize) -> NetConfig {
        self.http_workers = workers.max(1);
        self
    }

    /// Set the request-body size limit enforced with `413`.
    #[must_use]
    pub fn with_max_body_bytes(mut self, bytes: usize) -> NetConfig {
        self.max_body_bytes = bytes;
        self
    }

    /// Set the request-head size limit enforced with `431`.
    #[must_use]
    pub fn with_max_head_bytes(mut self, bytes: usize) -> NetConfig {
        self.max_head_bytes = bytes;
        self
    }

    /// Set the `Retry-After` seconds sent with backpressure `503`s.
    #[must_use]
    pub fn with_retry_after_secs(mut self, secs: u64) -> NetConfig {
        self.retry_after_secs = secs;
        self
    }

    /// Set the per-socket read/write timeout of the legacy blocking front.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Duration) -> NetConfig {
        self.io_timeout = timeout;
        self
    }

    /// Set the reactor's idle/slow-loris eviction deadline (minimum 1 ms).
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Duration) -> NetConfig {
        self.idle_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Set the open-connection hard cap (minimum 8). Also re-derives
    /// `shed_connections` to 1/8 below the cap; call
    /// [`NetConfig::with_shed_connections`] *after* this to override.
    #[must_use]
    pub fn with_max_connections(mut self, max: usize) -> NetConfig {
        self.max_connections = max.max(8);
        self.shed_connections = self.max_connections - self.max_connections / 8;
        self
    }

    /// Set the connection-count shed threshold (clamped to the hard cap).
    #[must_use]
    pub fn with_shed_connections(mut self, shed: usize) -> NetConfig {
        self.shed_connections = shed.max(1).min(self.max_connections);
        self
    }

    /// Set the per-connection per-iteration read budget (minimum 512 B).
    #[must_use]
    pub fn with_read_budget(mut self, bytes: usize) -> NetConfig {
        self.read_budget = bytes.max(512);
        self
    }

    /// Set the per-connection per-iteration write budget (minimum 512 B).
    #[must_use]
    pub fn with_write_budget(mut self, bytes: usize) -> NetConfig {
        self.write_budget = bytes.max(512);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose_and_clamp() {
        let c = NetConfig::new()
            .with_addr("0.0.0.0:9000")
            .with_http_workers(0)
            .with_max_body_bytes(123)
            .with_max_head_bytes(456)
            .with_retry_after_secs(7)
            .with_io_timeout(Duration::from_millis(250));
        assert_eq!(c.addr, "0.0.0.0:9000");
        assert_eq!(c.http_workers, 1, "zero workers clamps to one");
        assert_eq!(c.max_body_bytes, 123);
        assert_eq!(c.max_head_bytes, 456);
        assert_eq!(c.retry_after_secs, 7);
        assert_eq!(c.io_timeout, Duration::from_millis(250));
    }

    #[test]
    fn reactor_knobs_clamp_and_derive() {
        let c = NetConfig::new()
            .with_idle_timeout(Duration::ZERO)
            .with_max_connections(0)
            .with_read_budget(1)
            .with_write_budget(1);
        assert_eq!(c.idle_timeout, Duration::from_millis(1));
        assert_eq!(c.max_connections, 8);
        assert_eq!(c.shed_connections, 7, "shed re-derives from the cap");
        assert_eq!(c.read_budget, 512);
        assert_eq!(c.write_budget, 512);

        let c = NetConfig::new().with_max_connections(1000).with_shed_connections(4000);
        assert_eq!(c.shed_connections, 1000, "shed clamps to the cap");
        let defaults = NetConfig::new();
        assert_eq!(defaults.shed_connections, 7168);
    }
}
