//! Network-layer configuration.

use std::time::Duration;

/// Configuration for [`crate::NetServer`]: where to listen and how the HTTP
/// layer behaves. The ingestion pipeline behind it is configured separately
/// via [`xyserve::ServeConfig`].
///
/// Construct with [`NetConfig::new`] and the `with_*` builders; the struct is
/// `#[non_exhaustive]` so fields can be added without breaking callers.
///
/// ```
/// use xynet::NetConfig;
/// let config = NetConfig::new()
///     .with_addr("127.0.0.1:0")
///     .with_http_workers(2)
///     .with_max_body_bytes(1 << 20);
/// assert_eq!(config.addr, "127.0.0.1:0");
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct NetConfig {
    /// Listen address, e.g. `"127.0.0.1:8080"`. Port 0 picks a free port
    /// (the bound address is available via [`crate::NetServer::local_addr`]).
    pub addr: String,
    /// Threads serving HTTP connections. Each handles one connection at a
    /// time, so this bounds concurrent clients.
    pub http_workers: usize,
    /// Largest accepted request body; larger `Content-Length` gets `413`.
    pub max_body_bytes: usize,
    /// Largest accepted request head (request line + headers); `431` beyond.
    pub max_head_bytes: usize,
    /// `Retry-After` value (seconds) sent with backpressure `503`s.
    pub retry_after_secs: u64,
    /// Socket read/write timeout; an idle keep-alive connection is closed
    /// after this long without a request.
    pub io_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            max_body_bytes: 4 << 20,
            max_head_bytes: 8 << 10,
            retry_after_secs: 1,
            io_timeout: Duration::from_secs(10),
        }
    }
}

impl NetConfig {
    /// The default configuration: loopback on a free port, 4 HTTP workers,
    /// 4 MiB body limit, 8 KiB head limit.
    pub fn new() -> NetConfig {
        NetConfig::default()
    }

    /// Set the listen address.
    #[must_use]
    pub fn with_addr(mut self, addr: impl Into<String>) -> NetConfig {
        self.addr = addr.into();
        self
    }

    /// Set the number of HTTP worker threads (minimum 1).
    #[must_use]
    pub fn with_http_workers(mut self, workers: usize) -> NetConfig {
        self.http_workers = workers.max(1);
        self
    }

    /// Set the request-body size limit enforced with `413`.
    #[must_use]
    pub fn with_max_body_bytes(mut self, bytes: usize) -> NetConfig {
        self.max_body_bytes = bytes;
        self
    }

    /// Set the request-head size limit enforced with `431`.
    #[must_use]
    pub fn with_max_head_bytes(mut self, bytes: usize) -> NetConfig {
        self.max_head_bytes = bytes;
        self
    }

    /// Set the `Retry-After` seconds sent with backpressure `503`s.
    #[must_use]
    pub fn with_retry_after_secs(mut self, secs: u64) -> NetConfig {
        self.retry_after_secs = secs;
        self
    }

    /// Set the per-socket read/write timeout.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Duration) -> NetConfig {
        self.io_timeout = timeout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose_and_clamp() {
        let c = NetConfig::new()
            .with_addr("0.0.0.0:9000")
            .with_http_workers(0)
            .with_max_body_bytes(123)
            .with_max_head_bytes(456)
            .with_retry_after_secs(7)
            .with_io_timeout(Duration::from_millis(250));
        assert_eq!(c.addr, "0.0.0.0:9000");
        assert_eq!(c.http_workers, 1, "zero workers clamps to one");
        assert_eq!(c.max_body_bytes, 123);
        assert_eq!(c.max_head_bytes, 456);
        assert_eq!(c.retry_after_secs, 7);
        assert_eq!(c.io_timeout, Duration::from_millis(250));
    }
}
