//! A deterministic in-memory [`Driver`] for reactor tests — no sockets, no
//! kernel, no real clock.
//!
//! The torture harness (`tests/net_torture.rs`) scripts connections through
//! [`SimNet`]: connect, deliver bytes in arbitrary splits, half-close,
//! reset, read back what the server wrote, and advance a **virtual clock**
//! that only moves when the test says so — which makes idle-timeout and
//! slow-loris eviction exactly reproducible. The driver honours the same
//! oneshot readiness contract as the real epoll/poll backends, so interest
//! re-arming bugs show up here first.
//!
//! [`Driver::poll`] never sleeps for long: with no deliverable event it
//! parks on a condvar for at most a few real milliseconds (completion
//! callbacks from ingest workers notify it), then reports an empty batch.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::driver::{Driver, Event, Interest, Token, Transport, Waker, LISTENER_TOKEN};

/// Longest real time one empty `poll` may block waiting for cross-thread
/// completions before reporting an empty batch.
const POLL_SLICE: Duration = Duration::from_millis(5);

/// One scripted piece of a connection's inbound stream.
enum Chunk {
    Data(Vec<u8>),
    /// Half-close: reads observe EOF, writes still succeed.
    Eof,
    /// Hard disconnect: the next read errors.
    Reset,
}

/// Server-side view of one simulated connection.
struct SimConn {
    inbound: VecDeque<Chunk>,
    outbound: Vec<u8>,
    /// Bytes the "network" accepts before the server sees `WouldBlock`;
    /// `None` is an unlimited window. Freed by [`SimClient::take_output`].
    recv_window: Option<usize>,
    /// The client hard-closed; server writes fail immediately.
    reset: bool,
    /// The server closed (deregistered) this connection.
    server_closed: bool,
}

#[derive(Default)]
struct SimState {
    clock: Duration,
    next_id: u64,
    pending_accepts: VecDeque<u64>,
    conns: HashMap<u64, SimConn>,
    /// Armed interest per reactor token (oneshot: cleared on delivery).
    armed: HashMap<Token, (u64, Interest)>,
    accept_armed: bool,
    notified: bool,
}

struct SimShared {
    state: Mutex<SimState>,
    cv: Condvar,
    /// Anchor for the virtual clock ([`Driver::now`] = `epoch + clock`).
    epoch: Instant,
}

impl SimShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, SimState> {
        // INVARIANT: a poisoned lock means a panicking holder; propagate.
        self.state.lock().unwrap()
    }

    fn wake(&self) {
        self.lock().notified = true;
        self.cv.notify_all();
    }
}

/// The test-facing half: create connections, script traffic, advance time.
#[derive(Clone)]
pub struct SimNet {
    shared: Arc<SimShared>,
}

impl SimNet {
    /// A fresh simulated network: the driver goes to [`crate::Reactor::new`],
    /// the net handle stays with the test.
    pub fn new() -> (SimDriver, SimNet) {
        let shared = Arc::new(SimShared {
            state: Mutex::new(SimState::default()),
            cv: Condvar::new(),
            epoch: Instant::now(),
        });
        (SimDriver { shared: Arc::clone(&shared) }, SimNet { shared })
    }

    /// Open a new client connection (lands in the accept backlog).
    pub fn connect(&self) -> SimClient {
        let mut state = self.shared.lock();
        let id = state.next_id;
        state.next_id += 1;
        state.conns.insert(
            id,
            SimConn {
                inbound: VecDeque::new(),
                outbound: Vec::new(),
                recv_window: None,
                reset: false,
                server_closed: false,
            },
        );
        state.pending_accepts.push_back(id);
        drop(state);
        self.shared.wake();
        SimClient { id, shared: Arc::clone(&self.shared) }
    }

    /// Advance the virtual clock (the only way it moves).
    pub fn advance(&self, by: Duration) {
        self.shared.lock().clock += by;
        self.shared.wake();
    }
}

/// A scripted client endpoint.
#[derive(Clone)]
pub struct SimClient {
    id: u64,
    shared: Arc<SimShared>,
}

impl SimClient {
    fn with_conn<R>(&self, f: impl FnOnce(&mut SimConn) -> R) -> R {
        let mut state = self.shared.lock();
        // INVARIANT: connections are never removed from the map while a
        // SimClient is alive; only flagged closed.
        let conn = state.conns.get_mut(&self.id).expect("connection exists");
        f(conn)
    }

    /// Deliver bytes to the server (one readiness chunk; split calls to
    /// script packet boundaries).
    pub fn send(&self, bytes: &[u8]) {
        self.with_conn(|c| c.inbound.push_back(Chunk::Data(bytes.to_vec())));
        self.shared.wake();
    }

    /// Half-close the sending side (like `shutdown(SHUT_WR)`).
    pub fn finish(&self) {
        self.with_conn(|c| c.inbound.push_back(Chunk::Eof));
        self.shared.wake();
    }

    /// Hard-disconnect: queued data still delivers first, then the server's
    /// read errors; server writes fail immediately.
    pub fn reset(&self) {
        self.with_conn(|c| {
            c.inbound.push_back(Chunk::Reset);
            c.reset = true;
        });
        self.shared.wake();
    }

    /// Take everything the server has written since the last call (also
    /// frees the receive window).
    pub fn take_output(&self) -> Vec<u8> {
        self.with_conn(|c| std::mem::take(&mut c.outbound))
    }

    /// Bytes written by the server and not yet taken.
    pub fn output_len(&self) -> usize {
        self.with_conn(|c| c.outbound.len())
    }

    /// Cap how many un-taken bytes the server can write before seeing
    /// `WouldBlock` (simulates a stalled reader / tiny receive window).
    pub fn set_recv_window(&self, bytes: Option<usize>) {
        self.with_conn(|c| c.recv_window = bytes);
        self.shared.wake();
    }

    /// True once the server has closed this connection.
    pub fn server_closed(&self) -> bool {
        self.with_conn(|c| c.server_closed)
    }
}

/// Server-side transport for one simulated connection.
struct SimTransport {
    id: u64,
    shared: Arc<SimShared>,
}

impl Drop for SimTransport {
    /// Dropping the server's endpoint closes the socket, whether or not it
    /// was ever registered (shed connections are answered and dropped
    /// without registration).
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        if let Some(conn) = state.conns.get_mut(&self.id) {
            conn.server_closed = true;
        }
    }
}

impl Transport for SimTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut state = self.shared.lock();
        let Some(conn) = state.conns.get_mut(&self.id) else {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "gone"));
        };
        match conn.inbound.front_mut() {
            None => Err(io::ErrorKind::WouldBlock.into()),
            Some(Chunk::Eof) => Ok(0), // left in place: EOF is sticky
            Some(Chunk::Reset) => Err(io::ErrorKind::ConnectionReset.into()),
            Some(Chunk::Data(data)) => {
                let n = data.len().min(buf.len());
                buf[..n].copy_from_slice(&data[..n]);
                data.drain(..n);
                if data.is_empty() {
                    conn.inbound.pop_front();
                }
                Ok(n)
            }
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut state = self.shared.lock();
        let Some(conn) = state.conns.get_mut(&self.id) else {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "gone"));
        };
        if conn.reset {
            return Err(io::ErrorKind::BrokenPipe.into());
        }
        let room = match conn.recv_window {
            None => buf.len(),
            Some(cap) => cap.saturating_sub(conn.outbound.len()).min(buf.len()),
        };
        if room == 0 && !buf.is_empty() {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        conn.outbound.extend_from_slice(&buf[..room]);
        Ok(room)
    }

    fn id(&self) -> u64 {
        self.id
    }
}

/// The reactor-facing half of [`SimNet`].
pub struct SimDriver {
    shared: Arc<SimShared>,
}

impl SimDriver {
    /// Events deliverable right now under the armed interest set. Delivery
    /// disarms (oneshot), exactly like the epoll/poll backends.
    fn collect(state: &mut SimState, out: &mut Vec<Event>) {
        if state.accept_armed && !state.pending_accepts.is_empty() {
            state.accept_armed = false;
            out.push(Event { token: LISTENER_TOKEN, readable: true, writable: false });
        }
        let mut delivered: Vec<Token> = Vec::new();
        for (&token, &(id, interest)) in state.armed.iter() {
            let Some(conn) = state.conns.get(&id) else { continue };
            let readable = interest.readable && !conn.inbound.is_empty();
            let writable = interest.writable
                && !conn.reset
                && conn.recv_window.is_none_or(|cap| conn.outbound.len() < cap);
            // A reset also trips writers waiting for window.
            let writable = writable || (interest.writable && conn.reset);
            if readable || writable {
                out.push(Event { token, readable, writable });
                delivered.push(token);
            }
        }
        for token in delivered {
            if let Some(entry) = state.armed.get_mut(&token) {
                entry.1 = Interest::NONE;
            }
        }
    }
}

impl Driver for SimDriver {
    fn local_addr(&self) -> SocketAddr {
        // INVARIANT: a fixed literal address always parses.
        "127.0.0.1:0".parse().expect("literal address parses")
    }

    fn backend(&self) -> &'static str {
        "sim"
    }

    fn now(&self) -> Instant {
        let state = self.shared.lock();
        self.shared.epoch + state.clock
    }

    fn poll(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let slice = timeout.unwrap_or(POLL_SLICE).min(POLL_SLICE);
        let deadline = Instant::now() + slice;
        let mut state = self.shared.lock();
        loop {
            SimDriver::collect(&mut state, out);
            if !out.is_empty() || state.notified {
                state.notified = false;
                return Ok(());
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(());
            }
            // INVARIANT: a poisoned lock means a panicking holder; propagate.
            let (next, _) = self.shared.cv.wait_timeout(state, left).unwrap();
            state = next;
        }
    }

    fn accept(&mut self) -> io::Result<Option<Box<dyn Transport>>> {
        let mut state = self.shared.lock();
        match state.pending_accepts.pop_front() {
            Some(id) => {
                Ok(Some(Box::new(SimTransport { id, shared: Arc::clone(&self.shared) })))
            }
            None => Ok(None),
        }
    }

    fn arm_accept(&mut self, enabled: bool) -> io::Result<()> {
        self.shared.lock().accept_armed = enabled;
        Ok(())
    }

    fn register(
        &mut self,
        token: Token,
        transport: &dyn Transport,
        interest: Interest,
    ) -> io::Result<()> {
        self.shared.lock().armed.insert(token, (transport.id(), interest));
        Ok(())
    }

    fn rearm(
        &mut self,
        token: Token,
        transport: &dyn Transport,
        interest: Interest,
    ) -> io::Result<()> {
        self.shared.lock().armed.insert(token, (transport.id(), interest));
        Ok(())
    }

    fn deregister(&mut self, transport: &dyn Transport) -> io::Result<()> {
        let mut state = self.shared.lock();
        let id = transport.id();
        state.armed.retain(|_, (conn_id, _)| *conn_id != id);
        if let Some(conn) = state.conns.get_mut(&id) {
            conn.server_closed = true;
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || shared.wake())
    }
}
