//! The reactor's seam to the outside world: [`Driver`] (readiness +
//! accepting) and [`Transport`] (one connection's byte stream).
//!
//! The reactor is written entirely against these two traits, so the same
//! state-machine code runs over three backends:
//!
//! - [`crate::sysdrv::SysDriver`] — real nonblocking sockets polled through
//!   the `polling` shim (epoll on Linux, `poll(2)` fallback);
//! - [`crate::sim::SimDriver`] — a deterministic in-memory driver for the
//!   torture tests: scripted byte chunks, virtual time, no sockets;
//! - (tests may provide their own `Driver` for targeted scenarios.)
//!
//! The readiness contract is **oneshot**, matching both epoll's
//! `EPOLLONESHOT` and the shim's `poll(2)` emulation: once an event for a
//! token is delivered, that token stays dormant until the reactor re-arms
//! it with [`Driver::rearm`]. The listener obeys the same contract through
//! [`Driver::arm_accept`].

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies one registered connection inside the reactor's slot table.
pub type Token = usize;

/// The token the driver uses to report "the listener is ready to accept".
/// One below the `polling` shim's reserved `NOTIFY_KEY`, so connection
/// slots (small indices) can never collide with either.
pub const LISTENER_TOKEN: Token = usize::MAX - 1;

/// Wakes a blocked [`Driver::poll`] from any thread (completion callbacks,
/// shutdown requests). Replaces the old loopback dummy-connect trick: the
/// real driver backs this with an eventfd/self-pipe owned by the poller.
pub type Waker = Arc<dyn Fn() + Send + Sync>;

/// What readiness a connection should be (re-)armed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the peer has bytes (or EOF / an error) to read.
    pub readable: bool,
    /// Wake when the socket can accept more outgoing bytes.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write readiness only.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Both directions.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// Registered but dormant (e.g. while a request is in flight on the
    /// scheduler and output is fully flushed).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registered token ([`LISTENER_TOKEN`] for the acceptor).
    pub token: Token,
    /// Readable now (errors and hang-ups are delivered as readable so the
    /// next `read` observes them).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
}

/// One connection's nonblocking byte stream.
///
/// Both methods follow nonblocking-socket semantics: `Ok(0)` from `read`
/// is EOF, `ErrorKind::WouldBlock` means "re-arm and wait", any other
/// error is fatal for the connection.
pub trait Transport: Send {
    /// Read up to `buf.len()` bytes.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Write up to `buf.len()` bytes, returning how many were accepted.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// A stable identity the driver can map back to its own bookkeeping
    /// (the raw fd for sockets, the connection id in the sim).
    fn id(&self) -> u64;
}

/// The event loop's backend: readiness polling plus connection intake.
pub trait Driver: Send {
    /// The bound listen address (a placeholder in the sim).
    fn local_addr(&self) -> SocketAddr;

    /// Backend name for banners and metrics: `"epoll"`, `"poll"`, `"sim"`.
    fn backend(&self) -> &'static str;

    /// The driver's clock. Real drivers return [`Instant::now`]; the sim
    /// returns a virtual clock so idle-eviction tests are deterministic.
    fn now(&self) -> Instant;

    /// Block until readiness events arrive, the timeout elapses, or a
    /// [`Waker`] fires; deliver events into `out` (cleared first).
    fn poll(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;

    /// Accept one pending connection, `Ok(None)` when the backlog is empty.
    fn accept(&mut self) -> io::Result<Option<Box<dyn Transport>>>;

    /// Arm (or pause) accept readiness. Like connection interest, accept
    /// readiness is oneshot: delivery of a [`LISTENER_TOKEN`] event disarms
    /// it until the next `arm_accept(true)`.
    fn arm_accept(&mut self, enabled: bool) -> io::Result<()>;

    /// Register a new connection under `token` with an initial interest.
    fn register(
        &mut self,
        token: Token,
        transport: &dyn Transport,
        interest: Interest,
    ) -> io::Result<()>;

    /// Re-arm an already-registered connection (the oneshot re-subscribe).
    fn rearm(
        &mut self,
        token: Token,
        transport: &dyn Transport,
        interest: Interest,
    ) -> io::Result<()>;

    /// Remove a connection from the poll set (called before dropping the
    /// transport).
    fn deregister(&mut self, transport: &dyn Transport) -> io::Result<()>;

    /// A handle that wakes [`Driver::poll`] from any thread.
    fn waker(&self) -> Waker;
}
