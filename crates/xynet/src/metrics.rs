//! HTTP-layer metrics, appended to the ingest pipeline's exposition.
//!
//! The ingest loop owns its own registry ([`xyserve::Metrics`]); this one
//! covers what only the network front can see — connections, per-route and
//! per-status request counts, and the end-to-end request latency including
//! time spent waiting on the ingest ticket. Both render through the shared
//! [`xyserve::metrics::expo`] writers, so `GET /metrics` is one consistent
//! Prometheus document.

use xyserve::metrics::{expo, Counter, Gauge, Histogram};

/// Routes the server distinguishes in `http_requests_total{route=...}`.
const ROUTES: &[&str] = &["ingest", "metrics", "healthz", "doc", "admin", "other"];

/// Statuses the server emits, pre-allocated so counting stays lock-free.
const STATUSES: &[u16] = &[200, 202, 400, 404, 405, 411, 413, 422, 431, 501, 503];

/// Metric registry for the HTTP layer.
#[derive(Debug, Default)]
pub struct HttpMetrics {
    /// Connections accepted.
    pub connections: Counter,
    /// Connections currently being served.
    pub active_connections: Gauge,
    /// Connections evicted by the reactor's idle/slow-loris deadline.
    pub evicted: Counter,
    /// Connections shed at accept with `503` (above `shed_connections`).
    pub shed: Counter,
    /// 1 while the listener is paused at the `max_connections` high-water
    /// mark, 0 otherwise.
    pub accept_paused: Gauge,
    /// Requests that failed before a route was resolved (parse errors).
    pub rejected: Counter,
    /// Requests per route, indexed like [`ROUTES`].
    routes: [Counter; 6],
    /// Responses per status, indexed like [`STATUSES`]; last slot = other.
    statuses: [Counter; 12],
    /// Wall-clock request latency: first head byte to response written,
    /// including the wait for the ingest outcome.
    pub request_time: Histogram,
    /// Time `POST /ingest` spent waiting for its pipeline outcome (ticket
    /// wait on the blocking front, completion-callback wait on the reactor).
    pub ingest_wait_time: Histogram,
    /// Time each readiness-loop iteration spent processing (poll wait
    /// excluded): the reactor's saturation signal.
    pub loop_time: Histogram,
}

impl HttpMetrics {
    /// A zeroed registry.
    pub fn new() -> HttpMetrics {
        HttpMetrics::default()
    }

    /// Count one request against its route family (unknown routes land in
    /// `other`).
    pub fn observe_route(&self, route: &str) {
        let i = ROUTES.iter().position(|r| *r == route).unwrap_or(ROUTES.len() - 1);
        self.routes[i].inc();
    }

    /// Count one response by status code.
    pub fn observe_status(&self, code: u16) {
        let i = STATUSES.iter().position(|s| *s == code).unwrap_or(STATUSES.len());
        self.statuses[i].inc();
    }

    /// Responses recorded for `code` so far.
    pub fn status_count(&self, code: u16) -> u64 {
        let i = STATUSES.iter().position(|s| *s == code).unwrap_or(STATUSES.len());
        self.statuses[i].get()
    }

    /// Requests recorded for `route` so far.
    pub fn route_count(&self, route: &str) -> u64 {
        let i = ROUTES.iter().position(|r| *r == route).unwrap_or(ROUTES.len() - 1);
        self.routes[i].get()
    }

    /// Total requests received across every route.
    pub fn requests_total(&self) -> u64 {
        self.routes.iter().map(Counter::get).sum()
    }

    /// Append this registry's families to a Prometheus exposition.
    pub fn render_into(&self, out: &mut String) {
        expo::counter(
            out,
            "http_connections_total",
            "Connections accepted by the network front.",
            self.connections.get(),
        );
        expo::gauge(
            out,
            "http_active_connections",
            "Connections currently being served.",
            self.active_connections.get() as f64,
        );
        expo::counter(
            out,
            "http_evicted_connections_total",
            "Connections evicted by the idle/slow-loris deadline.",
            self.evicted.get(),
        );
        expo::counter(
            out,
            "http_shed_connections_total",
            "Connections shed at accept with 503 (connection-count backpressure).",
            self.shed.get(),
        );
        expo::gauge(
            out,
            "http_accept_paused",
            "1 while the listener is paused at the connection high-water mark.",
            self.accept_paused.get() as f64,
        );
        expo::counter(
            out,
            "http_rejected_requests_total",
            "Requests rejected before routing (malformed or over limits).",
            self.rejected.get(),
        );
        let routes: Vec<(String, u64)> = ROUTES
            .iter()
            .zip(&self.routes)
            .map(|(r, c)| ((*r).to_string(), c.get()))
            .collect();
        expo::labeled_counter(
            out,
            "http_requests_total",
            "Requests received, by route.",
            "route",
            &routes,
        );
        let statuses: Vec<(String, u64)> = STATUSES
            .iter()
            .map(|s| s.to_string())
            .chain(["other".to_string()])
            .zip(self.statuses.iter().map(Counter::get))
            .collect();
        expo::labeled_counter(
            out,
            "http_responses_total",
            "Responses sent, by status code.",
            "code",
            &statuses,
        );
        expo::histogram(
            out,
            "http_request_seconds",
            "Request latency from head read to response written.",
            &self.request_time,
        );
        expo::histogram(
            out,
            "http_ingest_wait_seconds",
            "Time POST /ingest spent waiting for the pipeline outcome.",
            &self.ingest_wait_time,
        );
        expo::histogram(
            out,
            "http_loop_iteration_seconds",
            "Readiness-loop iteration processing time (poll wait excluded).",
            &self.loop_time,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn render_emits_every_family_with_headers() {
        let m = HttpMetrics::new();
        m.connections.inc();
        m.active_connections.set(1);
        m.observe_route("ingest");
        m.observe_route("nonsense");
        m.observe_status(200);
        m.observe_status(599);
        m.request_time.observe(Duration::from_micros(750));
        m.ingest_wait_time.observe(Duration::from_micros(20));
        m.evicted.inc();
        m.shed.inc();
        m.accept_paused.set(1);
        m.loop_time.observe(Duration::from_micros(5));

        let mut out = String::new();
        m.render_into(&mut out);
        assert!(out.contains("# TYPE http_connections_total counter"), "{out}");
        assert!(out.contains("http_connections_total 1"));
        assert!(out.contains("http_active_connections 1"));
        assert!(out.contains("http_evicted_connections_total 1"));
        assert!(out.contains("http_shed_connections_total 1"));
        assert!(out.contains("http_accept_paused 1"));
        assert!(out.contains("http_loop_iteration_seconds_count 1"));
        assert!(out.contains("http_requests_total{route=\"ingest\"} 1"));
        assert!(out.contains("http_requests_total{route=\"other\"} 1"));
        assert!(out.contains("http_responses_total{code=\"200\"} 1"));
        assert!(out.contains("http_responses_total{code=\"other\"} 1"));
        assert!(out.contains("# TYPE http_request_seconds histogram"));
        assert!(out.contains("http_request_seconds_count 1"));
        assert!(out.contains("http_ingest_wait_seconds_count 1"));
    }

    #[test]
    fn counts_are_queryable_for_tests() {
        let m = HttpMetrics::new();
        m.observe_status(503);
        m.observe_status(503);
        m.observe_route("metrics");
        assert_eq!(m.status_count(503), 2);
        assert_eq!(m.status_count(200), 0);
        assert_eq!(m.route_count("metrics"), 1);
    }
}
