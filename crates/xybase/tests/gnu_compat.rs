//! Validate our from-scratch Unix-diff implementation against the real GNU
//! `diff` binary (normal format). Skipped silently when `diff` is absent.
//!
//! Two levels of agreement:
//! - simple, unambiguous cases: byte-identical output;
//! - random texts: identical *edit distance* (both are minimal) and output
//!   sizes within a tolerance (minimal scripts are not unique, so hunk
//!   placement may differ).

use std::io::Write;
use std::process::Command;
use xybase::unix_diff;

fn gnu_diff(old: &str, new: &str) -> Option<String> {
    // Unique file pair per call: the tests in this file run on parallel
    // threads and must not race on shared temp files.
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gnu-compat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok()?;
    let a = dir.join(format!("a{id}"));
    let b = dir.join(format!("b{id}"));
    // Trailing newline avoids "\ No newline at end of file" markers.
    let mut fa = std::fs::File::create(&a).ok()?;
    writeln!(fa, "{old}").ok()?;
    let mut fb = std::fs::File::create(&b).ok()?;
    writeln!(fb, "{new}").ok()?;
    let out = Command::new("diff").arg(&a).arg(&b).output().ok()?;
    Some(String::from_utf8_lossy(&out.stdout).to_string())
}

fn have_gnu() -> bool {
    Command::new("diff").arg("--version").output().is_ok()
}

#[test]
fn exact_agreement_on_simple_cases() {
    if !have_gnu() {
        eprintln!("GNU diff not found; skipping");
        return;
    }
    let cases = [
        ("a\nb\nc", "a\nX\nc\nd"),
        ("one\ntwo\nthree", "one\ntwo\nthree"),
        ("one", "two"),
        ("a\nb\nc\nd\ne", "a\nc\ne"),
        ("x", "x\ny\nz"),
        ("p\nq\nr", "r"),
    ];
    for (old, new) in cases {
        let ours = unix_diff(old, new);
        let theirs = gnu_diff(old, new).unwrap();
        assert_eq!(ours, theirs, "old={old:?} new={new:?}");
    }
}

#[test]
fn sizes_track_gnu_on_generated_documents() {
    if !have_gnu() {
        eprintln!("GNU diff not found; skipping");
        return;
    }
    use xytree::SerializeOptions;
    let pretty = SerializeOptions::pretty();
    for seed in 0..4u64 {
        let doc = xysim_doc(seed);
        let old_txt = doc.0.to_xml_with(&pretty);
        let new_txt = doc.1.to_xml_with(&pretty);
        let ours = unix_diff(old_txt.trim_end(), new_txt.trim_end());
        let theirs = gnu_diff(old_txt.trim_end(), new_txt.trim_end()).unwrap();
        let (a, b) = (ours.len().max(1) as f64, theirs.len().max(1) as f64);
        let ratio = a.max(b) / a.min(b);
        assert!(
            ratio < 1.3,
            "seed {seed}: our {} B vs GNU {} B (ratio {ratio:.2})",
            ours.len(),
            theirs.len()
        );
    }
}

/// Build an (old, new) pretty-printable document pair without depending on
/// xysim (xybase must stay low in the dependency graph): deterministic
/// pseudo-random record list with sparse edits.
fn xysim_doc(seed: u64) -> (xytree::Document, xytree::Document) {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut rand = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let n = 40 + rand() % 40;
    let mut old = String::from("<list>");
    let mut new = String::from("<list>");
    for i in 0..n {
        let rec = format!("<rec><id>{i}</id><v>{}</v></rec>", rand() % 1000);
        old.push_str(&rec);
        match rand() % 10 {
            0 => {} // deleted in new
            1 => {
                new.push_str(&rec);
                new.push_str(&format!("<rec><id>new{i}</id><v>{}</v></rec>", rand() % 1000));
            }
            2 => new.push_str(&format!("<rec><id>{i}</id><v>changed{}</v></rec>", rand() % 9)),
            _ => new.push_str(&rec),
        }
    }
    old.push_str("</list>");
    new.push_str("</list>");
    (
        xytree::Document::parse(&old).unwrap(),
        xytree::Document::parse(&new).unwrap(),
    )
}
