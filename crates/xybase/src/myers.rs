//! Myers' shortest-edit-script algorithm (the engine of Unix `diff`).
//!
//! This is the linear-space divide-and-conquer refinement: `O((N+M)·D)` time
//! and `O(N+M)` space, recursing on the *middle snake* of each box. The
//! string edit problem is the root of the whole diff family the paper
//! surveys in §3 ("the basis of edit distances and minimum edit script is
//! the string edit problem"); we need it both as the Unix-diff comparator of
//! Figure 6 and as the core of the DiffMK baseline.

/// One step of an edit script over two sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edit {
    /// Element present in both sequences (old index, new index).
    Keep(usize, usize),
    /// Element deleted from the old sequence (old index).
    Delete(usize),
    /// Element inserted from the new sequence (new index).
    Insert(usize),
}

/// Compute a shortest edit script between `a` and `b`.
///
/// Works on any `PartialEq` items; callers hash lines/tokens to `u64` first
/// for speed.
pub fn diff_slices<T: PartialEq>(a: &[T], b: &[T]) -> Vec<Edit> {
    let mut edits = Vec::new();
    let path = find_path(a, b, BBox { left: 0, top: 0, right: a.len(), bottom: b.len() });
    walk_snakes(a, b, &path, &mut edits);
    edits
}

/// Number of non-keep steps (the D of the shortest edit script).
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    diff_slices(a, b)
        .iter()
        .filter(|e| !matches!(e, Edit::Keep(..)))
        .count()
}

/// A sub-rectangle of the edit graph: old indices `left..right`, new indices
/// `top..bottom`.
#[derive(Debug, Clone, Copy)]
struct BBox {
    left: usize,
    top: usize,
    right: usize,
    bottom: usize,
}

impl BBox {
    fn width(&self) -> isize {
        (self.right - self.left) as isize
    }
    fn height(&self) -> isize {
        (self.bottom - self.top) as isize
    }
    fn size(&self) -> isize {
        self.width() + self.height()
    }
    fn delta(&self) -> isize {
        self.width() - self.height()
    }
}

/// Ring-buffer view over the k-diagonal arrays (k may be negative).
#[inline]
fn ring(v: &[isize], k: isize) -> isize {
    let n = v.len() as isize;
    v[(((k % n) + n) % n) as usize]
}

#[inline]
fn ring_set(v: &mut [isize], k: isize, value: isize) {
    let n = v.len() as isize;
    v[(((k % n) + n) % n) as usize] = value;
}

type Snake = ((usize, usize), (usize, usize));

/// The midpoint ("middle snake") of the shortest path through `bbox`.
fn midpoint<T: PartialEq>(a: &[T], b: &[T], bbox: BBox) -> Option<Snake> {
    if bbox.size() == 0 {
        return None;
    }
    let max = (bbox.size() + 1) / 2;
    let len = (2 * max + 1) as usize;
    let mut vf = vec![0isize; len];
    let mut vb = vec![0isize; len];
    ring_set(&mut vf, 1, bbox.left as isize);
    ring_set(&mut vb, 1, bbox.bottom as isize);
    for d in 0..=max {
        if let Some(s) = forwards(a, b, bbox, &mut vf, &vb, d) {
            return Some(s);
        }
        if let Some(s) = backward(a, b, bbox, &vf, &mut vb, d) {
            return Some(s);
        }
    }
    None
}

fn forwards<T: PartialEq>(
    a: &[T],
    b: &[T],
    bbox: BBox,
    vf: &mut [isize],
    vb: &[isize],
    d: isize,
) -> Option<Snake> {
    let delta = bbox.delta();
    let mut k = d;
    while k >= -d {
        let c = k - delta;
        let (px, mut x);
        if k == -d || (k != d && ring(vf, k - 1) < ring(vf, k + 1)) {
            x = ring(vf, k + 1);
            px = x;
        } else {
            px = ring(vf, k - 1);
            x = px + 1;
        }
        let mut y = bbox.top as isize + (x - bbox.left as isize) - k;
        let py = if d == 0 || x != px { y } else { y - 1 };
        while x < bbox.right as isize
            && y < bbox.bottom as isize
            && a[x as usize] == b[y as usize]
        {
            x += 1;
            y += 1;
        }
        ring_set(vf, k, x);
        if delta % 2 != 0 && (-(d - 1)..=d - 1).contains(&c) && y >= ring(vb, c) {
            return Some(((px as usize, py as usize), (x as usize, y as usize)));
        }
        k -= 2;
    }
    None
}

fn backward<T: PartialEq>(
    a: &[T],
    b: &[T],
    bbox: BBox,
    vf: &[isize],
    vb: &mut [isize],
    d: isize,
) -> Option<Snake> {
    let delta = bbox.delta();
    let mut c = d;
    while c >= -d {
        let k = c + delta;
        let (py, mut y);
        if c == -d || (c != d && ring(vb, c - 1) > ring(vb, c + 1)) {
            y = ring(vb, c + 1);
            py = y;
        } else {
            py = ring(vb, c - 1);
            y = py - 1;
        }
        let mut x = bbox.left as isize + (y - bbox.top as isize) + k;
        let px = if d == 0 || y != py { x } else { x + 1 };
        while x > bbox.left as isize
            && y > bbox.top as isize
            && a[(x - 1) as usize] == b[(y - 1) as usize]
        {
            x -= 1;
            y -= 1;
        }
        ring_set(vb, c, y);
        if delta % 2 == 0 && (-d..=d).contains(&k) && x <= ring(vf, k) {
            return Some(((x as usize, y as usize), (px as usize, py as usize)));
        }
        c -= 2;
    }
    None
}

/// The full path (list of corner points) of one shortest edit script.
fn find_path<T: PartialEq>(a: &[T], b: &[T], bbox: BBox) -> Vec<(usize, usize)> {
    let Some((start, finish)) = midpoint(a, b, bbox) else {
        return Vec::new();
    };
    let head = find_path(a, b, BBox { left: bbox.left, top: bbox.top, right: start.0, bottom: start.1 });
    let tail = find_path(a, b, BBox { left: finish.0, top: finish.1, right: bbox.right, bottom: bbox.bottom });
    let mut path = if head.is_empty() { vec![start] } else { head };
    if tail.is_empty() {
        path.push(finish);
    } else {
        path.extend(tail);
    }
    path
}

/// Convert the corner-point path into an edit script.
fn walk_snakes<T: PartialEq>(
    a: &[T],
    b: &[T],
    path: &[(usize, usize)],
    out: &mut Vec<Edit>,
) {
    if path.is_empty() {
        // Both sequences empty.
        return;
    }
    let emit_diagonal = |x1: &mut usize, y1: &mut usize, x2: usize, y2: usize, out: &mut Vec<Edit>| {
        while *x1 < x2 && *y1 < y2 && a[*x1] == b[*y1] {
            out.push(Edit::Keep(*x1, *y1));
            *x1 += 1;
            *y1 += 1;
        }
    };
    for w in path.windows(2) {
        let (mut x1, mut y1) = w[0];
        let (x2, y2) = w[1];
        emit_diagonal(&mut x1, &mut y1, x2, y2, out);
        use std::cmp::Ordering;
        match (x2 as isize - x1 as isize).cmp(&(y2 as isize - y1 as isize)) {
            Ordering::Less => {
                out.push(Edit::Insert(y1));
                y1 += 1;
            }
            Ordering::Greater => {
                out.push(Edit::Delete(x1));
                x1 += 1;
            }
            Ordering::Equal => {}
        }
        emit_diagonal(&mut x1, &mut y1, x2, y2, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference LCS length by quadratic DP — the oracle for minimality.
    fn lcs_len<T: PartialEq>(a: &[T], b: &[T]) -> usize {
        let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                dp[i][j] = if a[i - 1] == b[j - 1] {
                    dp[i - 1][j - 1] + 1
                } else {
                    dp[i - 1][j].max(dp[i][j - 1])
                };
            }
        }
        dp[a.len()][b.len()]
    }

    /// Check script validity: replays to `b`, and keeps form an LCS.
    fn check<T: PartialEq + Clone + std::fmt::Debug>(a: &[T], b: &[T]) {
        let script = diff_slices(a, b);
        // Replay.
        let mut rebuilt: Vec<T> = Vec::new();
        let mut ai = 0usize;
        for e in &script {
            match *e {
                Edit::Keep(x, y) => {
                    assert_eq!(a[x], b[y], "keep must pair equal items");
                    assert_eq!(x, ai, "keeps/deletes must consume a in order");
                    rebuilt.push(b[y].clone());
                    ai += 1;
                }
                Edit::Delete(x) => {
                    assert_eq!(x, ai);
                    ai += 1;
                }
                Edit::Insert(y) => rebuilt.push(b[y].clone()),
            }
        }
        assert_eq!(ai, a.len(), "script must consume all of a");
        assert_eq!(&rebuilt, b, "script must rebuild b");
        // Minimality.
        let keeps = script.iter().filter(|e| matches!(e, Edit::Keep(..))).count();
        assert_eq!(keeps, lcs_len(a, b), "keeps must form a longest common subsequence");
    }

    #[test]
    fn textbook_example() {
        // Myers' paper example: ABCABBA -> CBABAC, D = 5.
        let a: Vec<char> = "ABCABBA".chars().collect();
        let b: Vec<char> = "CBABAC".chars().collect();
        check(&a, &b);
        assert_eq!(edit_distance(&a, &b), 5);
    }

    #[test]
    fn identical_sequences() {
        let a = [1, 2, 3];
        check(&a, &a);
        assert_eq!(edit_distance(&a, &a), 0);
    }

    #[test]
    fn empty_cases() {
        let empty: [u8; 0] = [];
        check(&empty, &empty);
        check(&empty, &[1u8, 2]);
        check(&[1u8, 2], &empty);
        assert_eq!(edit_distance(&empty, &[1u8, 2, 3]), 3);
    }

    #[test]
    fn complete_replacement() {
        let a = [1, 2, 3];
        let b = [4, 5];
        check(&a, &b);
        assert_eq!(edit_distance(&a, &b), 5);
    }

    #[test]
    fn single_insertion_and_deletion() {
        check(&[1, 2, 4], &[1, 2, 3, 4]);
        check(&[1, 2, 3, 4], &[1, 2, 4]);
        assert_eq!(edit_distance(&[1, 2, 4], &[1, 2, 3, 4]), 1);
    }

    #[test]
    fn repeated_elements() {
        let a = [1, 1, 1, 2, 1, 1];
        let b = [1, 1, 2, 1, 1, 1];
        check(&a, &b);
    }

    #[test]
    fn randomized_against_dp_oracle() {
        // Deterministic LCG so failures reproduce.
        let mut state = 42u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..200 {
            let n = rand() % 24;
            let m = rand() % 24;
            let a: Vec<u8> = (0..n).map(|_| (rand() % 4) as u8).collect();
            let b: Vec<u8> = (0..m).map(|_| (rand() % 4) as u8).collect();
            check(&a, &b);
        }
    }

    #[test]
    fn large_sequences_stay_fast_and_correct() {
        // 20k lines with sparse edits: linear-space recursion must cope.
        let a: Vec<u32> = (0..20_000).collect();
        let mut b = a.clone();
        b[5_000] = 999_999;
        b.remove(10_000);
        b.insert(15_000, 888_888);
        let script = diff_slices(&a, &b);
        let non_keep = script.iter().filter(|e| !matches!(e, Edit::Keep(..))).count();
        assert_eq!(non_keep, 4); // 1 replace (=del+ins) + 1 del + 1 ins
    }
}
