//! Unix `diff` normal-format output over the Myers edit script.
//!
//! Figure 6 measures "the size ratio of the delta compared to the Unix
//! diff"; to reproduce it we need byte-comparable output, i.e. the classic
//! normal format:
//!
//! ```text
//! 3c3
//! < old line
//! ---
//! > new line
//! 7a8,9
//! > added one
//! > added two
//! ```
//!
//! The paper also notes the pathology we must preserve: "a drawback of the
//! Unix Diff is that it uses newline as separator, and some XML documents
//! may contain very long lines. The worst case size for the Unix Diff output
//! is twice the size of the document."

use crate::myers::{diff_slices, Edit};

/// A contiguous change region: lines `old_range` replaced by `new_range`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Hunk {
    /// 0-based half-open range of deleted old lines.
    old_start: usize,
    old_end: usize,
    /// 0-based half-open range of inserted new lines.
    new_start: usize,
    new_end: usize,
}

/// Produce Unix-diff normal-format output for two texts.
pub fn unix_diff(old: &str, new: &str) -> String {
    let old_lines: Vec<&str> = split_lines(old);
    let new_lines: Vec<&str> = split_lines(new);
    let script = diff_slices(&old_lines, &new_lines);

    let mut out = String::new();
    for h in hunks(&script) {
        let del = h.old_end - h.old_start;
        let ins = h.new_end - h.new_start;
        let kind = match (del > 0, ins > 0) {
            (true, true) => 'c',
            (true, false) => 'd',
            (false, true) => 'a',
            (false, false) => continue,
        };
        out.push_str(&range_str(h.old_start, h.old_end, kind == 'a'));
        out.push(kind);
        out.push_str(&range_str(h.new_start, h.new_end, kind == 'd'));
        out.push('\n');
        for &l in &old_lines[h.old_start..h.old_end] {
            out.push_str("< ");
            out.push_str(l);
            out.push('\n');
        }
        if kind == 'c' {
            out.push_str("---\n");
        }
        for &l in &new_lines[h.new_start..h.new_end] {
            out.push_str("> ");
            out.push_str(l);
            out.push('\n');
        }
    }
    out
}

/// Byte size of the Unix-diff output (the Figure 6 denominator).
pub fn unix_diff_size(old: &str, new: &str) -> usize {
    unix_diff(old, new).len()
}

fn split_lines(s: &str) -> Vec<&str> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split('\n').collect()
    }
}

/// Render a line range in diff's 1-based convention. For `a` hunks the old
/// side (and for `d` hunks the new side) names the line *before* the change.
fn range_str(start: usize, end: usize, before: bool) -> String {
    if before {
        // `end == start` here; the position printed is the preceding line.
        return start.to_string();
    }
    let lo = start + 1;
    let hi = end;
    if hi <= lo {
        lo.to_string()
    } else {
        format!("{lo},{hi}")
    }
}

/// Group an edit script into change hunks.
fn hunks(script: &[Edit]) -> Vec<Hunk> {
    let mut out: Vec<Hunk> = Vec::new();
    let mut cur: Option<Hunk> = None;
    let mut old_pos = 0usize;
    let mut new_pos = 0usize;
    for e in script {
        match *e {
            Edit::Keep(..) => {
                if let Some(h) = cur.take() {
                    out.push(h);
                }
                old_pos += 1;
                new_pos += 1;
            }
            Edit::Delete(_) => {
                let h = cur.get_or_insert(Hunk {
                    old_start: old_pos,
                    old_end: old_pos,
                    new_start: new_pos,
                    new_end: new_pos,
                });
                h.old_end += 1;
                old_pos += 1;
            }
            Edit::Insert(_) => {
                let h = cur.get_or_insert(Hunk {
                    old_start: old_pos,
                    old_end: old_pos,
                    new_start: new_pos,
                    new_end: new_pos,
                });
                h.new_end += 1;
                new_pos += 1;
            }
        }
    }
    if let Some(h) = cur.take() {
        out.push(h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_hunk_format() {
        let old = "one\ntwo\nthree";
        let new = "one\nTWO\nthree";
        assert_eq!(unix_diff(old, new), "2c2\n< two\n---\n> TWO\n");
    }

    #[test]
    fn append_hunk_format() {
        let old = "one\ntwo";
        let new = "one\ntwo\nthree\nfour";
        assert_eq!(unix_diff(old, new), "2a3,4\n> three\n> four\n");
    }

    #[test]
    fn delete_hunk_format() {
        let old = "one\ntwo\nthree";
        let new = "one\nthree";
        assert_eq!(unix_diff(old, new), "2d1\n< two\n");
    }

    #[test]
    fn multiple_hunks() {
        let old = "a\nb\nc\nd\ne";
        let new = "a\nB\nc\nd\nE";
        let out = unix_diff(old, new);
        assert!(out.contains("2c2"));
        assert!(out.contains("5c5"));
        assert_eq!(out.matches("---").count(), 2);
    }

    #[test]
    fn identical_texts_empty_output() {
        assert_eq!(unix_diff("same\ntext", "same\ntext"), "");
        assert_eq!(unix_diff_size("x", "x"), 0);
    }

    #[test]
    fn empty_to_content() {
        let out = unix_diff("", "hello\nworld");
        assert_eq!(out, "0a1,2\n> hello\n> world\n");
    }

    #[test]
    fn long_single_line_worst_case() {
        // "Some XML documents may contain very long lines. The worst case
        // size for the Unix Diff output is twice the size of the document."
        let old = format!("<doc>{}</doc>", "x".repeat(10_000));
        let new = old.replacen('x', "y", 1);
        let size = unix_diff_size(&old, &new);
        assert!(
            size >= old.len() + new.len(),
            "single-line change must cost ~both documents: {size}"
        );
    }

    #[test]
    fn multi_line_xml_change_is_local() {
        let old = "<doc>\n<a>1</a>\n<b>2</b>\n</doc>";
        let new = "<doc>\n<a>1</a>\n<b>3</b>\n</doc>";
        let size = unix_diff_size(old, new);
        // "3c3\n< <b>2</b>\n---\n> <b>3</b>\n" = 30 bytes, far below the
        // 60-byte document pair.
        assert_eq!(size, 30, "line-based change must stay local");
    }
}
