//! Quadratic tree edit distance: Selkow's variant via Lu's algorithm (§3).
//!
//! "Lu's algorithm uses another edit based distance. The idea is, when a
//! node in subtree D1 matches with a node in subtree D2, to use the string
//! edit algorithm to match their respective children. In Selkow's variant,
//! insertion and deletion are restricted to the leaves of the tree. Thus,
//! applying Lu's algorithm in the case of Selkow's variant results in a time
//! complexity of O(|D1|·|D2|)."
//!
//! This is the scaling comparator of experiment E4 (DESIGN.md): it computes
//! a minimum edit script under subtree-granularity insert/delete + text
//! update, with the classic `O(|D1|·|D2|)` dynamic program over every pair
//! of same-path children sequences — no signatures, no weights, no moves.
//!
//! Costs (in nodes, so they are comparable to XyDiff op accounting):
//! deleting or inserting a subtree costs its node count; updating a text
//! node costs 1; matching identical content costs 0.

use xytree::{Document, NodeId, NodeKind, Tree};

/// Result of the quadratic tree diff.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SelkowResult {
    /// Total edit cost (node-count units).
    pub cost: u64,
    /// Number of `(old node, new node)` pairs the DP examined — the measured
    /// work, used by the scaling benchmark to show the quadratic growth.
    pub pairs_examined: u64,
}

/// Compute the Selkow-variant edit distance between two documents.
pub fn selkow_distance(old: &Document, new: &Document) -> SelkowResult {
    let mut ctx = Ctx {
        old: &old.tree,
        new: &new.tree,
        old_sizes: subtree_sizes(&old.tree),
        new_sizes: subtree_sizes(&new.tree),
        pairs: 0,
    };
    let cost = ctx.dist(old.tree.root(), new.tree.root());
    SelkowResult { cost, pairs_examined: ctx.pairs }
}

struct Ctx<'a> {
    old: &'a Tree,
    new: &'a Tree,
    old_sizes: Vec<u64>,
    new_sizes: Vec<u64>,
    pairs: u64,
}

impl Ctx<'_> {
    /// Edit distance between the subtrees rooted at `o` and `n`.
    fn dist(&mut self, o: NodeId, n: NodeId) -> u64 {
        self.pairs += 1;
        match (self.old.kind(o), self.new.kind(n)) {
            (NodeKind::Document, NodeKind::Document) => self.children_dist(o, n),
            (NodeKind::Element(a), NodeKind::Element(b)) => {
                if a.name != b.name {
                    // Roots cannot be substituted: replace whole subtrees.
                    return self.old_sizes[o.index()] + self.new_sizes[n.index()];
                }
                // Attribute differences cost 1 each (set comparison).
                let mut cost = 0;
                for at in &a.attrs {
                    match b.attr(&at.name) {
                        Some(v) if v == at.value => {}
                        _ => cost += 1,
                    }
                }
                for bt in &b.attrs {
                    if a.attr(&bt.name).is_none() {
                        cost += 1;
                    }
                }
                cost + self.children_dist(o, n)
            }
            (NodeKind::Text(a), NodeKind::Text(b)) => u64::from(a != b),
            (NodeKind::Comment(a), NodeKind::Comment(b)) => u64::from(a != b),
            (
                NodeKind::Pi { target: t1, data: d1 },
                NodeKind::Pi { target: t2, data: d2 },
            ) => u64::from(t1 != t2 || d1 != d2),
            // Kind mismatch: replace whole subtrees.
            _ => self.old_sizes[o.index()] + self.new_sizes[n.index()],
        }
    }

    /// String-edit DP over the two children sequences (Lu's algorithm), with
    /// subtree-sized insert/delete costs and recursive substitution cost.
    fn children_dist(&mut self, o: NodeId, n: NodeId) -> u64 {
        let oc: Vec<NodeId> = self.old.children(o).collect();
        let nc: Vec<NodeId> = self.new.children(n).collect();
        if oc.is_empty() {
            return nc.iter().map(|&c| self.new_sizes[c.index()]).sum();
        }
        if nc.is_empty() {
            return oc.iter().map(|&c| self.old_sizes[c.index()]).sum();
        }
        // dp[j] = cost of transforming oc[..i] into nc[..j].
        let mut dp: Vec<u64> = Vec::with_capacity(nc.len() + 1);
        dp.push(0);
        for &c in &nc {
            dp.push(dp.last().unwrap() + self.new_sizes[c.index()]);
        }
        for &ocur in &oc {
            let del = self.old_sizes[ocur.index()];
            let mut prev_diag = dp[0];
            dp[0] += del;
            for (j, &ncur) in nc.iter().enumerate() {
                let ins = self.new_sizes[ncur.index()];
                let subst = prev_diag + self.dist(ocur, ncur);
                let delete = dp[j + 1] + del;
                let insert = dp[j] + ins;
                prev_diag = dp[j + 1];
                dp[j + 1] = subst.min(delete).min(insert);
            }
        }
        dp[nc.len()]
    }
}

fn subtree_sizes(tree: &Tree) -> Vec<u64> {
    let mut sizes = vec![0u64; tree.arena_len()];
    for n in tree.post_order(tree.root()) {
        let children_sum: u64 = tree.children(n).map(|c| sizes[c.index()]).sum();
        sizes[n.index()] = 1 + children_sum;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(xml: &str) -> Document {
        Document::parse(xml).unwrap()
    }

    #[test]
    fn identical_documents_cost_zero() {
        let a = d("<a><b>t</b><c x=\"1\"/></a>");
        let r = selkow_distance(&a, &a);
        assert_eq!(r.cost, 0);
        assert!(r.pairs_examined > 0);
    }

    #[test]
    fn text_update_costs_one() {
        let r = selkow_distance(&d("<a><b>old</b></a>"), &d("<a><b>new</b></a>"));
        assert_eq!(r.cost, 1);
    }

    #[test]
    fn leaf_insertion_costs_its_size() {
        let r = selkow_distance(&d("<a><b/></a>"), &d("<a><b/><c>t</c></a>"));
        assert_eq!(r.cost, 2); // <c> + its text
    }

    #[test]
    fn subtree_deletion_costs_node_count() {
        let r = selkow_distance(&d("<a><big><x/><y/><z/></big><k/></a>"), &d("<a><k/></a>"));
        assert_eq!(r.cost, 4); // big + x + y + z
    }

    #[test]
    fn label_mismatch_replaces_subtrees() {
        let r = selkow_distance(&d("<a><old><x/></old></a>"), &d("<a><new><x/></new></a>"));
        assert_eq!(r.cost, 4); // delete <old><x/> (2) + insert <new><x/> (2)
    }

    #[test]
    fn attribute_changes_cost_one_each() {
        // Children make whole-subtree replacement (cost 6) more expensive
        // than the three attribute edits.
        let r = selkow_distance(
            &d("<a x=\"1\" y=\"2\"><k/><l/></a>"),
            &d("<a x=\"9\" z=\"3\"><k/><l/></a>"),
        );
        // x updated (1), y deleted (1), z inserted (1).
        assert_eq!(r.cost, 3);
    }

    #[test]
    fn replacing_a_leaf_element_beats_attribute_edits() {
        // On childless elements the children-DP may prefer delete+insert
        // (cost 2) over three attribute operations.
        let r = selkow_distance(&d("<a x=\"1\" y=\"2\"/>"), &d("<a x=\"9\" z=\"3\"/>"));
        assert_eq!(r.cost, 2);
    }

    #[test]
    fn move_costs_delete_plus_insert() {
        // No move op in this model: relocation is paid twice. XyDiff's delta
        // for the same change is a single move op.
        let old = d("<a><p><m>text</m></p><q/></a>");
        let new = d("<a><p/><q><m>text</m></q></a>");
        let r = selkow_distance(&old, &new);
        assert_eq!(r.cost, 4); // <m>+text deleted (2) and inserted (2)
    }

    #[test]
    fn permuted_children_cost_more_than_xydiff_moves() {
        let old = d("<a><c1>x</c1><c2>y</c2><c3>z</c3></a>");
        let new = d("<a><c3>z</c3><c1>x</c1><c2>y</c2></a>");
        let r = selkow_distance(&old, &new);
        assert_eq!(r.cost, 4, "one rotation = delete c3 + insert c3 (2 nodes each)");
    }

    #[test]
    fn work_grows_quadratically() {
        // Same-label children forests make the DP examine ~|D1|·|D2| pairs.
        let make = |k: usize| {
            let body: String = (0..k).map(|i| format!("<item><v>{i}</v></item>")).collect();
            d(&format!("<list>{body}</list>"))
        };
        let small = selkow_distance(&make(10), &make(10)).pairs_examined;
        let large = selkow_distance(&make(40), &make(40)).pairs_examined;
        // 4x nodes should be ~16x pairs; allow slack but require >8x.
        assert!(
            large > small * 8,
            "expected quadratic growth: {small} -> {large}"
        );
    }

    #[test]
    fn distance_is_symmetric_for_these_costs() {
        let a = d("<a><b>t</b><c/></a>");
        let b = d("<a><c/><d>u</d></a>");
        let ab = selkow_distance(&a, &b).cost;
        let ba = selkow_distance(&b, &a).cost;
        assert_eq!(ab, ba);
    }
}
