//! A DiffMK-style XML diff: flatten the tree to a list, then line-diff it.
//!
//! "Sun released an XML specific tool named DiffMK that computes the
//! difference between two XML documents. This tool is based on the unix
//! standard diff algorithm, and uses a list description of the XML document,
//! thus losing the benefit of tree structure of XML." (§3)
//!
//! We reproduce that design: the document is serialized to a token list
//! (open tags with their attributes, text nodes, close tags, comments, PIs),
//! Myers runs over the token hashes, and the "patch" size is the byte size
//! of the inserted/deleted tokens plus hunk overhead. No moves, no
//! structure: a subtree that moved shows up as a full delete + insert.

use crate::myers::{diff_slices, Edit};
use xytree::hash::Fnv64;
use xytree::{Document, NodeKind, Tree};

/// Outcome of a DiffMK-style diff.
#[derive(Debug, Clone, Default)]
pub struct DiffMkResult {
    /// Tokens in the old flattening.
    pub old_tokens: usize,
    /// Tokens in the new flattening.
    pub new_tokens: usize,
    /// Tokens deleted by the shortest edit script.
    pub deleted: usize,
    /// Tokens inserted by the shortest edit script.
    pub inserted: usize,
    /// Byte size of a patch carrying the deleted+inserted token texts (the
    /// delta-size analogue used in comparisons).
    pub patch_bytes: usize,
}

impl DiffMkResult {
    /// Total edit-script length (D of the token-level Myers run).
    pub fn edit_ops(&self) -> usize {
        self.deleted + self.inserted
    }
}

/// Flatten + diff two documents.
pub fn diffmk_diff(old: &Document, new: &Document) -> DiffMkResult {
    let old_toks = flatten(&old.tree);
    let new_toks = flatten(&new.tree);
    let old_hashes: Vec<u64> = old_toks.iter().map(|t| t.hash).collect();
    let new_hashes: Vec<u64> = new_toks.iter().map(|t| t.hash).collect();
    let script = diff_slices(&old_hashes, &new_hashes);

    let mut r = DiffMkResult {
        old_tokens: old_toks.len(),
        new_tokens: new_toks.len(),
        ..Default::default()
    };
    const HUNK_OVERHEAD: usize = 8; // "NcM\n" header + separators, amortized
    let mut in_hunk = false;
    for e in &script {
        match *e {
            Edit::Keep(..) => in_hunk = false,
            Edit::Delete(i) => {
                if !in_hunk {
                    r.patch_bytes += HUNK_OVERHEAD;
                    in_hunk = true;
                }
                r.deleted += 1;
                r.patch_bytes += old_toks[i].bytes + 3; // "< " + newline
            }
            Edit::Insert(j) => {
                if !in_hunk {
                    r.patch_bytes += HUNK_OVERHEAD;
                    in_hunk = true;
                }
                r.inserted += 1;
                r.patch_bytes += new_toks[j].bytes + 3; // "> " + newline
            }
        }
    }
    r
}

struct Token {
    hash: u64,
    bytes: usize,
}

/// Serialize the tree to the DiffMK token list.
fn flatten(tree: &Tree) -> Vec<Token> {
    let mut out = Vec::new();
    flatten_rec(tree, tree.root(), &mut out);
    out
}

fn flatten_rec(tree: &Tree, node: xytree::NodeId, out: &mut Vec<Token>) {
    match tree.kind(node) {
        NodeKind::Document => {
            for c in tree.children(node) {
                flatten_rec(tree, c, out);
            }
        }
        NodeKind::Element(e) => {
            // Open-tag token: label + attributes (sorted, set semantics).
            let mut h = Fnv64::with_seed(1);
            h.update(e.name.as_bytes());
            let mut bytes = e.name.len() + 2;
            let mut idx: Vec<usize> = (0..e.attrs.len()).collect();
            idx.sort_by(|&a, &b| e.attrs[a].name.cmp(&e.attrs[b].name));
            for i in idx {
                let a = &e.attrs[i];
                h.update(&[0]);
                h.update(a.name.as_bytes());
                h.update(&[1]);
                h.update(a.value.as_bytes());
                bytes += a.name.len() + a.value.len() + 4;
            }
            out.push(Token { hash: h.value(), bytes });
            for c in tree.children(node) {
                flatten_rec(tree, c, out);
            }
            // Close-tag token.
            let mut h = Fnv64::with_seed(2);
            h.update(e.name.as_bytes());
            out.push(Token { hash: h.value(), bytes: e.name.len() + 3 });
        }
        NodeKind::Text(t) => {
            let mut h = Fnv64::with_seed(3);
            h.update(t.as_bytes());
            out.push(Token { hash: h.value(), bytes: t.len() });
        }
        NodeKind::Comment(c) => {
            let mut h = Fnv64::with_seed(4);
            h.update(c.as_bytes());
            out.push(Token { hash: h.value(), bytes: c.len() + 7 });
        }
        NodeKind::Pi { target, data } => {
            let mut h = Fnv64::with_seed(5);
            h.update(target.as_bytes());
            h.update(&[0]);
            h.update(data.as_bytes());
            out.push(Token { hash: h.value(), bytes: target.len() + data.len() + 5 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(xml: &str) -> Document {
        Document::parse(xml).unwrap()
    }

    #[test]
    fn identical_documents_produce_empty_patch() {
        let d = doc("<a><b>t</b><c/></a>");
        let r = diffmk_diff(&d, &d);
        assert_eq!(r.edit_ops(), 0);
        assert_eq!(r.patch_bytes, 0);
        assert_eq!(r.old_tokens, r.new_tokens);
    }

    #[test]
    fn token_count_is_open_close_text() {
        let d = doc("<a><b>t</b></a>");
        let r = diffmk_diff(&d, &d);
        // <a> <b> t </b> </a> = 5 tokens
        assert_eq!(r.old_tokens, 5);
    }

    #[test]
    fn text_change_is_one_replace() {
        let r = diffmk_diff(&doc("<a><b>old</b></a>"), &doc("<a><b>new</b></a>"));
        assert_eq!((r.deleted, r.inserted), (1, 1));
    }

    #[test]
    fn attribute_change_replaces_open_tag_token() {
        let r = diffmk_diff(&doc("<a x=\"1\"><b/></a>"), &doc("<a x=\"2\"><b/></a>"));
        assert_eq!((r.deleted, r.inserted), (1, 1));
    }

    #[test]
    fn attribute_order_is_canonicalized() {
        let r = diffmk_diff(&doc("<a x=\"1\" y=\"2\"/>"), &doc("<a y=\"2\" x=\"1\"/>"));
        assert_eq!(r.edit_ops(), 0);
    }

    #[test]
    fn move_costs_delete_plus_insert() {
        // The defining weakness vs XyDiff: a moved subtree is fully deleted
        // and reinserted in the token list.
        let old = doc("<a><big><x>1</x><y>2</y><z>3</z></big><tail/></a>");
        let new = doc("<a><tail/><big><x>1</x><y>2</y><z>3</z></big></a>");
        let r = diffmk_diff(&old, &new);
        // <big>…</big> is 11 tokens; either it or <tail/> gets del+ins.
        assert!(r.edit_ops() >= 4, "move must cost real edits, got {}", r.edit_ops());
        assert!(r.patch_bytes > 0);
    }

    #[test]
    fn subtree_insertion_counts_its_tokens() {
        // old tokens: <a> </a>; new: <a> <n> <m> t </m> </n> </a>.
        // LCS keeps <a> and </a>; 5 insertions, 0 deletions.
        let r = diffmk_diff(&doc("<a/>"), &doc("<a><n><m>t</m></n></a>"));
        assert_eq!((r.deleted, r.inserted), (0, 5));
    }
}
