//! Baseline diff algorithms the XyDiff paper compares against or builds on.
//!
//! Three comparators, all implemented from scratch:
//!
//! - [`myers`] — the shortest-edit-script algorithm behind Unix `diff`
//!   (Myers 1986, linear-space refinement). Figure 6 of the paper reports
//!   the ratio of XyDiff delta sizes over Unix diff output sizes;
//!   [`unixdiff`] renders the classic "normal format" output so the sizes
//!   are comparable.
//! - [`diffmk`] — a DiffMK-style diff: "this tool is based on the unix
//!   standard diff algorithm, and uses a list description of the XML
//!   document, thus losing the benefit of tree structure" (§3). The tree is
//!   flattened to a token list and line-diffed.
//! - [`selkow`] — the quadratic dynamic-programming tree edit distance in
//!   Selkow's variant (insertions/deletions at subtree granularity), i.e.
//!   Lu's algorithm adapted to trees-with-labels, `O(|D1|·|D2|)` — the
//!   "previous algorithms run in quadratic time" comparator of the scaling
//!   experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diffmk;
pub mod myers;
pub mod selkow;
pub mod unixdiff;

pub use diffmk::{diffmk_diff, DiffMkResult};
pub use myers::{diff_slices, Edit};
pub use selkow::{selkow_distance, SelkowResult};
pub use unixdiff::{unix_diff, unix_diff_size};
