//! Kill-9 crash-recovery harness: the durability contract, end to end.
//!
//! Spawns the real `xydiff serve` binary with a WAL, hammers it with
//! `POST /ingest/{key}` from a client thread, and SIGKILLs the process
//! mid-stream — no drain, no warning. Every ingest the server *acked as
//! durable* before the kill must survive: a restarted server on the same
//! WAL directory serves every acked `(key, version)` byte-identically.
//! Un-acked in-flight requests may be lost (that is the contract), and a
//! torn tail from the kill must be repaired so the log stays healthy.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xytree::Document;

/// A spawned `xydiff serve` child. Holding `stdin` open matters: the
/// server treats stdin EOF as a drain request, and this harness wants the
/// only shutdown paths to be SIGKILL or an explicit `/admin/shutdown`.
struct Server {
    child: Child,
    addr: SocketAddr,
    _stdin: ChildStdin,
}

fn xydiff() -> &'static str {
    env!("CARGO_BIN_EXE_xydiff")
}

fn spawn_server(wal_dir: &Path) -> Server {
    let mut child = Command::new(xydiff())
        .args(["serve", "--addr", "127.0.0.1:0", "--quiet", "--wal-dir"])
        .arg(wal_dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn xydiff serve");
    let stdin = child.stdin.take().expect("child stdin");
    let stderr = child.stderr.take().expect("child stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stderr");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest.trim().parse().expect("parse announced address");
        }
    };
    // Keep draining stderr so the child can never block on a full pipe.
    std::thread::spawn(move || for _ in lines.by_ref() {});
    Server { child, addr, _stdin: stdin }
}

/// One `Connection: close` HTTP exchange. Returns `None` on any socket
/// error — which the crash test treats as "not acked".
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    stream.set_write_timeout(Some(Duration::from_secs(10))).ok()?;
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes()).ok()?;
    stream.shutdown(std::net::Shutdown::Write).ok()?;
    let mut text = String::new();
    stream.read_to_string(&mut text).ok()?;
    let code: u16 = text.split(' ').nth(1)?.parse().ok()?;
    Some((code, text))
}

fn response_body(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

/// Pull `"field":N` out of the ack JSON without a JSON parser.
fn json_u64(body: &str, field: &str) -> Option<u64> {
    let rest = body.split(&format!("\"{field}\":")).nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn tmp_wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("xydiff-wal-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The payload for `key` at logical sequence `n` — distinct text every
/// version so each ingest produces a real delta.
fn payload(key: &str, n: usize) -> String {
    format!(
        "<doc><key>{key}</key><n>{n}</n><body>{}</body></doc>",
        format!("{n:04}-").repeat(24),
    )
}

#[test]
fn kill_nine_loses_no_acked_ingests() {
    let wal_dir = tmp_wal_dir("kill9");
    let mut server = spawn_server(&wal_dir);
    let addr = server.addr;

    // Hammer the server from a client thread, recording every ingest the
    // server acked as durable: (key, assigned version, submitted xml).
    let acked: Arc<Mutex<Vec<(String, u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = {
        let acked = Arc::clone(&acked);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let keys = ["alpha", "beta", "gamma"];
            for n in 0.. {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let key = keys[n % keys.len()];
                let xml = payload(key, n);
                let Some((code, text)) = http(addr, "POST", &format!("/ingest/{key}"), &xml)
                else {
                    break; // the server was killed mid-request
                };
                let body = response_body(&text);
                if code == 200 && body.contains("\"durable\":true") {
                    let version = json_u64(body, "version").expect("ack carries a version");
                    acked.lock().unwrap().push((key.to_string(), version, xml));
                }
            }
        })
    };

    // Wait for a healthy pile of durable acks, then SIGKILL the server
    // while the hammer thread is still mid-stream.
    let deadline = Instant::now() + Duration::from_secs(60);
    while acked.lock().unwrap().len() < 25 {
        assert!(Instant::now() < deadline, "server never acked 25 ingests");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.child.kill().expect("SIGKILL the server");
    server.child.wait().expect("reap the killed server");
    stop.store(true, Ordering::Relaxed);
    hammer.join().expect("join hammer thread");

    let acked = Arc::try_unwrap(acked).expect("hammer thread is done").into_inner().unwrap();
    assert!(acked.len() >= 25, "expected at least 25 durable acks, got {}", acked.len());

    // Restart on the same WAL directory: replay must resurrect every
    // acked version, byte-identical to the canonical form of what the
    // client submitted.
    let mut server = spawn_server(&wal_dir);
    for (key, version, xml) in &acked {
        let (code, text) = http(server.addr, "GET", &format!("/doc/{key}/{version}"), "")
            .expect("readback request");
        assert_eq!(code, 200, "acked {key} v{version} lost after crash: {text}");
        let expected = Document::parse(xml).expect("payload parses").to_xml();
        assert_eq!(
            response_body(&text),
            expected,
            "acked {key} v{version} not byte-identical after replay",
        );
    }

    // The recovered server keeps ingesting on the same chains.
    let (key0, last_version, _) = acked.iter().rfind(|(k, ..)| k == "alpha").expect("alpha acked");
    let xml = payload(key0, 999_999);
    let (code, text) =
        http(server.addr, "POST", &format!("/ingest/{key0}"), &xml).expect("post-crash ingest");
    assert_eq!(code, 200, "post-crash ingest failed: {text}");
    let version = json_u64(response_body(&text), "version").expect("ack carries a version");
    assert!(version > *last_version, "post-crash ingest must extend the chain");

    // Clean drain, then the log must be healthy: `Wal::open` repaired any
    // tail the kill tore.
    let (code, _) = http(server.addr, "POST", "/admin/shutdown", "").expect("request drain");
    assert_eq!(code, 202, "drain must be accepted");
    let status = server.child.wait().expect("wait for drained server");
    assert!(status.success(), "drained server must exit cleanly: {status:?}");

    let inspect = Command::new(xydiff())
        .arg("wal")
        .arg("inspect")
        .arg(&wal_dir)
        .output()
        .expect("run wal inspect");
    let stdout = String::from_utf8_lossy(&inspect.stdout);
    assert!(
        inspect.status.success(),
        "wal inspect found an unhealthy log after recovery:\n{stdout}",
    );
    assert!(stdout.contains("status    ok"), "unexpected inspect report:\n{stdout}");

    let _ = std::fs::remove_dir_all(&wal_dir);
}
