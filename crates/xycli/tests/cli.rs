//! End-to-end tests of the `xydiff` binary: real process, real files, real
//! exit codes.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_xydiff")
}

fn tmp(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xycli-test-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    fs::write(&p, content).unwrap();
    p
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).to_string()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).to_string()
}

#[test]
fn diff_patch_revert_roundtrip_via_files() {
    let old = tmp("rt-old.xml", "<a><p>one</p><q/></a>");
    let new = tmp("rt-new.xml", "<a><q/><p>two</p></a>");
    let d = run(&["diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(d.status.code(), Some(1), "differing docs exit 1");
    let delta_path = tmp("rt-delta.xml", &stdout(&d));

    // `patch` emits the new version annotated with its persistent ids.
    let patched = run(&["patch", old.to_str().unwrap(), delta_path.to_str().unwrap()]);
    assert_eq!(patched.status.code(), Some(0), "{}", stderr(&patched));
    let annotated = stdout(&patched);
    assert!(annotated.starts_with("<?xydiff-xidmap ("), "{annotated}");
    assert!(annotated.contains("<a><q/><p>two</p></a>"));

    // `--plain` strips the annotation.
    let plain = run(&["patch", "--plain", old.to_str().unwrap(), delta_path.to_str().unwrap()]);
    assert_eq!(stdout(&plain).trim(), "<a><q/><p>two</p></a>");

    // `revert` on the annotated output restores the old version.
    let new_annotated = tmp("rt-new-annotated.xml", &annotated);
    let reverted = run(&["revert", "--plain", new_annotated.to_str().unwrap(), delta_path.to_str().unwrap()]);
    assert_eq!(reverted.status.code(), Some(0), "{}", stderr(&reverted));
    assert_eq!(stdout(&reverted).trim(), "<a><p>one</p><q/></a>");
}

#[test]
fn revert_without_annotation_gives_actionable_error() {
    let old = tmp("na-old.xml", "<a><p>one</p></a>");
    let new = tmp("na-new.xml", "<a><p>two</p><r/></a>");
    let d = run(&["diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    let delta_path = tmp("na-delta.xml", &stdout(&d));
    // Reverting against the *plain* new document: identifiers are lost, the
    // error must say so and point at the annotated workflow.
    let reverted = run(&["revert", new.to_str().unwrap(), delta_path.to_str().unwrap()]);
    assert_eq!(reverted.status.code(), Some(2));
    assert!(stderr(&reverted).contains("xidmap"), "{}", stderr(&reverted));
}

#[test]
fn annotated_chain_diffs_continue_across_processes() {
    // v0 --diff--> v1 --diff--> v2, where the v1 used for the second diff is
    // the *annotated* patch output: XIDs stay persistent across processes.
    let v0 = tmp("ch-v0.xml", "<log><e>a</e></log>");
    let v1 = tmp("ch-v1.xml", "<log><e>a</e><e>b</e></log>");
    let d01 = tmp("ch-d01.xml", &stdout(&run(&["diff", v0.to_str().unwrap(), v1.to_str().unwrap()])));
    let v1_annotated = tmp(
        "ch-v1-annotated.xml",
        &stdout(&run(&["patch", v0.to_str().unwrap(), d01.to_str().unwrap()])),
    );
    let v2 = tmp("ch-v2.xml", "<log><e>b</e></log>");
    let d12 = run(&["diff", "--stats", v1_annotated.to_str().unwrap(), v2.to_str().unwrap()]);
    assert_eq!(d12.status.code(), Some(1));
    assert!(stderr(&d12).contains("1 delete"), "{}", stderr(&d12));
}

#[test]
fn identical_documents_exit_zero_with_empty_delta() {
    let a = tmp("same-a.xml", "<x><y>1</y></x>");
    let b = tmp("same-b.xml", "<x><y>1</y></x>");
    let d = run(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(d.status.code(), Some(0));
    assert_eq!(stdout(&d).trim(), "<delta/>");
}

#[test]
fn quiet_and_stats_flags() {
    let a = tmp("qs-a.xml", "<x><y>1</y></x>");
    let b = tmp("qs-b.xml", "<x><y>2</y></x>");
    let d = run(&["diff", "--quiet", "--stats", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(d.status.code(), Some(1));
    assert_eq!(stdout(&d), "", "--quiet suppresses the delta");
    assert!(stderr(&d).contains("1 update"), "{}", stderr(&d));
}

#[test]
fn mode_flag_selects_the_matcher() {
    // A pure child permutation: the unordered matcher pairs the rows by
    // content and patches back to the new version, same as BULD.
    let a = tmp("mode-a.xml", "<t><r><c>one</c><k>1</k></r><r><c>two</c><k>2</k></r></t>");
    let b = tmp("mode-b.xml", "<t><r><c>two</c><k>2</k></r><r><c>one</c><k>1</k></r></t>");
    for mode in ["buld", "unordered", "similarity"] {
        let d = run(&["diff", "--mode", mode, a.to_str().unwrap(), b.to_str().unwrap()]);
        assert_eq!(d.status.code(), Some(1), "mode {mode}: {}", stderr(&d));
        let delta_path = tmp(&format!("mode-{mode}-delta.xml"), &stdout(&d));
        let patched =
            run(&["patch", "--plain", a.to_str().unwrap(), delta_path.to_str().unwrap()]);
        assert_eq!(
            stdout(&patched).trim(),
            "<t><r><c>two</c><k>2</k></r><r><c>one</c><k>1</k></r></t>",
            "mode {mode}: {}",
            stderr(&patched)
        );
    }
    let bad = run(&["diff", "--mode", "bogus", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(2));
    assert!(stderr(&bad).contains("unknown match mode"), "{}", stderr(&bad));
}

#[test]
fn pretty_output_reparses() {
    let a = tmp("pp-a.xml", "<x><gone><g/></gone></x>");
    let b = tmp("pp-b.xml", "<x/>");
    let d = run(&["diff", "--pretty", a.to_str().unwrap(), b.to_str().unwrap()]);
    let pretty = stdout(&d);
    assert!(pretty.contains("\n  <delete"), "{pretty}");
    let delta_path = tmp("pp-delta.xml", &pretty);
    let patched = run(&["patch", "--plain", a.to_str().unwrap(), delta_path.to_str().unwrap()]);
    assert_eq!(stdout(&patched).trim(), "<x/>", "{}", stderr(&patched));
}

#[test]
fn query_command() {
    let doc = tmp(
        "q.xml",
        "<cat><item id='a'><price>$5</price></item><item id='b'><price>$9</price></item></cat>",
    );
    let out = run(&["query", doc.to_str().unwrap(), "//item[@id='b']/price/text()"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stdout(&out).trim(), "$9");
    let none = run(&["query", doc.to_str().unwrap(), "//missing"]);
    assert_eq!(none.status.code(), Some(1), "no matches exit 1");
}

#[test]
fn htmlize_command() {
    let page = tmp("h.html", "<ul><li>a<li>b</ul>");
    let out = run(&["htmlize", page.to_str().unwrap()]);
    assert_eq!(stdout(&out).trim(), "<ul><li>a</li><li>b</li></ul>");
}

#[test]
fn html_pages_diff_through_the_cli() {
    // The §1 workflow end to end: htmlize both pages, then diff the XML.
    let p1 = tmp("page1.html", "<ul><li>camera<li>phone</ul>");
    let p2 = tmp("page2.html", "<ul><li>camera<li>tablet<li>phone</ul>");
    let x1 = tmp("page1.xml", &stdout(&run(&["htmlize", p1.to_str().unwrap()])));
    let x2 = tmp("page2.xml", &stdout(&run(&["htmlize", p2.to_str().unwrap()])));
    let d = run(&["diff", "--stats", x1.to_str().unwrap(), x2.to_str().unwrap()]);
    assert_eq!(d.status.code(), Some(1));
    assert!(stderr(&d).contains("1 insert"), "{}", stderr(&d));
}

#[test]
fn error_paths_exit_two() {
    let bad = run(&["diff", "/nonexistent-a.xml", "/nonexistent-b.xml"]);
    assert_eq!(bad.status.code(), Some(2));
    assert!(stderr(&bad).contains("reading"));

    let malformed = tmp("bad.xml", "<a><b></a>");
    let good = tmp("good.xml", "<a/>");
    let out = run(&["diff", malformed.to_str().unwrap(), good.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("mismatched close tag"), "{}", stderr(&out));

    let nocmd = run(&["frobnicate"]);
    assert_eq!(nocmd.status.code(), Some(2));
    assert!(stderr(&nocmd).contains("usage"));

    let noargs = run(&[]);
    assert_eq!(noargs.status.code(), Some(2));

    let badflag = run(&["diff", "--bogus", "a", "b"]);
    assert_eq!(badflag.status.code(), Some(2));
    assert!(stderr(&badflag).contains("--bogus"));
}

#[test]
fn help_exits_zero() {
    let h = run(&["--help"]);
    assert_eq!(h.status.code(), Some(0));
    assert!(stdout(&h).contains("usage"));
}

#[test]
fn stdin_input() {
    use std::io::Write;
    use std::process::Stdio;
    let doc = tmp("stdin-doc.xml", "<a><p>x</p></a>");
    let mut child = Command::new(bin())
        .args(["query", "-", "//p/text()"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(fs::read(&doc).unwrap().as_slice())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "x");
}

#[test]
fn store_workflow_end_to_end() {
    let dir = std::env::temp_dir().join(format!("xycli-store-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let store = dir.to_str().unwrap();
    let v0 = tmp("st-v0.xml", "<cat><p><price>$10</price></p></cat>");
    let v1 = tmp("st-v1.xml", "<cat><p><price>$12</price></p></cat>");
    let v2 = tmp("st-v2.xml", "<cat><p><price>$12</price></p><q/></cat>");

    for (i, f) in [&v0, &v1, &v2].iter().enumerate() {
        let out = run(&["store", store, "load", "cameras.xml", f.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(0), "load {i}: {}", stderr(&out));
        assert!(stderr(&out).contains(&format!("stored cameras.xml v{i}")), "{}", stderr(&out));
    }

    // Latest and past versions print exactly.
    let latest = run(&["store", store, "get", "cameras.xml"]);
    assert_eq!(stdout(&latest).trim(), "<cat><p><price>$12</price></p><q/></cat>");
    let past = run(&["store", store, "get", "cameras.xml", "0"]);
    assert_eq!(stdout(&past).trim(), "<cat><p><price>$10</price></p></cat>");

    // History summarizes the deltas.
    let hist = run(&["store", store, "history", "cameras.xml"]);
    let h = stdout(&hist);
    assert!(h.contains("v0: initial version"), "{h}");
    assert!(h.contains("v1: 1 ops"), "{h}");
    assert!(h.contains("v2: 1 ops"), "{h}");

    // Aggregated changes across the whole range.
    let ch = run(&["store", store, "changes", "cameras.xml", "0", "2"]);
    let c = stdout(&ch);
    assert!(c.contains("<update"), "{c}");
    assert!(c.contains("<insert"), "{c}");

    // Key listing.
    let keys = run(&["store", store, "keys"]);
    assert_eq!(stdout(&keys).trim(), "cameras.xml (3 versions)");

    // Error paths.
    let bad = run(&["store", store, "get", "nope.xml"]);
    assert_eq!(bad.status.code(), Some(2));
    let bad = run(&["store", store, "changes", "cameras.xml", "2", "9"]);
    assert_eq!(bad.status.code(), Some(2));
    assert!(stderr(&bad).contains("out of bounds"));
    let bad = run(&["store", store, "frob"]);
    assert_eq!(bad.status.code(), Some(2));
    let _ = fs::remove_dir_all(&dir);
}

/// `ingest --diff-threads --wal-dir` followed by `wal inspect`: the WAL
/// the parallel zero-copy ingest pipeline writes — every delta crossed
/// the `into_owned()` materialization boundary before logging — must
/// parse, pass the static validator, and report a healthy log.
#[test]
fn ingest_with_diff_threads_writes_inspectable_wal() {
    let dir = std::env::temp_dir().join(format!("xycli-ingest-wal-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let corpus = dir.join("corpus");
    let wal = dir.join("wal");
    for (key, versions) in [
        ("alpha", ["<d><a>1</a></d>", "<d><a>2</a><b>new</b></d>", "<d><b>new</b></d>"]),
        ("beta", ["<d><x/></d>", "<d><x/><y p=\"q\">t</y></d>", "<d><y p=\"q\">t</y><z/></d>"]),
    ] {
        let kd = corpus.join(key);
        fs::create_dir_all(&kd).unwrap();
        for (i, xml) in versions.into_iter().enumerate() {
            fs::write(kd.join(format!("v{i}.xml")), xml).unwrap();
        }
    }

    let wal_s = wal.to_str().unwrap();
    let ingest = run(&[
        "ingest",
        "--diff-threads",
        "4",
        "--wal-dir",
        wal_s,
        "--quiet",
        corpus.to_str().unwrap(),
    ]);
    assert!(
        ingest.status.success(),
        "ingest failed: {}{}",
        stdout(&ingest),
        stderr(&ingest)
    );
    assert!(stderr(&ingest).contains("6 stored"), "{}", stderr(&ingest));

    let inspect = run(&["wal", "inspect", wal_s]);
    let out = stdout(&inspect);
    assert!(inspect.status.success(), "wal inspect unhealthy:\n{out}{}", stderr(&inspect));
    assert!(out.contains("status    ok"), "{out}");
    // 2 Init records + 4 zero-copy deltas, all payload-verified.
    assert!(out.contains("watermark"), "{out}");
    for key in ["alpha", "beta"] {
        assert!(out.contains(key), "missing {key} chain in report:\n{out}");
    }
    let _ = fs::remove_dir_all(&dir);
}
