//! `xydiff analyze` — static DTD/query compatibility analysis (xyschema).
//!
//! Three modes, combinable:
//!
//! - `--schema S.dtd --queries Q`: satisfiability of each query under the
//!   schema (dead queries are findings);
//! - `--schema OLD.dtd --against NEW.dtd --queries Q`: schema-change impact
//!   per query (breaking classes are findings);
//! - `--schema S.dtd --delta D.xml`: typecheck a delta against the grammar
//!   without materializing the document (every finding counts).
//!
//! Exit codes: 0 clean, 1 findings under `--deny` (without `--deny`
//! findings are reported but the exit stays 0), 2 usage/input error.

use crate::{read_input, usage};
use std::process::ExitCode;
use xyschema::{analyze, impact, typecheck, Grammar, Verdict};
use xytree::{parse_dtd, Doctype};

pub(crate) fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    let mut schema: Option<String> = None;
    let mut against: Option<String> = None;
    let mut queries: Option<String> = None;
    let mut delta: Option<String> = None;
    let mut root: Option<String> = None;
    let mut deny = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match a.as_str() {
            "--schema" => schema = Some(value("--schema")?),
            "--against" => against = Some(value("--against")?),
            "--queries" => queries = Some(value("--queries")?),
            "--delta" => delta = Some(value("--delta")?),
            "--root" => root = Some(value("--root")?),
            "--deny" => deny = true,
            other => return Err(format!("unknown flag {other:?} for analyze\n{}", usage())),
        }
    }
    let Some(schema_path) = schema else {
        return Err(format!("analyze needs --schema FILE\n{}", usage()));
    };
    if queries.is_none() && delta.is_none() {
        return Err(format!("analyze needs --queries FILE and/or --delta FILE\n{}", usage()));
    }
    let dt = load_dtd(&schema_path, root.as_deref())?;
    let grammar = Grammar::from_doctype(&dt).map_err(|e| format!("{schema_path}: {e}"))?;
    let new = against
        .as_deref()
        .map(|p| {
            let dt = load_dtd(p, root.as_deref())?;
            Grammar::from_doctype(&dt).map_err(|e| format!("{p}: {e}"))
        })
        .transpose()?;

    let mut findings = 0usize;
    if let Some(qpath) = &queries {
        let text = read_input(qpath)?;
        for (lineno, line) in text.lines().enumerate() {
            let expr = line.trim();
            if expr.is_empty() || expr.starts_with('#') {
                continue;
            }
            let loc = format!("{qpath}:{}", lineno + 1);
            let path = match xyquery::Path::parse(expr) {
                Ok(p) => p,
                Err(e) => {
                    println!("{loc}: ERROR {expr}: {e}");
                    findings += 1;
                    continue;
                }
            };
            match &new {
                // Impact mode: classify old → new.
                Some(new) => match impact(&path, &grammar, new) {
                    Ok(r) => {
                        if r.class.is_breaking() {
                            findings += 1;
                        }
                        println!("{loc}: {} {expr}: {}", r.class, r.detail);
                        if let Some(lost) = &r.lost {
                            println!("{loc}:   lost: /{}", lost.join("/"));
                        }
                        if let Some(gained) = &r.gained {
                            println!("{loc}:   gained: /{}", gained.join("/"));
                        }
                    }
                    Err(e) => println!("{loc}: undecided {expr}: {e}"),
                },
                // Satisfiability mode.
                None => match analyze(&path, &grammar) {
                    Ok(Verdict::Satisfiable(w)) => {
                        println!("{loc}: ok {expr} (matches /{})", w.matched_path.join("/"));
                        if let Some(note) = &w.output_note {
                            println!("{loc}:   note: {note}");
                        }
                    }
                    Ok(Verdict::Unsatisfiable(u)) => {
                        findings += 1;
                        println!("{loc}: DEAD {expr}: {}", u.describe());
                    }
                    Err(e) => println!("{loc}: undecided {expr}: {e}"),
                },
            }
        }
    }
    if let Some(dpath) = &delta {
        // A delta typechecks against the schema it will be applied under:
        // the --against version when given, the base schema otherwise.
        let g = new.as_ref().unwrap_or(&grammar);
        let xml = read_input(dpath)?;
        let delta = xydelta::xml_io::parse_delta(&xml).map_err(|e| format!("{dpath}: {e}"))?;
        let issues = typecheck(&delta, g);
        for f in &issues {
            println!("{dpath}: {f}");
        }
        if issues.is_empty() {
            println!("{dpath}: delta typechecks ({} ops)", delta.ops.len());
        }
        findings += issues.len();
    }

    if findings > 0 {
        eprintln!("analyze: {findings} finding(s)");
        if deny {
            return Ok(ExitCode::from(1));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Load a DTD file: bare markup declarations or a full `<!DOCTYPE … [ … ]>`.
fn load_dtd(path: &str, root: Option<&str>) -> Result<Doctype, String> {
    let text = read_input(path)?;
    parse_dtd(&text, root).map_err(|e| format!("{path}: {e}"))
}
