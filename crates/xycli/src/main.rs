//! `xydiff` — the command-line front end of the reproduction.
//!
//! ```text
//! xydiff diff OLD.xml NEW.xml            compute a delta (XML on stdout)
//! xydiff diff --pretty OLD.xml NEW.xml   …pretty-printed
//! xydiff diff --stats OLD.xml NEW.xml    …plus op counts and timings on stderr
//! xydiff patch DOC.xml DELTA.xml         apply a delta (new version on stdout)
//! xydiff revert DOC.xml DELTA.xml        apply an inverted delta
//! xydiff verify DELTA.xml                statically validate a delta
//! xydiff query DOC.xml PATH              evaluate a path expression
//! xydiff htmlize PAGE.html               XMLize an HTML page
//! xydiff analyze --schema S.dtd …        static query/schema analysis
//! xydiff store DIR load KEY FILE.xml     ingest a version into a warehouse
//! xydiff store DIR get|history|changes…  query the stored history
//! xydiff ingest [--workers N] DIR        concurrent ingestion of a corpus
//! xydiff serve [--addr HOST:PORT] …      run the HTTP ingestion server
//! xydiff wal inspect DIR                 inspect a write-ahead delta log
//! ```
//!
//! Exit codes: 0 success, 1 documents differ (for `diff`) or no matches
//! (for `query`), 2 usage/input error.
//!
//! Persistent identifiers: `patch` output starts with an
//! `<?xydiff-xidmap (…)?>` processing instruction recording the document's
//! XID assignment; `diff`, `patch` and `revert` all accept annotated input,
//! which is what makes cross-process delta chains (and `revert`) possible.

mod analyze;
mod ingest;
mod serve;
mod store;
mod wal;

use std::io::Read;
use std::process::ExitCode;
use xydelta::{xml_io, XidDocument};
use xydiff::{diff, DiffOptions, MatchMode};
use xytree::Document;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("xydiff: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match command.as_str() {
        "diff" => cmd_diff(rest),
        "patch" => cmd_patch(rest, false),
        "revert" => cmd_patch(rest, true),
        "verify" => cmd_verify(rest),
        "query" => cmd_query(rest),
        "htmlize" => cmd_htmlize(rest),
        "analyze" => analyze::cmd_analyze(rest),
        "store" => store::cmd_store(rest),
        "ingest" => ingest::cmd_ingest(rest),
        "serve" => serve::cmd_serve(rest),
        "wal" => wal::cmd_wal(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

pub(crate) fn usage() -> String {
    "usage:\n  \
     xydiff diff [--pretty] [--stats] [--quiet] [--no-moves-window]\n  \
       \u{20}      [--mode buld|unordered|similarity] OLD.xml NEW.xml\n  \
     xydiff patch [--plain] DOC.xml DELTA.xml   (output carries an xidmap annotation)\n  \
     xydiff revert [--plain] DOC.xml DELTA.xml  (DOC must carry its xidmap)\n  \
     xydiff verify [--all] DELTA.xml      statically validate a completed delta\n  \
     xydiff query DOC.xml PATH\n  \
     xydiff htmlize PAGE.html\n  \
     xydiff analyze --schema S.dtd [--against NEW.dtd] [--root NAME] [--deny]\n  \
       \u{20}      [--queries FILE] [--delta DELTA.xml]\n  \
       \u{20}                              static satisfiability / schema-change\n  \
       \u{20}                              impact / delta typechecking (xyschema)\n  \
     xydiff store DIR load KEY FILE.xml   ingest a new version (runs the diff)\n  \
     xydiff store DIR get KEY [VERSION]   print a stored version\n  \
     xydiff store DIR history KEY         list versions with delta summaries\n  \
     xydiff store DIR changes KEY FROM TO print the aggregated delta\n  \
     xydiff store DIR keys                list stored documents\n  \
     xydiff ingest [--workers N] [--queue N] [--shards N] [--steal-batch N] [--quiet] DIR\n  \
       \u{20}      [--diff-threads N] [--mode buld|unordered|similarity]\n  \
       \u{20}      [--wal-dir DIR] [--wal-sync always|none] [--compact-chain-max N]\n  \
       \u{20}                              ingest a snapshot corpus concurrently\n  \
       \u{20}                              (DIR/key/*.xml sorted = versions; metrics on stdout)\n  \
     xydiff serve [--addr HOST:PORT] [--workers N] [--http-workers N] [--queue N]\n  \
       \u{20}      [--shards N] [--steal-batch N] [--diff-threads N] [--max-body BYTES]\n  \
       \u{20}      [--idle-timeout SECS] [--max-conns N] [--shed-conns N]\n  \
       \u{20}      [--read-budget BYTES] [--write-budget BYTES]\n  \
       \u{20}      [--mode buld|unordered|similarity]\n  \
       \u{20}      [--snapshot-dir DIR] [--snapshot-interval SECS] [--wal-dir DIR]\n  \
       \u{20}      [--wal-sync always|none] [--compact-chain-max N] [--quiet]\n  \
       \u{20}                              run the HTTP ingestion server\n  \
       \u{20}                              (POST /ingest/KEY, GET /metrics|/healthz|/doc/KEY;\n  \
       \u{20}                              drain via POST /admin/shutdown or stdin EOF)\n  \
     xydiff wal inspect DIR               print segments, chains and the watermark;\n  \
       \u{20}                              verify every logged record"
        .to_string()
}

/// Read a file, or stdin when the path is `-`.
pub(crate) fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn parse_doc(path: &str) -> Result<Document, String> {
    let content = read_input(path)?;
    Document::parse(&content).map_err(|e| format!("{path}: {e}"))
}

/// Load a document with its persistent identifiers: an `<?xydiff-xidmap?>`
/// annotation (written by `xydiff patch`) restores the exact assignment;
/// plain documents get the deterministic initial (postfix) numbering.
fn parse_xid_doc(path: &str) -> Result<XidDocument, String> {
    let content = read_input(path)?;
    match XidDocument::parse_annotated(&content).map_err(|e| format!("{path}: {e}"))? {
        Some(doc) => Ok(doc),
        None => Ok(XidDocument::assign_initial(
            Document::parse(&content).map_err(|e| format!("{path}: {e}"))?,
        )),
    }
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut pretty = false;
    let mut stats = false;
    let mut quiet = false;
    let mut exact_lis = false;
    let mut mode = MatchMode::default();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pretty" => pretty = true,
            "--stats" => stats = true,
            "--quiet" => quiet = true,
            "--no-moves-window" => exact_lis = true,
            "--mode" => {
                let v = it.next().ok_or("--mode needs a value (buld|unordered|similarity)")?;
                mode = v.parse::<MatchMode>().map_err(|e| format!("--mode: {e}"))?;
            }
            f if !f.starts_with("--") => files.push(f),
            other => return Err(format!("unknown flag {other:?} for diff")),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return Err(format!("diff needs exactly two files\n{}", usage()));
    };
    let old = parse_xid_doc(old_path)?;
    let new = parse_doc(new_path)?;
    let opts = DiffOptions { exact_lis, mode, ..Default::default() };
    let result = diff(&old, &new, &opts);
    if stats {
        let c = result.delta.counts();
        eprintln!(
            "nodes: {} -> {} ({} matched); ops: {} delete, {} insert, {} update, {} move, {} attr; {} bytes; {:?}",
            result.stats.old_nodes,
            result.stats.new_nodes,
            result.stats.matched_nodes,
            c.deletes,
            c.inserts,
            c.updates,
            c.moves,
            c.attr_ops,
            result.delta.size_bytes(),
            result.timings.total(),
        );
    }
    if !quiet {
        if pretty {
            print!("{}", xml_io::delta_to_xml_pretty(&result.delta));
        } else {
            println!("{}", xml_io::delta_to_xml(&result.delta));
        }
    }
    Ok(if result.delta.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_patch(args: &[String], invert: bool) -> Result<ExitCode, String> {
    let mut plain = false;
    let mut files = Vec::new();
    for a in args {
        match a.as_str() {
            "--plain" => plain = true,
            f if !f.starts_with("--") => files.push(f),
            other => return Err(format!("unknown flag {other:?} for patch/revert")),
        }
    }
    let [doc_path, delta_path] = files.as_slice() else {
        return Err(format!("patch/revert need DOC.xml DELTA.xml\n{}", usage()));
    };
    let doc = parse_xid_doc(doc_path)?;
    let delta_xml = read_input(delta_path)?;
    let delta = xml_io::parse_delta(&delta_xml).map_err(|e| format!("{delta_path}: {e}"))?;
    let delta = if invert { delta.inverted() } else { delta };
    let mut target = doc;
    delta.apply_to(&mut target).map_err(|e| {
        let hint = if invert {
            "\nhint: `revert` needs the document's persistent identifiers; \
             use the annotated output of `xydiff patch` (it embeds an \
             <?xydiff-xidmap?> annotation), or diff in the other direction"
        } else {
            ""
        };
        format!("delta does not apply to {doc_path}: {e}{hint}")
    })?;
    // Annotated by default so the output can be patched/reverted further;
    // --plain strips the identifiers.
    if plain {
        println!("{}", target.doc.to_xml());
    } else {
        println!("{}", target.to_annotated_xml());
    }
    Ok(ExitCode::SUCCESS)
}

/// `xydiff verify [--all] DELTA.xml` — run the static completed-delta
/// validator without applying the delta to anything. Exit 0 when every
/// invariant holds, 1 with diagnostics on stderr otherwise.
fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    let mut all = false;
    let mut files = Vec::new();
    for a in args {
        match a.as_str() {
            "--all" => all = true,
            f if !f.starts_with("--") => files.push(f),
            other => return Err(format!("unknown flag {other:?} for verify")),
        }
    }
    let [delta_path] = files.as_slice() else {
        return Err(format!("verify needs exactly one delta file\n{}", usage()));
    };
    let delta_xml = read_input(delta_path)?;
    let delta = xml_io::parse_delta(&delta_xml).map_err(|e| format!("{delta_path}: {e}"))?;
    if all {
        let errors = xydelta::verify_all(&delta);
        if errors.is_empty() {
            println!("{delta_path}: ok ({} ops)", delta.ops.len());
            return Ok(ExitCode::SUCCESS);
        }
        for e in &errors {
            eprintln!("{delta_path}: {e}");
        }
        eprintln!("{delta_path}: {} invariant violation(s)", errors.len());
        Ok(ExitCode::from(1))
    } else {
        match xydelta::verify(&delta) {
            Ok(()) => {
                println!("{delta_path}: ok ({} ops)", delta.ops.len());
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => {
                eprintln!("{delta_path}: {e}");
                Ok(ExitCode::from(1))
            }
        }
    }
}

fn cmd_query(args: &[String]) -> Result<ExitCode, String> {
    let [doc_path, path_expr] = args else {
        return Err(format!("query needs DOC.xml PATH\n{}", usage()));
    };
    let doc = parse_doc(doc_path)?;
    let results = xyquery::query(&doc, path_expr).map_err(|e| e.to_string())?;
    for r in &results {
        println!("{r}");
    }
    Ok(if results.is_empty() { ExitCode::from(1) } else { ExitCode::SUCCESS })
}

fn cmd_htmlize(args: &[String]) -> Result<ExitCode, String> {
    let [page] = args else {
        return Err(format!("htmlize needs one file\n{}", usage()));
    };
    let html = read_input(page)?;
    println!("{}", xyhtml::htmlize(&html).to_xml());
    Ok(ExitCode::SUCCESS)
}
