//! `xydiff wal inspect` — read-only inspection of a write-ahead delta log.
//!
//! Prints the segment layout, the consumed watermark, per-key chain
//! activity, and verifies every record: the frame checksums already held
//! (or `scan` would have reported the record as torn/corrupt), so what is
//! checked here is the *payload* — initial documents must parse, deltas
//! must parse and pass the static validator (`xydelta::verify`).
//!
//! Exit codes: 0 log healthy, 1 torn tail or invalid payloads found,
//! 2 usage/IO error.

use crate::usage;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;
use xydelta::xml_io;
use xytree::Document;
use xywal::{scan, Record};

pub(crate) fn cmd_wal(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("inspect") => {
            let [dir] = &args[1..] else {
                return Err(format!("wal inspect needs exactly one directory\n{}", usage()));
            };
            inspect(Path::new(dir))
        }
        Some(other) => Err(format!("unknown wal subcommand {other:?}\n{}", usage())),
        None => Err(format!("wal needs a subcommand (inspect)\n{}", usage())),
    }
}

/// Per-key accounting accumulated over the scan.
#[derive(Default)]
struct KeyInfo {
    inits: usize,
    deltas: usize,
    first_lsn: u64,
    last_lsn: u64,
    last_version: u64,
    bad_payloads: usize,
}

fn inspect(dir: &Path) -> Result<ExitCode, String> {
    let report = scan(dir).map_err(|e| format!("{}: {e}", dir.display()))?;

    println!("wal {}", dir.display());
    println!("  watermark {}", report.watermark);
    println!("  segments  {}", report.segments.len());
    for seg in &report.segments {
        let name = seg.path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        match seg.last_lsn() {
            Some(last) => println!(
                "    {name}: lsn {}..={} ({} records, {} bytes)",
                seg.first_lsn, last, seg.records, seg.bytes
            ),
            None => println!("    {name}: empty (next lsn {})", seg.first_lsn),
        }
    }
    if let Some(torn) = &report.torn {
        let name = torn.segment.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        println!(
            "  TORN TAIL in {name}: {} valid bytes, {} lost ({})",
            torn.valid_bytes, torn.lost_bytes, torn.reason
        );
    }

    let mut keys: BTreeMap<&str, KeyInfo> = BTreeMap::new();
    let mut bad = 0usize;
    for (lsn, record) in &report.records {
        let info = keys.entry(record.key()).or_default();
        if info.first_lsn == 0 {
            info.first_lsn = *lsn;
        }
        info.last_lsn = *lsn;
        let payload_ok = match record {
            Record::Init { xml, .. } => {
                info.inits += 1;
                info.last_version = 0;
                Document::parse(xml).is_ok()
            }
            Record::Delta { version, delta_xml, .. } => {
                info.deltas += 1;
                info.last_version = *version;
                xml_io::parse_delta(delta_xml)
                    .ok()
                    .is_some_and(|d| xydelta::verify(&d).is_ok())
            }
        };
        if !payload_ok {
            info.bad_payloads += 1;
            bad += 1;
            println!("  INVALID payload at lsn {lsn} (key {:?})", record.key());
        }
    }

    println!("  records   {} across {} keys", report.records.len(), keys.len());
    for (key, info) in &keys {
        print!(
            "    {key:?}: {} init + {} deltas, lsn {}..={}, latest version {}",
            info.inits, info.deltas, info.first_lsn, info.last_lsn, info.last_version
        );
        if info.bad_payloads > 0 {
            print!(", {} INVALID", info.bad_payloads);
        }
        println!();
    }

    let healthy = report.torn.is_none() && bad == 0;
    println!("  status    {}", if healthy { "ok" } else { "UNHEALTHY" });
    Ok(if healthy { ExitCode::SUCCESS } else { ExitCode::from(1) })
}
