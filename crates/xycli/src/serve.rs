//! `xydiff serve` — run the HTTP ingestion server.
//!
//! Binds the `xynet` network front over an `xyserve` pipeline and blocks
//! until a drain is requested: `POST /admin/shutdown`, or EOF on stdin
//! (`Ctrl-D`, or the supervisor closing the pipe — the portable stand-in
//! for signal handling in a `forbid(unsafe_code)` workspace). Shutdown is
//! loss-free: every accepted snapshot resolves before the process exits,
//! and with `--snapshot-dir` the final state is persisted and restored on
//! the next start.
//!
//! Exit codes: 0 clean drain, 2 usage/startup error.

use crate::usage;
use std::process::ExitCode;
use std::time::Duration;
use xydiff::MatchMode;
use xynet::{NetConfig, NetServer};
use xyserve::{ServeConfig, SnapshotPolicy, WalPolicy, WalSync};

pub(crate) fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut net = NetConfig::new().with_addr("127.0.0.1:8080");
    let mut serve = ServeConfig::new();
    let mut snapshot_dir = None;
    let mut snapshot_secs = None;
    let mut wal_dir = None;
    let mut wal_sync = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                let v = it.next().ok_or("--addr needs a value (e.g. 127.0.0.1:8080)")?;
                net = net.with_addr(v.clone());
            }
            "--workers" => {
                serve = serve
                    .with_workers(flag_value(&mut it, "--workers")?)
                    .map_err(|e| e.to_string())?;
            }
            "--http-workers" => {
                net = net.with_http_workers(flag_value(&mut it, "--http-workers")?);
            }
            "--queue" => {
                serve = serve
                    .with_queue_capacity(flag_value(&mut it, "--queue")?)
                    .map_err(|e| e.to_string())?;
            }
            "--shards" => {
                serve = serve
                    .with_shards(flag_value(&mut it, "--shards")?)
                    .map_err(|e| e.to_string())?;
            }
            "--steal-batch" => {
                serve = serve
                    .with_steal_batch(flag_value(&mut it, "--steal-batch")?)
                    .map_err(|e| e.to_string())?;
            }
            "--diff-threads" => {
                serve = serve
                    .with_diff_threads(flag_value(&mut it, "--diff-threads")?)
                    .map_err(|e| e.to_string())?;
            }
            "--max-body" => net = net.with_max_body_bytes(flag_value(&mut it, "--max-body")?),
            "--idle-timeout" => {
                let secs = flag_value(&mut it, "--idle-timeout")? as u64;
                net = net.with_idle_timeout(Duration::from_secs(secs));
            }
            "--max-conns" => {
                net = net.with_max_connections(flag_value(&mut it, "--max-conns")?);
            }
            "--shed-conns" => {
                net = net.with_shed_connections(flag_value(&mut it, "--shed-conns")?);
            }
            "--read-budget" => {
                net = net.with_read_budget(flag_value(&mut it, "--read-budget")?);
            }
            "--write-budget" => {
                net = net.with_write_budget(flag_value(&mut it, "--write-budget")?);
            }
            "--mode" => {
                let v = it.next().ok_or("--mode needs a value (buld|unordered|similarity)")?;
                serve =
                    serve.with_mode(v.parse::<MatchMode>().map_err(|e| format!("--mode: {e}"))?);
            }
            "--snapshot-dir" => {
                let v = it.next().ok_or("--snapshot-dir needs a directory")?;
                snapshot_dir = Some(v.clone());
            }
            "--snapshot-interval" => {
                snapshot_secs = Some(flag_value(&mut it, "--snapshot-interval")? as u64);
            }
            "--wal-dir" => {
                let v = it.next().ok_or("--wal-dir needs a directory")?;
                wal_dir = Some(v.clone());
            }
            "--wal-sync" => {
                let v = it.next().ok_or("--wal-sync needs a mode (always | none)")?;
                wal_sync = Some(
                    WalSync::parse(v)
                        .ok_or_else(|| format!("--wal-sync must be always or none, got {v:?}"))?,
                );
            }
            "--compact-chain-max" => {
                serve = serve.with_compact_chain_max(flag_value(&mut it, "--compact-chain-max")?);
            }
            "--quiet" => quiet = true,
            other => return Err(format!("unknown flag {other:?} for serve\n{}", usage())),
        }
    }
    if let Some(dir) = snapshot_dir {
        let mut policy = SnapshotPolicy::new(dir);
        if let Some(secs) = snapshot_secs {
            policy = policy.with_interval(Duration::from_secs(secs));
        }
        serve = serve.with_snapshots(policy);
    } else if snapshot_secs.is_some() {
        return Err("--snapshot-interval needs --snapshot-dir".to_string());
    }
    if let Some(dir) = wal_dir {
        let mut policy = WalPolicy::new(dir);
        if let Some(sync) = wal_sync {
            policy = policy.with_sync(sync);
        }
        serve = serve.with_wal(policy);
    } else if wal_sync.is_some() {
        return Err("--wal-sync needs --wal-dir".to_string());
    }

    let effective = serve.effective();
    let server = NetServer::start(net, serve).map_err(|e| e.to_string())?;
    eprintln!(
        "xydiff serve: listening on http://{} ({} reactor)",
        server.local_addr(),
        server.backend(),
    );
    eprintln!("xydiff serve: {effective}");
    eprintln!("xydiff serve: POST /admin/shutdown (or close stdin) to drain");

    // Wake the waiter when stdin reaches EOF. The thread is deliberately
    // not joined: if the drain came over HTTP instead, it stays parked in
    // `read_line` and the process exit reaps it.
    let stdin_watch = {
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        std::thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match std::io::stdin().read_line(&mut line) {
                    Ok(0) | Err(_) => break, // EOF or a broken pipe
                    Ok(_) => {}
                }
            }
            let _ = tx.send(());
        });
        rx
    };

    loop {
        if server.wait_for_shutdown_request(Duration::from_millis(200)) {
            break;
        }
        if stdin_watch.try_recv().is_ok() {
            server.request_shutdown();
            break;
        }
    }

    eprintln!("xydiff serve: draining…");
    let report = server.shutdown();
    eprintln!(
        "xydiff serve: served {} requests on {} connections; {} snapshots stored, {} dead-lettered",
        report.requests,
        report.connections,
        report.ingest.succeeded,
        report.ingest.dead_lettered,
    );
    if !report.ingest.is_balanced() {
        return Err("shutdown accounting is unbalanced (bug)".to_string());
    }
    if !quiet {
        print!("{}", report.ingest.metrics_text);
    }
    Ok(ExitCode::SUCCESS)
}

fn flag_value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<usize, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<usize>().map_err(|_| format!("{flag} needs a positive integer, got {v:?}"))
}
