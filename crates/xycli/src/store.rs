//! `xydiff store` — the Figure 1 pipeline as a directory-backed CLI store.
//!
//! The store is loaded from disk at the start of each invocation and saved
//! back after mutating commands, so a shell session *is* a warehouse
//! session:
//!
//! ```text
//! xydiff store ./repo load cameras.xml crawl-monday.xml
//! xydiff store ./repo load cameras.xml crawl-friday.xml   # runs the diff
//! xydiff store ./repo history cameras.xml
//! xydiff store ./repo get cameras.xml 0                   # querying the past
//! xydiff store ./repo changes cameras.xml 0 1             # the delta
//! ```

use crate::{read_input, usage};
use std::path::Path;
use std::process::ExitCode;
use xywarehouse::Repository;

pub(crate) fn cmd_store(args: &[String]) -> Result<ExitCode, String> {
    let [dir, action, rest @ ..] = args else {
        return Err(format!("store needs DIR and an action\n{}", usage()));
    };
    let dir = Path::new(dir);
    match action.as_str() {
        "load" => store_load(dir, rest),
        "get" => store_get(dir, rest),
        "history" => store_history(dir, rest),
        "changes" => store_changes(dir, rest),
        "keys" => store_keys(dir),
        other => Err(format!("unknown store action {other:?}\n{}", usage())),
    }
}

/// Open the repository at `dir` (empty when the directory is fresh).
fn open_repo(dir: &Path) -> Result<Repository, String> {
    if dir.join("manifest.txt").exists() {
        Repository::load_from(dir, Default::default(), Default::default())
            .map_err(|e| format!("opening store {}: {e}", dir.display()))
    } else {
        Ok(Repository::new())
    }
}

fn save_repo(repo: &Repository, dir: &Path) -> Result<(), String> {
    repo.save_to(dir)
        .map_err(|e| format!("saving store {}: {e}", dir.display()))
}

fn store_load(dir: &Path, rest: &[String]) -> Result<ExitCode, String> {
    let [key, file] = rest else {
        return Err(format!("store load needs KEY FILE.xml\n{}", usage()));
    };
    let xml = read_input(file)?;
    let repo = open_repo(dir)?;
    let out = repo
        .load_version(key, &xml)
        .map_err(|e| format!("loading {file} as {key}: {e}"))?;
    save_repo(&repo, dir)?;
    let c = out.delta.counts();
    eprintln!(
        "stored {key} v{} ({} ops: {} delete, {} insert, {} update, {} move, {} attr)",
        out.version,
        c.total(),
        c.deletes,
        c.inserts,
        c.updates,
        c.moves,
        c.attr_ops
    );
    Ok(ExitCode::SUCCESS)
}

fn store_get(dir: &Path, rest: &[String]) -> Result<ExitCode, String> {
    let (key, version) = match rest {
        [key] => (key, None),
        [key, v] => (
            key,
            Some(v.parse::<usize>().map_err(|_| format!("bad version {v:?}"))?),
        ),
        _ => return Err(format!("store get needs KEY [VERSION]\n{}", usage())),
    };
    let repo = open_repo(dir)?;
    let xml = match version {
        None => repo.latest_xml(key),
        Some(v) => repo.version_xml(key, v),
    }
    .map_err(|e| e.to_string())?;
    println!("{xml}");
    Ok(ExitCode::SUCCESS)
}

fn store_history(dir: &Path, rest: &[String]) -> Result<ExitCode, String> {
    let [key] = rest else {
        return Err(format!("store history needs KEY\n{}", usage()));
    };
    let repo = open_repo(dir)?;
    let count = repo.version_count(key);
    if count == 0 {
        return Err(format!("no document stored under {key:?}"));
    }
    println!("v0: initial version");
    for i in 1..count {
        let delta = repo.delta_between(key, i - 1, i).map_err(|e| e.to_string())?;
        let c = delta.counts();
        println!(
            "v{i}: {} ops ({} delete, {} insert, {} update, {} move, {} attr), {} bytes",
            c.total(),
            c.deletes,
            c.inserts,
            c.updates,
            c.moves,
            c.attr_ops,
            delta.size_bytes()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn store_changes(dir: &Path, rest: &[String]) -> Result<ExitCode, String> {
    let [key, from, to] = rest else {
        return Err(format!("store changes needs KEY FROM TO\n{}", usage()));
    };
    let from: usize = from.parse().map_err(|_| format!("bad version {from:?}"))?;
    let to: usize = to.parse().map_err(|_| format!("bad version {to:?}"))?;
    let repo = open_repo(dir)?;
    if from > to || to >= repo.version_count(key) {
        return Err(format!(
            "version range {from}..{to} out of bounds for {key:?} ({} versions)",
            repo.version_count(key)
        ));
    }
    let delta = repo.delta_between(key, from, to).map_err(|e| e.to_string())?;
    println!("{}", xydelta::xml_io::delta_to_xml_pretty(&delta));
    Ok(ExitCode::SUCCESS)
}

fn store_keys(dir: &Path) -> Result<ExitCode, String> {
    let repo = open_repo(dir)?;
    let mut keys = repo.keys();
    keys.sort();
    for k in &keys {
        println!("{k} ({} versions)", repo.version_count(k));
    }
    Ok(if keys.is_empty() { ExitCode::from(1) } else { ExitCode::SUCCESS })
}
