//! `xydiff ingest` — run a directory of versioned snapshots through the
//! concurrent ingestion server.
//!
//! Corpus layout: each subdirectory of DIR is one document (key = directory
//! name) whose `*.xml` files, sorted by name, are successive versions; an
//! `*.xml` file directly in DIR is a single-version document keyed by its
//! file name. Snapshots of one document are submitted in order, documents
//! are interleaved round-robin so the worker pool actually overlaps work.
//!
//! Exit codes: 0 all snapshots stored, 1 some snapshots dead-lettered,
//! 2 usage/input error.

use crate::usage;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xydiff::MatchMode;
use xyserve::{IngestServer, ServeConfig, WalPolicy, WalSync};

pub(crate) fn cmd_ingest(args: &[String]) -> Result<ExitCode, String> {
    let mut config = ServeConfig::new();
    let mut quiet = false;
    let mut dir = None;
    let mut wal_dir = None;
    let mut wal_sync = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                config = config
                    .with_workers(flag_value(&mut it, "--workers")?)
                    .map_err(|e| e.to_string())?;
            }
            "--queue" => {
                config = config
                    .with_queue_capacity(flag_value(&mut it, "--queue")?)
                    .map_err(|e| e.to_string())?;
            }
            "--shards" => {
                config = config
                    .with_shards(flag_value(&mut it, "--shards")?)
                    .map_err(|e| e.to_string())?;
            }
            "--steal-batch" => {
                config = config
                    .with_steal_batch(flag_value(&mut it, "--steal-batch")?)
                    .map_err(|e| e.to_string())?;
            }
            "--diff-threads" => {
                config = config
                    .with_diff_threads(flag_value(&mut it, "--diff-threads")?)
                    .map_err(|e| e.to_string())?;
            }
            "--mode" => {
                let v = it.next().ok_or("--mode needs a value (buld|unordered|similarity)")?;
                config =
                    config.with_mode(v.parse::<MatchMode>().map_err(|e| format!("--mode: {e}"))?);
            }
            "--wal-dir" => {
                let v = it.next().ok_or("--wal-dir needs a directory")?;
                wal_dir = Some(v.clone());
            }
            "--wal-sync" => {
                let v = it.next().ok_or("--wal-sync needs a mode (always | none)")?;
                wal_sync = Some(
                    WalSync::parse(v)
                        .ok_or_else(|| format!("--wal-sync must be always or none, got {v:?}"))?,
                );
            }
            "--compact-chain-max" => {
                config =
                    config.with_compact_chain_max(flag_value(&mut it, "--compact-chain-max")?);
            }
            "--quiet" => quiet = true,
            f if !f.starts_with("--") => {
                if dir.replace(PathBuf::from(f)).is_some() {
                    return Err(format!("ingest takes one directory\n{}", usage()));
                }
            }
            other => return Err(format!("unknown flag {other:?} for ingest")),
        }
    }
    let Some(dir) = dir else {
        return Err(format!("ingest needs a corpus directory\n{}", usage()));
    };
    if let Some(wd) = wal_dir {
        let mut policy = WalPolicy::new(wd);
        if let Some(sync) = wal_sync {
            policy = policy.with_sync(sync);
        }
        config = config.with_wal(policy);
    } else if wal_sync.is_some() {
        return Err("--wal-sync needs --wal-dir".to_string());
    }
    let corpus = scan_corpus(&dir)?;
    if corpus.is_empty() {
        return Err(format!("{}: no .xml snapshots found", dir.display()));
    }

    if !quiet {
        eprintln!("xydiff ingest: {}", config.effective());
    }
    let server = IngestServer::start(config);
    // Round-robin across documents: version i of every document before
    // version i+1 of any, so concurrent chains genuinely interleave.
    let mut round = 0;
    loop {
        let mut any = false;
        for (key, versions) in &corpus {
            if let Some(path) = versions.get(round) {
                any = true;
                let xml = std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {}: {e}", path.display()))?;
                server
                    .submit(key, xml)
                    .map_err(|e| format!("submitting {}: {e}", path.display()))?;
            }
        }
        if !any {
            break;
        }
        round += 1;
    }

    let report = server.shutdown();
    eprintln!(
        "ingested {} snapshots of {} documents: {} stored, {} dead-lettered, {} retries, {} alerts",
        report.submitted,
        corpus.len(),
        report.succeeded,
        report.dead_lettered,
        report.retries,
        report.alerts_fired,
    );
    for dl in &report.dead_letters {
        eprintln!("dead-letter: {} v{}: {}", dl.key, dl.seq, dl.error);
    }
    if !report.is_balanced() {
        return Err("shutdown accounting is unbalanced (bug)".to_string());
    }
    if !quiet {
        print!("{}", report.metrics_text);
    }
    Ok(if report.dead_lettered == 0 { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn flag_value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<usize, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<usize>().map_err(|_| format!("{flag} needs a positive integer, got {v:?}"))
}

/// Collect `(key, ordered snapshot paths)` pairs, sorted by key so output
/// and submission order are deterministic.
fn scan_corpus(dir: &Path) -> Result<Vec<(String, Vec<PathBuf>)>, String> {
    let mut corpus = Vec::new();
    for entry in list_sorted(dir)? {
        let name = entry
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("{}: non-UTF-8 file name", entry.display()))?
            .to_string();
        if entry.is_dir() {
            let versions: Vec<PathBuf> = list_sorted(&entry)?
                .into_iter()
                .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "xml"))
                .collect();
            if !versions.is_empty() {
                corpus.push((name, versions));
            }
        } else if entry.extension().is_some_and(|e| e == "xml") {
            corpus.push((name, vec![entry]));
        }
    }
    Ok(corpus)
}

fn list_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .map(|r| r.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("reading {}: {e}", dir.display()))?;
    paths.sort();
    Ok(paths)
}
