#![doc = "xylint: hot-path"]
//! Fixture: trips L2 exactly once (allocation in a hot-path module).

fn gather(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    out.resize(n, 0);
    out
}
