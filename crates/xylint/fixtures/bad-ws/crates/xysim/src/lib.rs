//! Fixture crate root: clean by itself; the L2 violation lives in `hot.rs`.
#![forbid(unsafe_code)]

pub mod hot;
