//! Fixture: trips L4 exactly once (stray diagnostic macro in library code).
#![forbid(unsafe_code)]

fn evaluate(x: u32) -> u32 {
    dbg!(x + 1)
}
