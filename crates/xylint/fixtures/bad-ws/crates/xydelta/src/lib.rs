//! Fixture: trips L1 exactly once (unjustified unwrap in a core crate).
#![forbid(unsafe_code)]

fn first_byte(input: &[u8]) -> u8 {
    *input.first().unwrap()
}

fn used(input: &[u8]) -> u8 {
    first_byte(input)
}

fn main_like() {
    let _ = used(b"x");
}
