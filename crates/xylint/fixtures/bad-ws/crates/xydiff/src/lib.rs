//! Fixture: trips L3 exactly once (pub item without a doc comment).
#![forbid(unsafe_code)]

pub fn undocumented_entry_point() -> u32 {
    42
}
