//! Fixture: a fully annotated core crate that passes all four rules.
#![forbid(unsafe_code)]

pub mod hot;

/// Returns the first byte of a non-empty buffer.
pub fn first_byte(input: &[u8]) -> u8 {
    // INVARIANT: callers only pass buffers produced by `hot::fill`, which
    // always yields at least one byte.
    *input.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_here() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
