#![doc = "xylint: hot-path"]
//! Fixture hot-path module: allocations are justified.

/// Produces a buffer of `n` ones.
pub fn fill(n: usize) -> Vec<u8> {
    // ALLOC-OK: one-time buffer construction at entry, reused by the caller.
    let mut out = Vec::with_capacity(n.max(1));
    out.resize(n.max(1), 1);
    out
}
