//! A hand-written Rust lexer — just enough of the language to lint safely.
//!
//! In the same zero-dependency spirit as the workspace's XML parser (no
//! `syn`, no `proc-macro2`, offline-safe), this scanner splits Rust source
//! into tokens so the rules in [`crate::rules`] never fire inside string
//! literals, comments, or doc text. It does not parse: there is no AST,
//! no expression grammar — only a faithful token stream with line numbers.
//!
//! The tricky cases it must get right, because the lints depend on them:
//!
//! - nested block comments (`/* /* */ */`);
//! - raw strings with hash fences (`r#"…"#`) and byte/raw-byte strings;
//! - char literals versus lifetimes (`'a'` versus `'a`);
//! - doc comments (`///`, `//!`, `/** */`, `/*! */`) kept distinct from
//!   plain comments, since rule L3 looks for the former and the annotation
//!   grammar lives in the latter.

/// What a token is. Text is carried separately in [`Token::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unwrap`, `r#type`).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A non-doc line comment (`// …`), the annotation carrier.
    LineComment,
    /// A non-doc block comment (`/* … */`).
    BlockComment,
    /// An outer doc comment (`/// …` or `/** … */`).
    OuterDoc,
    /// An inner doc comment (`//! …` or `/*! … */`).
    InnerDoc,
    /// Any single punctuation byte (`.`, `!`, `::` arrives as two tokens).
    Punct,
}

/// One token: kind, source text, and the 1-based line it starts on.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// Classification.
    pub kind: TokKind,
    /// The exact source slice.
    pub text: &'a str,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl<'a> Token<'a> {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// True for any comment or doc-comment token.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment | TokKind::BlockComment | TokKind::OuterDoc | TokKind::InnerDoc
        )
    }
}

/// Tokenize `src`. Unterminated literals/comments are tolerated (the rest of
/// the file becomes one token): a linter must degrade gracefully on code that
/// does not compile yet.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer { src: src.as_bytes(), text: src, pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(start, line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(start, line),
                b'"' => {
                    self.pos += 1;
                    self.string_body(b'"');
                    self.emit(TokKind::Str, start, line);
                }
                b'\'' => self.char_or_lifetime(start, line),
                b'r' | b'b' if self.raw_or_byte_literal(start, line) => {}
                _ if is_ident_start(b) => {
                    self.pos += 1;
                    while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                        self.pos += 1;
                    }
                    self.emit(TokKind::Ident, start, line);
                }
                b'0'..=b'9' => self.number(start, line),
                _ => {
                    // Multi-byte UTF-8 inside code is only legal in idents
                    // (non-ASCII identifiers); treat any such byte run as one.
                    if b < 0x80 {
                        self.pos += 1;
                    } else {
                        while self.pos < self.src.len() && self.src[self.pos] >= 0x80 {
                            self.pos += 1;
                        }
                    }
                    self.emit(TokKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: u32) {
        self.out.push(Token { kind, text: &self.text[start..self.pos], line });
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        let kind = if self.peek(2) == Some(b'/') && self.peek(3) != Some(b'/') {
            TokKind::OuterDoc // `///` but not `////` (the latter is a rule)
        } else if self.peek(2) == Some(b'!') {
            TokKind::InnerDoc
        } else {
            TokKind::LineComment
        };
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.emit(kind, start, line);
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        let kind = if self.peek(2) == Some(b'*') && self.peek(3) != Some(b'*')
            && self.peek(3) != Some(b'/')
        {
            TokKind::OuterDoc // `/**` but not `/***` or the empty `/**/`
        } else if self.peek(2) == Some(b'!') {
            TokKind::InnerDoc
        } else {
            TokKind::BlockComment
        };
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.emit(kind, start, line);
    }

    /// Consume a quoted body up to an unescaped `close`, tracking newlines.
    fn string_body(&mut self, close: u8) {
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b == close => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// `'a'` is a char, `'a` is a lifetime, `'\''` is a char.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        // A lifetime: quote, ident start, ident run, and *no* closing quote.
        if self.peek(1).is_some_and(is_ident_start) {
            let mut end = self.pos + 2;
            while end < self.src.len() && is_ident_continue(self.src[end]) {
                end += 1;
            }
            if self.src.get(end) != Some(&b'\'') {
                self.pos = end;
                self.emit(TokKind::Lifetime, start, line);
                return;
            }
        }
        self.pos += 1;
        self.string_body(b'\'');
        self.emit(TokKind::Char, start, line);
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`, and raw idents
    /// (`r#match`). Returns false when the `r`/`b` starts a plain identifier.
    fn raw_or_byte_literal(&mut self, start: usize, line: u32) -> bool {
        let b0 = self.src[self.pos];
        let mut i = self.pos + 1;
        let mut raw = b0 == b'r';
        if b0 == b'b' && self.src.get(i) == Some(&b'r') {
            raw = true;
            i += 1;
        }
        let mut hashes = 0usize;
        while self.src.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        match self.src.get(i) {
            Some(&b'"') if raw || hashes == 0 => {
                // r"…", r#"…"#, br"…", or cooked b"…".
                self.pos = i + 1;
                if raw {
                    self.raw_string_tail(hashes);
                } else {
                    self.string_body(b'"');
                }
                self.emit(TokKind::Str, start, line);
                true
            }
            Some(&b'\'') if b0 == b'b' && !raw && hashes == 0 => {
                self.pos = i + 1;
                self.string_body(b'\'');
                self.emit(TokKind::Char, start, line);
                true
            }
            Some(&c) if b0 == b'r' && hashes == 1 && is_ident_start(c) => {
                // Raw identifier r#foo.
                self.pos = i;
                while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                    self.pos += 1;
                }
                self.emit(TokKind::Ident, start, line);
                true
            }
            _ => false, // plain identifier starting with r/b
        }
    }

    /// Consume a raw-string body: no escapes; ends at `"` followed by
    /// `hashes` hashes (zero hashes: the first `"`).
    fn raw_string_tail(&mut self, hashes: usize) {
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.src[self.pos] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.src.get(self.pos + 1 + k) != Some(&b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    fn number(&mut self, start: usize, line: u32) {
        self.pos += 1;
        while self.pos < self.src.len()
            && (is_ident_continue(self.src[self.pos]) || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        // A fraction only when `.` is followed by a digit — `0..n` and
        // `1.max(2)` must not swallow the dot.
        if self.src.get(self.pos) == Some(&b'.')
            && self.src.get(self.pos + 1).is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
            while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                self.pos += 1;
            }
        }
        self.emit(TokKind::Number, start, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("a.unwrap()");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "a"),
                (TokKind::Punct, "."),
                (TokKind::Ident, "unwrap"),
                (TokKind::Punct, "("),
                (TokKind::Punct, ")"),
            ]
        );
    }

    #[test]
    fn unwrap_inside_string_is_a_string() {
        let t = kinds(r#"let s = "x.unwrap()";"#);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Str && s.contains("unwrap")));
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Ident && *s == "unwrap"));
    }

    #[test]
    fn comment_kinds_distinguished() {
        let src = "// plain\n/// outer\n//! inner\n/* block */\n/** odoc */\n/*! idoc */";
        let t: Vec<TokKind> = lex(src).into_iter().map(|t| t.kind).collect();
        assert_eq!(
            t,
            vec![
                TokKind::LineComment,
                TokKind::OuterDoc,
                TokKind::InnerDoc,
                TokKind::BlockComment,
                TokKind::OuterDoc,
                TokKind::InnerDoc,
            ]
        );
    }

    #[test]
    fn four_slashes_is_not_doc() {
        assert_eq!(lex("//// rule").first().map(|t| t.kind), Some(TokKind::LineComment));
    }

    #[test]
    fn nested_block_comment() {
        let t = kinds("/* a /* b */ c */ x");
        assert_eq!(t.last(), Some(&(TokKind::Ident, "x")));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let t = kinds(r##"let s = r#"has "quotes" and unwrap()"#; done"##);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Str && s.contains("quotes")));
        assert_eq!(t.last(), Some(&(TokKind::Ident, "done")));
    }

    #[test]
    fn byte_strings_and_chars() {
        let t = kinds(r#"cur.expect(b'>'); let s = b"bytes";"#);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && *s == "b'>'"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Str && *s == "b\"bytes\""));
    }

    #[test]
    fn lifetime_vs_char() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn raw_ident() {
        let t = kinds("let r#type = 1;");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && *s == "r#type"));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let t = kinds("for i in 0..10 { let x = 1.5; let y = 2.max(3); }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Number && *s == "1.5"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && *s == "max"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Number && *s == "0"));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<(String, u32)> =
            toks.iter().map(|t| (t.text.to_string(), t.line)).collect();
        assert_eq!(lines, vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 4)]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("let s = \"one\ntwo\";\nafter");
        let after = toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }
}
