//! `xylint` CLI: lint the workspace's library source against rules L1–L4.
//!
//! ```text
//! xylint [--deny] [--fix-annotations] [--summary PATH] [--root PATH]
//! ```
//!
//! - `--deny` — exit 1 when any rule fires (CI mode)
//! - `--fix-annotations` — print the per-crate lint/annotation summary table
//!   and write it to `LINT_summary.md` (or `--summary`)
//! - `--root PATH` — workspace root (default: search upward from cwd)
//!
//! Exit codes: 0 clean (or violations found without `--deny`), 1 violations
//! with `--deny`, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut fix_annotations = false;
    let mut summary_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--fix-annotations" => fix_annotations = true,
            "--summary" => match args.next() {
                Some(p) => summary_path = Some(PathBuf::from(p)),
                None => return usage("--summary needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("xylint: cannot read cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match xylint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("xylint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match xylint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xylint: walking {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{v}");
    }

    if fix_annotations {
        let table = report.summary_table();
        println!("\n## xylint summary\n\n{table}");
        let path = summary_path.unwrap_or_else(|| root.join("LINT_summary.md"));
        let doc = format!(
            "# xylint summary\n\nRules: L1 panic paths, L2 hot-path allocations, \
             L3 unsafe/doc hygiene, L4 stray diagnostics.\n\n{table}"
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("xylint: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    if report.is_clean() {
        println!("xylint: clean ({} crates)", report.per_crate.len());
        ExitCode::SUCCESS
    } else {
        println!("xylint: {} violation(s)", report.violations.len());
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

const USAGE: &str = "xylint [--deny] [--fix-annotations] [--summary PATH] [--root PATH]

Lints the workspace's library source against the project rules:
  L1  no .unwrap()/.expect()/panic!/unreachable! in core-crate library code
      without a `// INVARIANT:` justification
  L2  no allocation constructors in `#![doc = \"xylint: hot-path\"]` modules
      without `// ALLOC-OK:`
  L3  every crate keeps #![forbid(unsafe_code)]; every pub item in
      xydelta/xydiff is documented
  L4  no todo!/dbg!/eprintln! outside bins and tests";

fn usage(msg: &str) -> ExitCode {
    eprintln!("xylint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
