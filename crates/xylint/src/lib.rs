//! xylint — zero-dependency static analysis over the workspace's own source.
//!
//! The XyDiff reproduction promises two things its test suite alone cannot
//! check: library code on the diff/apply path never panics on hostile input
//! (every panic site is either converted to a typed error or justified by a
//! written invariant), and the modules declared hot (the per-document diff
//! loop) stay allocation-free in steady state. `xylint` makes both promises
//! machine-checkable with a hand-written Rust lexer — no `syn`, no `dylint`,
//! no network — so it runs in the offline CI container.
//!
//! The rules are defined in [`rules`]; the token model in [`lexer`]. This
//! module adds the workspace walker: which files are *library code* (crate
//! `src/` trees minus `src/bin/` and `src/main.rs`), which crate each file
//! belongs to, and the aggregation used by `xylint --fix-annotations` for
//! its per-crate summary table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{FileStats, Rule, Violation};

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Per-crate aggregation for the summary table.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrateStats {
    /// Library files linted.
    pub files: usize,
    /// Files carrying the `xylint: hot-path` marker.
    pub hot_path_files: usize,
    /// `// INVARIANT:` justifications present.
    pub invariant_annotations: usize,
    /// `// ALLOC-OK:` justifications present.
    pub alloc_ok_annotations: usize,
    /// Violations found, by rule: `[L1, L2, L3, L4]`.
    pub violations: [usize; 4],
}

impl CrateStats {
    /// Total violations across all rules.
    pub fn total_violations(&self) -> usize {
        self.violations.iter().sum()
    }
}

/// The result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by file then line.
    pub violations: Vec<Violation>,
    /// Per-crate aggregation, keyed by crate name (the root suite crate is
    /// keyed as `xydiff-suite`).
    pub per_crate: BTreeMap<String, CrateStats>,
}

impl LintReport {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render the per-crate summary as a GitHub-flavoured markdown table.
    pub fn summary_table(&self) -> String {
        let mut out = String::from(
            "| crate | files | hot-path | INVARIANT | ALLOC-OK | L1 | L2 | L3 | L4 |\n\
             |-------|------:|---------:|----------:|---------:|---:|---:|---:|---:|\n",
        );
        let mut total = CrateStats::default();
        for (name, s) in &self.per_crate {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                name,
                s.files,
                s.hot_path_files,
                s.invariant_annotations,
                s.alloc_ok_annotations,
                s.violations[0],
                s.violations[1],
                s.violations[2],
                s.violations[3],
            ));
            total.files += s.files;
            total.hot_path_files += s.hot_path_files;
            total.invariant_annotations += s.invariant_annotations;
            total.alloc_ok_annotations += s.alloc_ok_annotations;
            for k in 0..4 {
                total.violations[k] += s.violations[k];
            }
        }
        out.push_str(&format!(
            "| **total** | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            total.files,
            total.hot_path_files,
            total.invariant_annotations,
            total.alloc_ok_annotations,
            total.violations[0],
            total.violations[1],
            total.violations[2],
            total.violations[3],
        ));
        out
    }
}

/// Lint every library source file under `root` (a workspace directory laid
/// out like this repository: `crates/<name>/src/**/*.rs` plus the root suite
/// crate's `src/`).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<(String, PathBuf)> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.join("src").is_dir() {
                let name = entry.file_name().to_string_lossy().into_owned();
                crate_dirs.push((name, path));
            }
        }
    }
    crate_dirs.sort();
    if root.join("src").is_dir() {
        crate_dirs.push(("xydiff-suite".to_string(), root.to_path_buf()));
    }

    for (name, dir) in crate_dirs {
        let stats = report.per_crate.entry(name.clone()).or_default();
        let src = dir.join("src");
        // A crate without a lib.rs only builds binaries; all of its modules
        // are bin code, which every rule exempts.
        if !src.join("lib.rs").is_file() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            // Binaries are allowed to print, unwrap on CLI errors, etc.
            if file.file_name().is_some_and(|f| f == "main.rs")
                || file.strip_prefix(&src).is_ok_and(|r| r.starts_with("bin"))
            {
                continue;
            }
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&file)?;
            let crate_name = if name == "xydiff-suite" { None } else { Some(name.as_str()) };
            let (violations, fstats) = rules::lint_source(crate_name, &rel, &text);
            stats.files += 1;
            if fstats.hot_path {
                stats.hot_path_files += 1;
            }
            stats.invariant_annotations += fstats.invariant_annotations;
            stats.alloc_ok_annotations += fstats.alloc_ok_annotations;
            for v in &violations {
                stats.violations[v.rule as usize] += 1;
            }
            report.violations.extend(violations);

            // L3's crate-level half: forbid(unsafe_code) must stay.
            if file.file_name().is_some_and(|f| f == "lib.rs")
                && crate_name.is_some()
                && !rules::has_forbid_unsafe(&text)
            {
                stats.violations[Rule::L3 as usize] += 1;
                report.violations.push(Violation {
                    rule: Rule::L3,
                    file: rel,
                    line: 1,
                    message: "crate root lost its #![forbid(unsafe_code)]".to_string(),
                });
            }
        }
    }

    report
        .violations
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(report)
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seeded fixture tree carries exactly one violation of each rule
    /// L1–L4 (see `fixtures/bad-ws/`): the acceptance check from the issue.
    #[test]
    fn fixture_workspace_trips_each_rule_once() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad-ws");
        let report = lint_workspace(&root).unwrap();
        let mut by_rule = [0usize; 4];
        for v in &report.violations {
            by_rule[v.rule as usize] += 1;
        }
        assert_eq!(by_rule, [1, 1, 1, 1], "{:#?}", report.violations);
        // Diagnostics are file:line addressed.
        for v in &report.violations {
            assert!(v.line >= 1);
            assert!(v.file.ends_with(".rs"), "{}", v.file);
        }
    }

    #[test]
    fn clean_fixture_workspace_passes() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/clean-ws");
        let report = lint_workspace(&root).unwrap();
        assert!(report.is_clean(), "{:#?}", report.violations);
        // The clean fixture exercises the annotation grammar, so the counts
        // must surface in the summary.
        let stats = report.per_crate.get("xydelta").unwrap();
        assert!(stats.invariant_annotations >= 1);
        assert!(stats.alloc_ok_annotations >= 1);
        assert_eq!(stats.hot_path_files, 1);
    }

    #[test]
    fn real_workspace_is_clean() {
        // CARGO_MANIFEST_DIR = <ws>/crates/xylint
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let report = lint_workspace(&root).unwrap();
        let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
        assert!(report.is_clean(), "workspace lints:\n{}", rendered.join("\n"));
    }

    #[test]
    fn summary_table_is_markdown() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/clean-ws");
        let report = lint_workspace(&root).unwrap();
        let table = report.summary_table();
        assert!(table.starts_with("| crate |"));
        assert!(table.contains("| **total** |"));
    }
}
