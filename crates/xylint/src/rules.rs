//! The lint rules L1–L4 and the annotation grammar.
//!
//! | rule | scope | requirement |
//! |------|-------|-------------|
//! | L1 | library code of the core crates | no `.unwrap()` / `.expect()` / `panic!` / `unreachable!` without a `// INVARIANT:` justification on the same or preceding line |
//! | L2 | modules marked `#![doc = "xylint: hot-path"]` | no allocation constructors (`Vec::new`, `format!`, `.clone()`, …) without `// ALLOC-OK:` |
//! | L3 | every crate / `xydelta` + `xydiff` | `#![forbid(unsafe_code)]` stays in every `lib.rs`; every plain-`pub` item carries a doc comment |
//! | L4 | all library code | no `todo!` / `dbg!` / `eprintln!` (diagnostics belong in bins and tests) |
//!
//! The annotation grammar: a justification is a **plain** line comment (not
//! a doc comment) containing the marker `INVARIANT:` (for L1) or `ALLOC-OK:`
//! (for L2) followed by free-text reasoning, placed either at the end of the
//! offending line or alone on the line directly above it:
//!
//! ```text
//! let node = map.get(&xid).unwrap(); // INVARIANT: xid came from this map's keys
//! // ALLOC-OK: cold path, runs once per document at parse time
//! let label = name.to_string();
//! ```
//!
//! `#[cfg(test)]` items (and everything inside them) are exempt from all
//! rules: tests may unwrap freely.

use crate::lexer::{lex, TokKind, Token};
use std::collections::HashSet;
use std::fmt;

/// Which lint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Unjustified panic path in core-crate library code.
    L1,
    /// Unjustified allocation in a hot-path module.
    L2,
    /// Missing `#![forbid(unsafe_code)]` or missing doc on a pub item.
    L3,
    /// Debug/diagnostic macro in library code.
    L4,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
        };
        f.write_str(s)
    }
}

/// One finding, addressed `file:line` for terminal navigation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Per-file annotation accounting (aggregated per crate for the summary).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileStats {
    /// `// INVARIANT:` justifications present.
    pub invariant_annotations: usize,
    /// `// ALLOC-OK:` justifications present.
    pub alloc_ok_annotations: usize,
    /// True when the file carries the hot-path marker.
    pub hot_path: bool,
}

/// Crates whose library code is subject to L1 (the xydiff/xydelta hot path
/// plus everything xyserve's reliability story depends on).
pub const L1_CRATES: &[&str] =
    &["xytree", "xydelta", "xydiff", "xywarehouse", "xywal", "xyserve", "xynet", "xyschema"];

/// Crates whose every plain-`pub` item must carry a doc comment (L3).
pub const DOC_CRATES: &[&str] = &["xydelta", "xydiff", "xyschema"];

/// The module marker that opts a file into L2. Written as an inner doc
/// attribute so it is visible in rustdoc output too.
pub const HOT_PATH_MARKER: &str = "xylint: hot-path";

const L1_MARKER: &str = "INVARIANT:";
const L2_MARKER: &str = "ALLOC-OK:";

/// Lint one library source file. `crate_name` decides which rules apply
/// (`None` for the workspace-root suite crate: only L4 applies there).
pub fn lint_source(crate_name: Option<&str>, rel_path: &str, src: &str) -> (Vec<Violation>, FileStats) {
    let tokens = lex(src);
    let code: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_trivia()).collect();
    let in_test = test_spans(&tokens, &code);

    // Annotation carriers: plain line/block comments, keyed by line. A
    // justification may span several comment lines, so excusal walks upward
    // through the contiguous comment block above the offending line.
    let mut invariant_lines: HashSet<u32> = HashSet::new();
    let mut alloc_ok_lines: HashSet<u32> = HashSet::new();
    let mut comment_lines: HashSet<u32> = HashSet::new();
    let mut stats = FileStats::default();
    for t in &tokens {
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            comment_lines.insert(t.line);
            if t.text.contains(L1_MARKER) {
                invariant_lines.insert(t.line);
                stats.invariant_annotations += 1;
            }
            if t.text.contains(L2_MARKER) {
                alloc_ok_lines.insert(t.line);
                stats.alloc_ok_annotations += 1;
            }
        }
    }
    stats.hot_path = has_hot_path_marker(&tokens);

    let l1 = crate_name.is_some_and(|c| L1_CRATES.contains(&c));
    let l2 = stats.hot_path;
    let l3_docs = crate_name.is_some_and(|c| DOC_CRATES.contains(&c));

    let mut out = Vec::new();
    let excused = |lines: &HashSet<u32>, line: u32| {
        if lines.contains(&line) {
            return true;
        }
        let mut l = line;
        while l > 1 && comment_lines.contains(&(l - 1)) {
            l -= 1;
            if lines.contains(&l) {
                return true;
            }
        }
        false
    };

    for (ci, &ti) in code.iter().enumerate() {
        if in_test[ci] {
            continue;
        }
        let t = &tokens[ti];
        let next = |k: usize| code.get(ci + k).map(|&j| &tokens[j]);
        let at = |k: usize| next(k).map(|t| t.text);

        // L1: panic paths.
        if l1 {
            if t.is_punct(".")
                && matches!(at(1), Some("unwrap" | "expect"))
                && at(2) == Some("(")
            {
                let callee = at(1).unwrap_or_default();
                let line = next(1).map_or(t.line, |n| n.line);
                if !excused(&invariant_lines, line) {
                    out.push(Violation {
                        rule: Rule::L1,
                        file: rel_path.to_string(),
                        line,
                        message: format!(
                            ".{callee}() in library code without a `// INVARIANT:` justification"
                        ),
                    });
                }
            }
            if t.kind == TokKind::Ident
                && matches!(t.text, "panic" | "unreachable")
                && next(1).is_some_and(|n| n.is_punct("!"))
                && !excused(&invariant_lines, t.line)
            {
                out.push(Violation {
                    rule: Rule::L1,
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "{}! in library code without a `// INVARIANT:` justification",
                        t.text
                    ),
                });
            }
        }

        // L2: allocation constructors in hot-path modules.
        if l2 {
            let hit: Option<(u32, String)> = if t.kind == TokKind::Ident
                && matches!(t.text, "Vec" | "String" | "Box" | "HashMap" | "HashSet" | "BTreeMap")
                && next(1).is_some_and(|n| n.is_punct(":"))
                && next(2).is_some_and(|n| n.is_punct(":"))
                && matches!(at(3), Some("new" | "from" | "with_capacity" | "default"))
            {
                let line = next(3).map_or(t.line, |n| n.line);
                Some((line, format!("{}::{}", t.text, at(3).unwrap_or_default())))
            } else if t.kind == TokKind::Ident
                && matches!(t.text, "vec" | "format")
                && next(1).is_some_and(|n| n.is_punct("!"))
            {
                Some((t.line, format!("{}!", t.text)))
            } else if t.is_punct(".")
                && matches!(at(1), Some("to_string" | "to_owned" | "to_vec" | "clone"))
                && at(2) == Some("(")
            {
                let line = next(1).map_or(t.line, |n| n.line);
                Some((line, format!(".{}()", at(1).unwrap_or_default())))
            } else {
                None
            };
            if let Some((line, what)) = hit {
                if !excused(&alloc_ok_lines, line) {
                    out.push(Violation {
                        rule: Rule::L2,
                        file: rel_path.to_string(),
                        line,
                        message: format!(
                            "{what} allocates in a `{HOT_PATH_MARKER}` module without `// ALLOC-OK:`"
                        ),
                    });
                }
            }
        }

        // L3: pub items need docs.
        if l3_docs && t.is_ident("pub") {
            // Restricted visibility (`pub(crate)`, `pub(super)`) is not part
            // of the public API; re-exports and module decls carry their docs
            // elsewhere (rustdoc inlines them / the module file's `//!`).
            let restricted = next(1).is_some_and(|n| n.is_punct("("));
            let item_kw = if restricted {
                // Skip to the matching `)` then read the keyword.
                let mut k = 2;
                let mut depth = 1;
                while depth > 0 && next(k).is_some() {
                    if next(k).is_some_and(|n| n.is_punct("(")) {
                        depth += 1;
                    } else if next(k).is_some_and(|n| n.is_punct(")")) {
                        depth -= 1;
                    }
                    k += 1;
                }
                at(k)
            } else {
                at(1)
            };
            if !restricted
                && !matches!(item_kw, Some("use" | "mod") | None)
                && !is_documented(&tokens, ti)
            {
                out.push(Violation {
                    rule: Rule::L3,
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "pub {} without a doc comment",
                        item_kw.unwrap_or("item")
                    ),
                });
            }
        }

        // L4: diagnostics macros have no place in library code.
        if t.kind == TokKind::Ident
            && matches!(t.text, "todo" | "dbg" | "eprintln")
            && next(1).is_some_and(|n| n.is_punct("!"))
        {
            out.push(Violation {
                rule: Rule::L4,
                file: rel_path.to_string(),
                line: t.line,
                message: format!("{}! in library code (move it to a bin or a test)", t.text),
            });
        }
    }
    (out, stats)
}

/// L3's crate-level half: does `lib.rs` still carry `#![forbid(unsafe_code)]`?
pub fn has_forbid_unsafe(src: &str) -> bool {
    let tokens = lex(src);
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_trivia()).collect();
    code.windows(7).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
    })
}

/// Does the file opt into L2 via `#![doc = "xylint: hot-path"]`?
fn has_hot_path_marker(tokens: &[Token<'_>]) -> bool {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_trivia()).collect();
    code.windows(6).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("doc")
            && w[4].is_punct("=")
            && w[5].kind == TokKind::Str
            && w[5].text.contains(HOT_PATH_MARKER)
    })
}

/// Walk backwards from the token at `ti` (a `pub`) over attribute groups to
/// find an outer doc comment or a `#[doc …]` attribute.
fn is_documented(tokens: &[Token<'_>], ti: usize) -> bool {
    let mut i = ti;
    loop {
        // Step to the previous non-plain-comment token.
        let Some(prev) = prev_significant(tokens, i) else { return false };
        match tokens[prev].kind {
            TokKind::OuterDoc => return true,
            TokKind::Punct if tokens[prev].text == "]" => {
                // Skip the attribute group `#[ … ]`; accept `#[doc(...)]`
                // or `#[doc = …]` as documentation.
                let mut depth = 1usize;
                let mut j = prev;
                let mut saw_doc = false;
                while depth > 0 && j > 0 {
                    j -= 1;
                    match tokens[j].kind {
                        TokKind::Punct if tokens[j].text == "]" => depth += 1,
                        TokKind::Punct if tokens[j].text == "[" => depth -= 1,
                        TokKind::Ident if tokens[j].text == "doc" => saw_doc = true,
                        _ => {}
                    }
                }
                if saw_doc {
                    return true;
                }
                // j is at `[`; the `#` sits directly before it.
                if j == 0 {
                    return false;
                }
                i = j - 1; // continue above the `#`
                if tokens[i].is_punct("#") && i > 0 {
                    // keep walking from before the '#'
                } else {
                    // Unexpected shape; be conservative and keep walking.
                }
            }
            _ => return false,
        }
    }
}

/// Index of the closest earlier token that is not a plain comment (doc
/// comments are significant for [`is_documented`]).
fn prev_significant(tokens: &[Token<'_>], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match tokens[j].kind {
            TokKind::LineComment | TokKind::BlockComment => continue,
            _ => return Some(j),
        }
    }
    None
}

/// For each code-token index, whether it sits inside a `#[cfg(test)]` item.
fn test_spans(tokens: &[Token<'_>], code: &[usize]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let get = |k: usize| code.get(k).map(|&j| &tokens[j]);
    let mut i = 0usize;
    while i < code.len() {
        if get(i).is_some_and(|t| t.is_punct("#"))
            && get(i + 1).is_some_and(|t| t.is_punct("["))
            && get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && get(i + 3).is_some_and(|t| t.is_punct("("))
            && get(i + 4).is_some_and(|t| t.is_ident("test"))
            && get(i + 5).is_some_and(|t| t.is_punct(")"))
            && get(i + 6).is_some_and(|t| t.is_punct("]"))
        {
            let attr_start = i;
            let mut j = i + 7;
            // Skip any further outer attributes on the same item.
            while get(j).is_some_and(|t| t.is_punct("#"))
                && get(j + 1).is_some_and(|t| t.is_punct("["))
            {
                let mut depth = 0usize;
                loop {
                    match get(j) {
                        Some(t) if t.is_punct("[") => depth += 1,
                        Some(t) if t.is_punct("]") => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        None => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
            // The item itself: ends at the first `;` or the matching `}` of
            // its first brace block, whichever comes first at depth 0.
            let mut brace_depth = 0usize;
            loop {
                match get(j) {
                    Some(t) if t.is_punct("{") => brace_depth += 1,
                    Some(t) if t.is_punct("}") => {
                        brace_depth = brace_depth.saturating_sub(1);
                        if brace_depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    Some(t) if t.is_punct(";") && brace_depth == 0 => {
                        j += 1;
                        break;
                    }
                    None => break,
                    _ => {}
                }
                j += 1;
            }
            for f in flags.iter_mut().take(j.min(code.len())).skip(attr_start) {
                *f = true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(crate_name: &str, src: &str) -> Vec<Violation> {
        lint_source(Some(crate_name), "src/x.rs", src).0
    }

    #[test]
    fn l1_unwrap_flagged_in_core_crate() {
        let v = lint("xydelta", "fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::L1);
    }

    #[test]
    fn l1_excused_by_invariant_same_line() {
        let v = lint(
            "xydelta",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // INVARIANT: caller checked",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l1_excused_by_invariant_preceding_line() {
        let v = lint(
            "xydelta",
            "fn f(x: Option<u8>) -> u8 {\n    // INVARIANT: caller checked\n    x.unwrap()\n}",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l1_not_applied_to_non_core_crate() {
        let v = lint("xysim", "fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert!(v.is_empty());
    }

    #[test]
    fn l1_panic_and_unreachable_flagged() {
        let v = lint("xydiff", "fn f() { panic!(\"boom\") }\nfn g() { unreachable!() }");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn l1_ignores_unwrap_or_variants() {
        let v = lint("xydelta", "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }");
        assert!(v.is_empty());
    }

    #[test]
    fn l1_ignores_strings_comments_and_tests() {
        let src = r#"
            // a comment mentioning .unwrap() is fine
            const S: &str = "also .unwrap() here";
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("fine in tests"); }
            }
        "#;
        let v = lint("xydelta", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let v = lint("xydelta", "#[cfg(not(test))]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn l2_flags_allocs_only_in_marked_modules() {
        let marked = "#![doc = \"xylint: hot-path\"]\nfn f() -> Vec<u8> { Vec::new() }";
        let unmarked = "fn f() -> Vec<u8> { Vec::new() }";
        assert_eq!(lint("xysim", marked).len(), 1);
        assert!(lint("xysim", unmarked).is_empty());
    }

    #[test]
    fn l2_alloc_ok_excuses() {
        let src = "#![doc = \"xylint: hot-path\"]\n\
                   fn f() -> Vec<u8> { Vec::new() } // ALLOC-OK: constructor, cold";
        assert!(lint("xysim", src).is_empty());
    }

    #[test]
    fn l2_catches_method_allocs_and_macros() {
        let src = "#![doc = \"xylint: hot-path\"]\n\
                   fn f(s: &str) -> String { format!(\"{}\", s.to_string()) }";
        let v = lint("xysim", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::L2));
    }

    #[test]
    fn l3_pub_without_doc_flagged_in_doc_crates() {
        let v = lint("xydiff", "pub fn undocumented() {}");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::L3);
    }

    #[test]
    fn l3_doc_comment_and_attrs_accepted() {
        let ok = "/// Documented.\n#[inline]\npub fn documented() {}";
        assert!(lint("xydiff", ok).is_empty());
        let ok2 = "#[doc = \"Documented.\"]\npub fn documented() {}";
        assert!(lint("xydiff", ok2).is_empty());
    }

    #[test]
    fn l3_skips_restricted_visibility_and_reexports() {
        let src = "pub(crate) fn helper() {}\npub use std::fmt;\n/// m\npub mod x;";
        assert!(lint("xydelta", src).is_empty());
        // Even an undocumented pub mod decl is fine: the module file's //! docs it.
        assert!(lint("xydelta", "pub mod y;").is_empty());
    }

    #[test]
    fn l3_not_applied_outside_doc_crates() {
        assert!(lint("xytree", "pub fn undocumented() {}").is_empty());
    }

    #[test]
    fn l4_diagnostics_flagged_everywhere() {
        let v = lint("xysim", "fn f() { dbg!(1); eprintln!(\"x\"); todo!() }");
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == Rule::L4));
    }

    #[test]
    fn l4_fine_in_tests() {
        let src = "#[cfg(test)]\nmod tests { fn f() { dbg!(1); } }";
        assert!(lint("xysim", src).is_empty());
    }

    #[test]
    fn forbid_unsafe_detection() {
        assert!(has_forbid_unsafe("//! docs\n#![forbid(unsafe_code)]\npub fn f() {}"));
        assert!(!has_forbid_unsafe("#![warn(missing_docs)]\npub fn f() {}"));
    }

    #[test]
    fn stats_count_annotations() {
        let src = "fn f() {}\n// INVARIANT: a\n// INVARIANT: b\n// ALLOC-OK: c\n";
        let (_, stats) = lint_source(Some("xydelta"), "src/x.rs", src);
        assert_eq!(stats.invariant_annotations, 2);
        assert_eq!(stats.alloc_ok_annotations, 1);
    }
}
