//! Fixed sample documents, including the paper's own running example.

/// The Figure 2 catalog, **old** version (§4):
/// a Digital Cameras category with a discounted product tx123 and a new
/// product zy456 at $799.
pub const FIGURE2_OLD: &str = "<Category>\
<Title>Digital Cameras</Title>\
<Discount><Product><Name>tx123</Name><Price>$499</Price></Product></Discount>\
<NewProducts><Product><Name>zy456</Name><Price>$799</Price></Product></NewProducts>\
</Category>";

/// The Figure 2 catalog, **new** version: tx123 is gone, zy456 moved into
/// Discount with its price updated to $699, and a new product abc at $899
/// appears under NewProducts.
pub const FIGURE2_NEW: &str = "<Category>\
<Title>Digital Cameras</Title>\
<Discount><Product><Name>zy456</Name><Price>$699</Price></Product></Discount>\
<NewProducts><Product><Name>abc</Name><Price>$899</Price></Product></NewProducts>\
</Category>";

/// A small catalog with a DTD-declared ID attribute (phase 1 material).
pub const CATALOG_WITH_IDS: &str = "<!DOCTYPE catalog [\
<!ATTLIST product sku ID #REQUIRED>\
<!ENTITY co \"Xyleme SA\">\
]>\
<catalog>\
<vendor>&co;</vendor>\
<product sku=\"A1\"><name>widget</name><price>$10</price></product>\
<product sku=\"B2\"><name>gadget</name><price>$25</price></product>\
<product sku=\"C3\"><name>gizmo</name><price>$40</price></product>\
</catalog>";

/// An RSS-like feed sample.
pub const FEED_SAMPLE: &str = "<feed>\
<title>Xyleme project news</title>\
<entry><title>Crawler milestone</title><date>2001-05-02</date>\
<summary>The crawler now loads millions of pages per day.</summary></entry>\
<entry><title>Diff module</title><date>2001-06-17</date>\
<summary>BULD matches subtrees bottom-up with lazy down propagation.</summary></entry>\
</feed>";

#[cfg(test)]
mod tests {
    use super::*;
    use xytree::Document;

    #[test]
    fn all_samples_parse() {
        for (name, xml) in [
            ("FIGURE2_OLD", FIGURE2_OLD),
            ("FIGURE2_NEW", FIGURE2_NEW),
            ("CATALOG_WITH_IDS", CATALOG_WITH_IDS),
            ("FEED_SAMPLE", FEED_SAMPLE),
        ] {
            Document::parse(xml).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        }
    }

    #[test]
    fn figure2_shapes() {
        let old = Document::parse(FIGURE2_OLD).unwrap();
        // Old version postfix count: 15 nodes + document = 16.
        assert_eq!(old.node_count(), 16);
        let new = Document::parse(FIGURE2_NEW).unwrap();
        assert_eq!(new.node_count(), 16);
    }

    #[test]
    fn catalog_dtd_is_live() {
        let d = Document::parse(CATALOG_WITH_IDS).unwrap();
        assert_eq!(d.id_attr_of("product"), Some("sku"));
        let root = d.root_element().unwrap();
        assert!(d.tree.deep_text(root).contains("Xyleme SA"));
    }
}
