//! The change simulator of §6.1.
//!
//! "The change simulator reads an XML document, and stores its nodes in
//! arrays. Then, based on some parameters (probabilities for each change
//! operations) the four types of simulated operations are created in three
//! phases: **[delete]** given a delete probability, we delete some nodes and
//! [their] entire subtree. **[update]** the remaining text nodes are then
//! updated (with original text data) based on their update probability.
//! **[insert/move]** we choose random nodes in the remaining element nodes
//! and insert a child to them … according to the type of node inserted, and
//! the move probability we do either insert data that had been deleted, e.g.
//! that corresponds to a move, or we insert 'original' data."
//!
//! Faithfulness notes:
//! - probabilities are **per node** ("because we focused on the structure of
//!   data, all probabilities are given per node");
//! - after the delete phase, update/insert probabilities are **recomputed to
//!   compensate** for the reduced node count;
//! - inserted elements **copy a tag from a sibling, cousin or ascendant**
//!   ("this is important … to preserve the distribution of labels");
//! - a text node is never inserted next to another text node ("or else both
//!   data will be merged in the parsing of the resulting document");
//! - the simulator's output is both the new version and "a delta
//!   representing the exact changes that occurred" — here obtained exactly,
//!   by tracking XIDs through the edits and taking the XID-matched diff.

use crate::words::counter_text;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xydelta::diff_by_xid::diff_by_xid;
use xydelta::{Delta, XidDocument};
use xytree::{NodeId, NodeKind};

/// Per-node operation probabilities.
#[derive(Debug, Clone)]
pub struct ChangeConfig {
    /// Probability that a node's subtree is deleted.
    pub p_delete: f64,
    /// Probability that a surviving text node is updated.
    pub p_update: f64,
    /// Probability that a surviving element receives an inserted child.
    pub p_insert: f64,
    /// Probability that a surviving element receives a *moved* child
    /// (re-inserted deleted data).
    pub p_move: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChangeConfig {
    fn default() -> Self {
        // The Figure 4 experiment: "the probabilities for each node to be
        // modified, deleted or have a child subtree inserted, or be moved
        // were set to 10 percent each."
        ChangeConfig { p_delete: 0.1, p_update: 0.1, p_insert: 0.1, p_move: 0.1, seed: 0 }
    }
}

impl ChangeConfig {
    /// Uniform probability for all four operations.
    pub fn uniform(p: f64, seed: u64) -> ChangeConfig {
        ChangeConfig { p_delete: p, p_update: p, p_insert: p, p_move: p, seed }
    }
}

/// What the simulator actually did (raw action counters, before the delta's
/// own canonical accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimActions {
    /// Subtrees detached in the delete phase (some may later be moved).
    pub detached_subtrees: usize,
    /// Text nodes rewritten.
    pub updated_texts: usize,
    /// Fresh subtrees inserted.
    pub inserted_subtrees: usize,
    /// Deleted subtrees re-inserted (= moves).
    pub moved_subtrees: usize,
}

/// Result of one simulation: the new version (sharing XIDs with the old one)
/// and the exact ("perfect") delta.
#[derive(Debug, Clone)]
pub struct SimulatedChange {
    /// The changed document; matched nodes carry the old version's XIDs.
    pub new_version: XidDocument,
    /// The exact delta old → new (the Figure 5 reference).
    pub perfect_delta: Delta,
    /// Raw action counters.
    pub actions: SimActions,
}

/// Run the three-phase simulator over `old`.
///
/// Probabilities outside `[0, 1]` (including NaN) are clamped into range
/// rather than panicking deep inside the RNG.
pub fn simulate(old: &XidDocument, cfg: &ChangeConfig) -> SimulatedChange {
    let clamp = |p: f64| if p.is_finite() { p.clamp(0.0, 1.0) } else { 0.0 };
    let cfg = ChangeConfig {
        p_delete: clamp(cfg.p_delete),
        p_update: clamp(cfg.p_update),
        p_insert: clamp(cfg.p_insert),
        p_move: clamp(cfg.p_move),
        seed: cfg.seed,
    };
    let cfg = &cfg;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut work = old.clone();
    let mut actions = SimActions::default();
    let mut text_counter = 0u64;

    let root = work.doc.tree.root();
    let root_element = work.doc.root_element();
    // "Stores its nodes in arrays."
    let all: Vec<NodeId> = work.doc.tree.descendants(root).skip(1).collect();
    let n_before = all.len().max(1);

    // --- Phase 1: deletes. ---
    let mut pool: Vec<NodeId> = Vec::new();
    for &n in &all {
        if Some(n) == root_element {
            continue; // never delete the document element
        }
        if !work.doc.tree.is_attached(n) {
            continue; // inside an already-deleted subtree
        }
        if rng.gen_bool(cfg.p_delete) {
            work.doc.tree.detach(n);
            pool.push(n);
            actions.detached_subtrees += 1;
        }
    }

    // "We recompute update and insert probabilities to compensate."
    let n_after = all.iter().filter(|&&n| work.doc.tree.is_attached(n)).count().max(1);
    let compensate = n_before as f64 / n_after as f64;
    let p_update = (cfg.p_update * compensate).min(1.0);
    let p_insert = (cfg.p_insert * compensate).min(1.0);
    let p_move = (cfg.p_move * compensate).min(1.0);

    // --- Phase 2: updates on remaining text nodes. ---
    for &n in &all {
        if !work.doc.tree.is_attached(n) {
            continue;
        }
        if let NodeKind::Text(_) = work.doc.tree.kind(n) {
            if rng.gen_bool(p_update) {
                let fresh = counter_text(&mut text_counter, &mut rng);
                if let NodeKind::Text(t) = work.doc.tree.kind_mut(n) {
                    *t = fresh;
                }
                actions.updated_texts += 1;
            }
        }
    }

    // --- Phase 3: inserts & moves on remaining element nodes. ---
    let p_im = (p_insert + p_move).min(1.0);
    let mut inserted_roots: Vec<NodeId> = Vec::new();
    for &n in &all {
        if !work.doc.tree.is_attached(n) || !work.doc.tree.kind(n).is_element() {
            continue;
        }
        if p_im <= 0.0 || !rng.gen_bool(p_im) {
            continue;
        }
        let want_move = !pool.is_empty() && rng.gen_bool(p_move / p_im);
        if want_move {
            let idx = rng.gen_range(0..pool.len());
            let sub = pool[idx];
            if let Some(pos) = safe_position(&work, n, sub, &mut rng) {
                pool.swap_remove(idx);
                work.doc.tree.insert_child_at(n, pos, sub);
                actions.moved_subtrees += 1;
                continue;
            }
            // No text-safe slot: fall through to a fresh insert.
        }
        insert_original(&mut work, n, &mut rng, &mut text_counter, &mut inserted_roots);
        actions.inserted_subtrees += 1;
    }

    // Fresh nodes need XIDs before the exact diff.
    for r in inserted_roots {
        work.assign_fresh_subtree(r);
    }
    // Unreused deleted material loses its identity.
    for n in pool {
        let nodes: Vec<NodeId> = work.doc.tree.post_order(n).collect();
        for m in nodes {
            work.clear_xid(m);
        }
    }

    let perfect_delta = diff_by_xid(old, &work);
    SimulatedChange { new_version: work, perfect_delta, actions }
}

/// A child index under `parent` where attaching `sub` cannot place two text
/// nodes side by side.
fn safe_position(
    work: &XidDocument,
    parent: NodeId,
    sub: NodeId,
    rng: &mut StdRng,
) -> Option<usize> {
    let t = &work.doc.tree;
    let count = t.children_count(parent);
    if !t.kind(sub).is_text() {
        return Some(rng.gen_range(0..=count));
    }
    let kids: Vec<NodeId> = t.children(parent).collect();
    let ok = |pos: usize| {
        let before_text = pos > 0 && t.kind(kids[pos - 1]).is_text();
        let after_text = pos < kids.len() && t.kind(kids[pos]).is_text();
        !before_text && !after_text
    };
    let start = rng.gen_range(0..=count);
    (0..=count).map(|off| (start + off) % (count + 1)).find(|&p| ok(p))
}

/// Insert "original" data under `parent`: a text node where the sibling
/// types allow it, otherwise an element whose tag is copied from a sibling,
/// cousin or ascendant.
fn insert_original(
    work: &mut XidDocument,
    parent: NodeId,
    rng: &mut StdRng,
    text_counter: &mut u64,
    inserted_roots: &mut Vec<NodeId>,
) {
    let make_text = rng.gen_bool(0.3);
    if make_text {
        let txt = counter_text(text_counter, rng);
        let node = work.doc.tree.new_text(txt);
        if let Some(pos) = safe_position(work, parent, node, rng) {
            work.doc.tree.insert_child_at(parent, pos, node);
            inserted_roots.push(node);
            return;
        }
        // No safe slot: degrade to an element insert below. The detached
        // text node stays orphaned in the arena, which is harmless.
    }
    let label = copy_label(work, parent, rng);
    let elem = work.doc.tree.new_element(label);
    let txt = counter_text(text_counter, rng);
    let t = work.doc.tree.new_text(txt);
    work.doc.tree.append_child(elem, t);
    let count = work.doc.tree.children_count(parent);
    let pos = rng.gen_range(0..=count);
    work.doc.tree.insert_child_at(parent, pos, elem);
    inserted_roots.push(elem);
}

/// "We try to copy the tag from one of its siblings, or cousin, or
/// ascendant; this is important … to preserve the distribution of labels."
fn copy_label(work: &XidDocument, parent: NodeId, rng: &mut StdRng) -> String {
    let t = &work.doc.tree;
    // Child element labels of the parent (future siblings of the insert).
    let sibs: Vec<&str> = t.children(parent).filter_map(|c| t.name(c)).collect();
    if !sibs.is_empty() {
        return sibs[rng.gen_range(0..sibs.len())].to_string();
    }
    // Cousins: children of the parent's siblings.
    if let Some(gp) = t.parent(parent) {
        let cousins: Vec<&str> = t
            .children(gp)
            .flat_map(|u| t.children(u))
            .filter_map(|c| t.name(c))
            .collect();
        if !cousins.is_empty() {
            return cousins[rng.gen_range(0..cousins.len())].to_string();
        }
    }
    // Ascendant (the parent's own label), finally a fallback.
    t.name(parent).unwrap_or("item").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgen::{generate, DocGenConfig, DocKind};

    fn base(nodes: usize, seed: u64) -> XidDocument {
        let doc = generate(&DocGenConfig {
            kind: DocKind::Catalog,
            target_nodes: nodes,
            seed,
            ..Default::default()
        });
        XidDocument::assign_initial(doc)
    }

    #[test]
    fn perfect_delta_transforms_old_into_new() {
        let old = base(600, 1);
        let sim = simulate(&old, &ChangeConfig::default());
        let mut replay = old.clone();
        sim.perfect_delta.apply_to(&mut replay).expect("perfect delta applies");
        assert_eq!(replay.doc.to_xml(), sim.new_version.doc.to_xml());
    }

    #[test]
    fn inverse_of_perfect_delta_restores_old() {
        let old = base(400, 2);
        let sim = simulate(&old, &ChangeConfig::default());
        let mut back = sim.new_version.clone();
        sim.perfect_delta.inverted().apply_to(&mut back).unwrap();
        assert_eq!(back.doc.to_xml(), old.doc.to_xml());
    }

    #[test]
    fn zero_probabilities_change_nothing() {
        let old = base(300, 3);
        let sim = simulate(&old, &ChangeConfig::uniform(0.0, 9));
        assert!(sim.perfect_delta.is_empty());
        assert_eq!(sim.new_version.doc.to_xml(), old.doc.to_xml());
        assert_eq!(sim.actions, SimActions::default());
    }

    #[test]
    fn deterministic_per_seed() {
        let old = base(300, 4);
        let a = simulate(&old, &ChangeConfig::uniform(0.1, 7));
        let b = simulate(&old, &ChangeConfig::uniform(0.1, 7));
        assert_eq!(a.new_version.doc.to_xml(), b.new_version.doc.to_xml());
        assert_eq!(a.actions, b.actions);
    }

    #[test]
    fn all_operation_kinds_appear_at_default_rates() {
        let old = base(1500, 5);
        let sim = simulate(&old, &ChangeConfig::default());
        let c = sim.perfect_delta.counts();
        assert!(c.deletes > 0, "no deletes: {c:?}");
        assert!(c.inserts > 0, "no inserts: {c:?}");
        assert!(c.updates > 0, "no updates: {c:?}");
        assert!(c.moves > 0, "no moves: {c:?}");
        assert!(sim.actions.moved_subtrees > 0);
    }

    #[test]
    fn higher_rates_mean_bigger_deltas() {
        let old = base(800, 6);
        let small = simulate(&old, &ChangeConfig::uniform(0.02, 1)).perfect_delta.size_bytes();
        let large = simulate(&old, &ChangeConfig::uniform(0.3, 1)).perfect_delta.size_bytes();
        assert!(large > small * 2, "rate 0.3 ({large} B) vs 0.02 ({small} B)");
    }

    #[test]
    fn new_version_reparses_to_itself() {
        // The text-adjacency rule guarantees serialize→parse is lossless.
        let old = base(700, 7);
        let sim = simulate(&old, &ChangeConfig::default());
        let xml = sim.new_version.doc.to_xml();
        let back = xytree::Document::parse(&xml).unwrap();
        assert_eq!(back.to_xml(), xml);
        assert_eq!(
            back.node_count(),
            sim.new_version.doc.node_count(),
            "no text nodes may merge on reparse"
        );
    }

    #[test]
    fn root_element_survives_heavy_deletion() {
        let old = base(300, 8);
        let sim = simulate(&old, &ChangeConfig { p_delete: 0.9, ..ChangeConfig::uniform(0.0, 3) });
        assert!(sim.new_version.doc.root_element().is_some());
    }

    #[test]
    fn move_only_configuration_yields_moves() {
        let old = base(500, 10);
        let cfg = ChangeConfig { p_delete: 0.08, p_update: 0.0, p_insert: 0.0, p_move: 0.3, seed: 4 };
        let sim = simulate(&old, &cfg);
        assert!(sim.actions.moved_subtrees > 0);
        assert!(sim.perfect_delta.counts().moves > 0);
    }

    #[test]
    fn label_distribution_is_roughly_preserved() {
        let old = base(1200, 11);
        let sim = simulate(&old, &ChangeConfig::default());
        let before = old.doc.stats();
        let after = sim.new_version.doc.stats();
        let (dom_label, _) = before.dominant_label().unwrap();
        assert!(
            after.label_histogram.contains_key(dom_label),
            "dominant label must survive"
        );
        // New labels may not be invented out of thin air.
        for label in after.label_histogram.keys() {
            assert!(
                before.label_histogram.contains_key(label),
                "label {label} appeared from nowhere"
            );
        }
    }

    #[test]
    fn validates_xid_invariants() {
        let old = base(600, 12);
        let sim = simulate(&old, &ChangeConfig::default());
        sim.new_version.validate().expect("XID indexes must stay consistent");
    }
}
