//! Deterministic text generation shared by the document generator and the
//! change simulator.

use rand::Rng;

const WORDS: &[&str] = &[
    "data", "warehouse", "version", "delta", "change", "catalog", "product",
    "digital", "camera", "price", "discount", "network", "service", "query",
    "index", "crawler", "document", "element", "subtree", "signature",
    "weight", "match", "order", "label", "content", "storage", "system",
    "module", "update", "monitor", "alpha", "beta", "gamma", "delta2",
    "orange", "violet", "crimson", "amber", "cobalt", "jade", "onyx",
    "quartz", "topaz", "zephyr", "harbor", "meadow", "summit", "valley",
];

/// `n` space-separated pseudo-random words.
pub fn words(rng: &mut impl Rng, n: usize) -> String {
    let mut s = String::with_capacity(n * 7);
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s
}

/// A sentence whose length is drawn from `min..=max` words.
pub fn sentence(rng: &mut impl Rng, min: usize, max: usize) -> String {
    let n = rng.gen_range(min..=max.max(min));
    words(rng, n)
}

/// "Original" replacement/insertion text carrying a counter, as the paper's
/// simulator does ("we can just insert any original text using counters") —
/// guaranteed never to collide with generated document content.
pub fn counter_text(counter: &mut u64, rng: &mut impl Rng) -> String {
    *counter += 1;
    format!("{} [fresh-{}]", sentence(rng, 2, 6), counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn words_are_deterministic_per_seed() {
        let a = words(&mut StdRng::seed_from_u64(7), 10);
        let b = words(&mut StdRng::seed_from_u64(7), 10);
        assert_eq!(a, b);
        assert_eq!(a.split(' ').count(), 10);
    }

    #[test]
    fn counter_text_is_unique() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = 0;
        let a = counter_text(&mut c, &mut rng);
        let b = counter_text(&mut c, &mut rng);
        assert_ne!(a, b);
        assert!(a.contains("[fresh-1]"));
        assert!(b.contains("[fresh-2]"));
    }

    #[test]
    fn sentence_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let s = sentence(&mut rng, 2, 5);
            let n = s.split(' ').count();
            assert!((2..=5).contains(&n));
        }
    }
}
