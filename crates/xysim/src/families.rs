//! Targeted change families beyond the paper's uniform simulator.
//!
//! The three-phase simulator of [`crate::change`] draws every operation
//! from one distribution; differential testing of the *matchers* needs
//! families that isolate a single axis of change:
//!
//! - [`shuffle_children`] permutes sibling order without touching content —
//!   the regime where an unordered matcher should beat an ordered one;
//! - [`attribute_churn`] mutates attribute sets in place — changes that
//!   every matcher must express purely as attribute operations.
//!
//! Both follow the simulator's contract: the result carries the new version
//! (sharing XIDs with the old one, so the perfect delta falls out of the
//! XID-matched diff) and never violates the reparse-lossless rule (two text
//! nodes are never made adjacent — "or else both data will be merged in the
//! parsing of the resulting document").

use crate::change::{SimActions, SimulatedChange};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xydelta::diff_by_xid::diff_by_xid;
use xydelta::XidDocument;
use xytree::{NodeId, NodeKind};

/// Configuration of [`shuffle_children`].
#[derive(Debug, Clone)]
pub struct ShuffleConfig {
    /// Probability that an element with at least two children has its
    /// child order permuted.
    pub p_shuffle: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ShuffleConfig {
    fn default() -> Self {
        ShuffleConfig { p_shuffle: 0.5, seed: 0 }
    }
}

/// Permute child order across the document without changing any content.
///
/// Every shuffled element keeps exactly the same child multiset; only the
/// order changes, so the perfect delta contains move operations and nothing
/// else. Permutations that would make two text nodes adjacent are redrawn a
/// few times and then skipped (preserving reparse-losslessness).
pub fn shuffle_children(old: &XidDocument, cfg: &ShuffleConfig) -> SimulatedChange {
    let p = if cfg.p_shuffle.is_finite() { cfg.p_shuffle.clamp(0.0, 1.0) } else { 0.0 };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut work = old.clone();
    let mut actions = SimActions::default();

    let root = work.doc.tree.root();
    let elements: Vec<NodeId> = work
        .doc
        .tree
        .descendants(root)
        .filter(|&n| work.doc.tree.kind(n).is_element() || n == root)
        .collect();
    for el in elements {
        let children: Vec<NodeId> = work.doc.tree.children(el).collect();
        if children.len() < 2 || !rng.gen_bool(p) {
            continue;
        }
        // Draw permutations until one is both non-identity and text-safe;
        // give up after a few tries (e.g. all-text children can never be
        // safely permuted).
        let mut order = children.clone();
        let mut ok = false;
        for _ in 0..8 {
            // Fisher–Yates.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let text_safe = !order
                .windows(2)
                .any(|w| {
                    work.doc.tree.kind(w[0]).is_text() && work.doc.tree.kind(w[1]).is_text()
                });
            if text_safe && order != children {
                ok = true;
                break;
            }
        }
        if !ok {
            continue;
        }
        for &c in &order {
            // Re-appending in permuted order rebuilds the sibling list;
            // XIDs ride on the (stable) node ids.
            work.doc.tree.detach(c);
        }
        for &c in &order {
            work.doc.tree.append_child(el, c);
        }
        actions.moved_subtrees += order.len();
    }

    let perfect_delta = diff_by_xid(old, &work);
    SimulatedChange { new_version: work, perfect_delta, actions }
}

/// Configuration of [`attribute_churn`].
#[derive(Debug, Clone)]
pub struct AttrChurnConfig {
    /// Probability that an existing attribute's value is rewritten.
    pub p_set: f64,
    /// Probability that an existing attribute is removed.
    pub p_remove: f64,
    /// Probability that an element receives a fresh attribute.
    pub p_add: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AttrChurnConfig {
    fn default() -> Self {
        AttrChurnConfig { p_set: 0.2, p_remove: 0.1, p_add: 0.1, seed: 0 }
    }
}

/// Mutate attribute sets in place: rewrite, remove, and add attributes on
/// the document's elements, touching nothing else.
///
/// Node identity is never disturbed, so the perfect delta consists purely
/// of attribute operations — the family that exercises every matcher's
/// attribute diffing on identical structure.
pub fn attribute_churn(old: &XidDocument, cfg: &AttrChurnConfig) -> SimulatedChange {
    let clamp = |p: f64| if p.is_finite() { p.clamp(0.0, 1.0) } else { 0.0 };
    let (p_set, p_remove, p_add) = (clamp(cfg.p_set), clamp(cfg.p_remove), clamp(cfg.p_add));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut work = old.clone();
    let mut actions = SimActions::default();
    let mut fresh = 0u64;

    let root = work.doc.tree.root();
    let elements: Vec<NodeId> =
        work.doc.tree.descendants(root).filter(|&n| work.doc.tree.kind(n).is_element()).collect();
    for el in elements {
        let names: Vec<String> = match work.doc.tree.kind(el) {
            NodeKind::Element(e) => e.attrs.iter().map(|a| a.name.as_str().to_string()).collect(),
            _ => continue,
        };
        for name in names {
            if rng.gen_bool(p_remove) {
                if let Some(e) = work.doc.tree.element_mut(el) {
                    e.remove_attr(&name);
                    actions.updated_texts += 1;
                }
            } else if rng.gen_bool(p_set) {
                fresh += 1;
                if let Some(e) = work.doc.tree.element_mut(el) {
                    e.set_attr(&name, format!("churned-{fresh}"));
                    actions.updated_texts += 1;
                }
            }
        }
        if rng.gen_bool(p_add) {
            fresh += 1;
            if let Some(e) = work.doc.tree.element_mut(el) {
                e.set_attr(format!("added{}", fresh % 7), format!("fresh-{fresh}"));
                actions.updated_texts += 1;
            }
        }
    }

    let perfect_delta = diff_by_xid(old, &work);
    SimulatedChange { new_version: work, perfect_delta, actions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgen::{generate, DocGenConfig, DocKind};

    fn base(seed: u64) -> XidDocument {
        let doc = generate(&DocGenConfig {
            kind: DocKind::Catalog,
            target_nodes: 300,
            seed,
            id_attributes: false,
        });
        XidDocument::assign_initial(doc)
    }

    #[test]
    fn shuffle_emits_moves_only() {
        for seed in 0..5u64 {
            let old = base(seed);
            let sim = shuffle_children(&old, &ShuffleConfig { p_shuffle: 0.8, seed });
            let c = sim.perfect_delta.counts();
            assert_eq!((c.deletes, c.inserts, c.updates, c.attr_ops), (0, 0, 0, 0), "seed {seed}");
            if sim.actions.moved_subtrees > 0 {
                assert!(c.moves > 0, "seed {seed}: shuffles must show up as moves");
            }
            let mut replay = old.clone();
            sim.perfect_delta.apply_to(&mut replay).unwrap();
            assert_eq!(replay.doc.to_xml(), sim.new_version.doc.to_xml(), "seed {seed}");
        }
    }

    #[test]
    fn shuffle_output_reparses_losslessly() {
        for seed in 0..5u64 {
            let old = base(seed);
            let sim = shuffle_children(&old, &ShuffleConfig { p_shuffle: 1.0, seed });
            let xml = sim.new_version.doc.to_xml();
            let reparsed = xytree::Document::parse(&xml).unwrap();
            assert_eq!(reparsed.to_xml(), xml, "seed {seed}");
        }
    }

    #[test]
    fn attr_churn_emits_attr_ops_only() {
        for seed in 0..5u64 {
            let old = base(seed);
            let sim = attribute_churn(&old, &AttrChurnConfig { seed, ..Default::default() });
            let c = sim.perfect_delta.counts();
            assert_eq!((c.deletes, c.inserts, c.updates, c.moves), (0, 0, 0, 0), "seed {seed}");
            if sim.actions.updated_texts > 0 {
                assert!(c.attr_ops > 0, "seed {seed}: churn must show up as attr ops");
            }
            let mut replay = old.clone();
            sim.perfect_delta.apply_to(&mut replay).unwrap();
            assert_eq!(replay.doc.to_xml(), sim.new_version.doc.to_xml(), "seed {seed}");
        }
    }

    #[test]
    fn zero_probability_is_identity() {
        let old = base(1);
        let s = shuffle_children(&old, &ShuffleConfig { p_shuffle: 0.0, seed: 1 });
        assert!(s.perfect_delta.is_empty());
        let a = attribute_churn(
            &old,
            &AttrChurnConfig { p_set: 0.0, p_remove: 0.0, p_add: 0.0, seed: 1 },
        );
        assert!(a.perfect_delta.is_empty());
    }
}
