//! Parameterized random XML documents.
//!
//! The performance experiment needs "arbitrary sized data" (§6.1); these
//! generators build documents with realistic XML shape: a small label
//! vocabulary reused heavily (the paper stresses that "many nodes may have
//! the same label"), record-oriented repetition (products in a catalog,
//! people in an address book), mixed short and long text nodes, and
//! optional DTD-declared ID attributes to exercise phase 1.

use crate::words::{sentence, words};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xytree::{Document, ElementBuilder};

/// Document family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocKind {
    /// Product catalog with categories, products, prices, long descriptions.
    Catalog,
    /// Address book: flat repetition of small records.
    AddressBook,
    /// RSS-like feed: entries with summaries and links.
    Feed,
    /// Random labels/branching — stress shape without record structure.
    Generic,
    /// Data-centric table: same-label rows of mostly-duplicate heavy cells
    /// plus one light distinctive key. The adversarial family for *ordered*
    /// matchers under permutation — heavy duplicate content is matched by
    /// position while the distinguishing key carries almost no weight —
    /// and the natural habitat of the unordered matcher.
    Grid,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct DocGenConfig {
    /// Document family.
    pub kind: DocKind,
    /// Approximate number of tree nodes to produce (within one record).
    pub target_nodes: usize,
    /// RNG seed (same seed ⇒ identical document).
    pub seed: u64,
    /// Emit a DOCTYPE declaring an ID attribute and stamp records with IDs
    /// (exercises BULD phase 1).
    pub id_attributes: bool,
}

impl Default for DocGenConfig {
    fn default() -> Self {
        DocGenConfig {
            kind: DocKind::Catalog,
            target_nodes: 1000,
            seed: 0,
            id_attributes: false,
        }
    }
}

/// The DTD every document of this family is valid against, as bare markup
/// declarations (feed them to `xytree::parse_dtd`). The record ID attribute
/// is declared `#IMPLIED` so documents generated with and without
/// `id_attributes` both validate. `Generic` has random shape and no schema.
pub fn dtd_for(kind: DocKind) -> Option<&'static str> {
    match kind {
        DocKind::Catalog => Some(
            "<!ELEMENT catalog (category*)>\
             <!ELEMENT category (title, product*)>\
             <!ELEMENT title (#PCDATA)>\
             <!ELEMENT product (name, price, maker, description, stock?)>\
             <!ELEMENT name (#PCDATA)>\
             <!ELEMENT price (#PCDATA)>\
             <!ELEMENT maker (#PCDATA)>\
             <!ELEMENT description (#PCDATA)>\
             <!ELEMENT stock (#PCDATA)>\
             <!ATTLIST product id ID #IMPLIED>",
        ),
        DocKind::AddressBook => Some(
            "<!ELEMENT addressbook (person*)>\
             <!ELEMENT person (name, email, address, phone?)>\
             <!ELEMENT name (#PCDATA)>\
             <!ELEMENT email (#PCDATA)>\
             <!ELEMENT address (street, city)>\
             <!ELEMENT street (#PCDATA)>\
             <!ELEMENT city (#PCDATA)>\
             <!ELEMENT phone (#PCDATA)>\
             <!ATTLIST person id ID #IMPLIED>",
        ),
        DocKind::Feed => Some(
            "<!ELEMENT feed (title, entry*)>\
             <!ELEMENT entry (title, date, summary, link*)>\
             <!ELEMENT title (#PCDATA)>\
             <!ELEMENT date (#PCDATA)>\
             <!ELEMENT summary (#PCDATA)>\
             <!ELEMENT link EMPTY>\
             <!ATTLIST link href CDATA #REQUIRED>",
        ),
        DocKind::Generic => None,
        DocKind::Grid => Some(
            "<!ELEMENT grid (row*)>\
             <!ELEMENT row (cell*, key)>\
             <!ELEMENT cell (#PCDATA)>\
             <!ELEMENT key (#PCDATA)>",
        ),
    }
}

/// Generate a document per `cfg`.
pub fn generate(cfg: &DocGenConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    match cfg.kind {
        DocKind::Catalog => catalog(cfg, &mut rng),
        DocKind::AddressBook => address_book(cfg, &mut rng),
        DocKind::Feed => feed(cfg, &mut rng),
        DocKind::Generic => generic(cfg, &mut rng),
        DocKind::Grid => grid(cfg, &mut rng),
    }
}

/// Parse helper: wrap a built root element (plus optional DTD) and reparse so
/// the resulting `Document` carries the DOCTYPE metadata.
fn with_dtd(root: ElementBuilder, dtd: Option<&str>) -> Document {
    match dtd {
        None => root.into_document(),
        Some(dtd) => {
            let body = root.into_document().to_xml();
            Document::parse(&format!("{dtd}{body}"))
                .expect("generated document must parse")
        }
    }
}

fn catalog(cfg: &DocGenConfig, rng: &mut StdRng) -> Document {
    // A product subtree is ~12 nodes; a category adds ~4.
    let mut produced = 4usize;
    let mut root = ElementBuilder::new("catalog");
    let mut product_id = 0usize;
    while produced < cfg.target_nodes {
        let mut cat = ElementBuilder::new("category")
            .child(ElementBuilder::new("title").text(sentence(rng, 1, 3)));
        produced += 4;
        let products = rng.gen_range(3..=8);
        for _ in 0..products {
            if produced >= cfg.target_nodes {
                break;
            }
            product_id += 1;
            let mut p = ElementBuilder::new("product");
            if cfg.id_attributes {
                p = p.attr("id", format!("p{product_id}"));
            }
            p = p
                .child(ElementBuilder::new("name").text(format!(
                    "{}-{}",
                    words(rng, 1),
                    rng.gen_range(100..999)
                )))
                .child(ElementBuilder::new("price").text(format!("${}", rng.gen_range(5..2000))))
                .child(ElementBuilder::new("maker").text(words(rng, 1)))
                .child(ElementBuilder::new("description").text(sentence(rng, 8, 30)));
            if rng.gen_bool(0.3) {
                p = p.child(ElementBuilder::new("stock").text(rng.gen_range(0..500).to_string()));
            }
            produced += 12;
            cat = cat.child(p);
        }
        root = root.child(cat);
    }
    let dtd = cfg
        .id_attributes
        .then_some("<!DOCTYPE catalog [<!ATTLIST product id ID #REQUIRED>]>");
    with_dtd(root, dtd)
}

fn address_book(cfg: &DocGenConfig, rng: &mut StdRng) -> Document {
    let mut produced = 2usize;
    let mut root = ElementBuilder::new("addressbook");
    let mut person_id = 0usize;
    while produced < cfg.target_nodes {
        person_id += 1;
        let mut p = ElementBuilder::new("person");
        if cfg.id_attributes {
            p = p.attr("id", format!("person{person_id}"));
        }
        let first = words(rng, 1);
        let last = words(rng, 1);
        p = p
            .child(ElementBuilder::new("name").text(format!("{first} {last}")))
            .child(ElementBuilder::new("email").text(format!("{first}.{last}@example.org")))
            .child(
                ElementBuilder::new("address")
                    .child(ElementBuilder::new("street").text(sentence(rng, 2, 4)))
                    .child(ElementBuilder::new("city").text(words(rng, 1))),
            );
        if rng.gen_bool(0.5) {
            p = p.child(
                ElementBuilder::new("phone").text(format!("+33-{}", rng.gen_range(100000..999999))),
            );
        }
        produced += 13;
        root = root.child(p);
    }
    let dtd = cfg
        .id_attributes
        .then_some("<!DOCTYPE addressbook [<!ATTLIST person id ID #REQUIRED>]>");
    with_dtd(root, dtd)
}

fn feed(cfg: &DocGenConfig, rng: &mut StdRng) -> Document {
    let mut produced = 5usize;
    let mut root = ElementBuilder::new("feed")
        .child(ElementBuilder::new("title").text(sentence(rng, 2, 5)));
    let mut day = 1u32;
    while produced < cfg.target_nodes {
        day += 1;
        let links = rng.gen_range(0..4);
        let mut e = ElementBuilder::new("entry")
            .child(ElementBuilder::new("title").text(sentence(rng, 3, 8)))
            .child(ElementBuilder::new("date").text(format!("2001-{:02}-{:02}", 1 + day / 28 % 12, 1 + day % 28)))
            .child(ElementBuilder::new("summary").text(sentence(rng, 15, 60)));
        for _ in 0..links {
            e = e.child(
                ElementBuilder::new("link")
                    .attr("href", format!("http://example.org/{}", words(rng, 1))),
            );
        }
        produced += 9 + links;
        root = root.child(e);
    }
    with_dtd(root, None)
}

fn generic(cfg: &DocGenConfig, rng: &mut StdRng) -> Document {
    const LABELS: &[&str] = &["node", "item", "group", "entry", "block", "part"];
    fn grow(rng: &mut StdRng, budget: &mut isize, depth: usize) -> ElementBuilder {
        let label = LABELS[rng.gen_range(0..LABELS.len())];
        let mut e = ElementBuilder::new(label);
        *budget -= 1;
        if depth >= 12 || *budget <= 0 {
            return e.text(words(rng, 2));
        }
        let kids = rng.gen_range(1..=5);
        for _ in 0..kids {
            if *budget <= 0 {
                break;
            }
            if rng.gen_bool(0.35) {
                *budget -= 1;
                e = e.text(sentence(rng, 1, 10));
            } else {
                e = e.child(grow(rng, budget, depth + 1));
            }
        }
        e
    }
    let mut budget = cfg.target_nodes as isize;
    let mut root = ElementBuilder::new("root");
    while budget > 0 {
        root = root.child(grow(rng, &mut budget, 1));
    }
    with_dtd(root, None)
}

fn grid(cfg: &DocGenConfig, rng: &mut StdRng) -> Document {
    // ~2 nodes per cell + 3 per row wrapper/key. Every row shares the same
    // heavy duplicate cells; only <key> distinguishes rows, and its text is
    // kept short so the distinctive content is as light as possible.
    let cells = 5usize;
    let row_nodes = 2 * cells + 3;
    let rows = (cfg.target_nodes.saturating_sub(1) / row_nodes).max(2);
    // One heavy payload reused verbatim in every cell of every row.
    let payload = sentence(rng, 18, 24);
    let mut root = ElementBuilder::new("grid");
    for r in 0..rows {
        let mut row = ElementBuilder::new("row");
        for _ in 0..cells {
            row = row.child(ElementBuilder::new("cell").text(payload.clone()));
        }
        row = row.child(ElementBuilder::new("key").text(format!("k{r}")));
        root = root.child(row);
    }
    with_dtd(root, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rows_share_heavy_cells() {
        let d = generate(&DocGenConfig { kind: DocKind::Grid, target_nodes: 300, seed: 7, ..Default::default() });
        let t = &d.tree;
        let mut cell_texts = std::collections::HashSet::new();
        let mut keys = std::collections::HashSet::new();
        for n in t.descendants(t.root()) {
            match t.name(n) {
                Some("cell") => {
                    cell_texts.insert(t.deep_text(n));
                }
                Some("key") => {
                    assert!(keys.insert(t.deep_text(n)), "keys must be distinct");
                }
                _ => {}
            }
        }
        assert_eq!(cell_texts.len(), 1, "all cells duplicate one heavy payload");
        assert!(keys.len() >= 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DocGenConfig { target_nodes: 300, seed: 9, ..Default::default() };
        assert_eq!(generate(&cfg).to_xml(), generate(&cfg).to_xml());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DocGenConfig { seed: 1, ..Default::default() });
        let b = generate(&DocGenConfig { seed: 2, ..Default::default() });
        assert_ne!(a.to_xml(), b.to_xml());
    }

    #[test]
    fn node_budget_is_respected_roughly() {
        for kind in [DocKind::Catalog, DocKind::AddressBook, DocKind::Feed, DocKind::Generic, DocKind::Grid] {
            for target in [100usize, 1000, 5000] {
                let d = generate(&DocGenConfig { kind, target_nodes: target, seed: 5, ..Default::default() });
                let n = d.node_count();
                assert!(
                    n >= target / 2 && n <= target * 2 + 40,
                    "{kind:?} target {target} produced {n}"
                );
            }
        }
    }

    #[test]
    fn id_attributes_come_with_dtd() {
        let d = generate(&DocGenConfig {
            kind: DocKind::Catalog,
            target_nodes: 200,
            id_attributes: true,
            seed: 3,
        });
        assert_eq!(d.id_attr_of("product"), Some("id"));
        // Every product carries a distinct id.
        let t = &d.tree;
        let mut seen = std::collections::HashSet::new();
        let mut products = 0;
        for n in t.descendants(t.root()) {
            if t.name(n) == Some("product") {
                products += 1;
                let id = t.attr(n, "id").expect("product without id");
                assert!(seen.insert(id.to_string()), "duplicate product id {id}");
            }
        }
        assert!(products > 3);
    }

    #[test]
    fn generated_documents_reparse() {
        for kind in [DocKind::Catalog, DocKind::AddressBook, DocKind::Feed, DocKind::Generic, DocKind::Grid] {
            let d = generate(&DocGenConfig { kind, target_nodes: 400, seed: 11, ..Default::default() });
            let xml = d.to_xml();
            let back = Document::parse(&xml).unwrap();
            assert_eq!(back.to_xml(), xml, "{kind:?} must round-trip");
        }
    }

    #[test]
    fn labels_repeat_heavily() {
        // "Many nodes may have the same label" — the premise of the
        // signature-based candidate machinery.
        let d = generate(&DocGenConfig { target_nodes: 2000, seed: 4, ..Default::default() });
        let stats = d.stats();
        let (_, count) = stats.dominant_label().unwrap();
        assert!(count > 50, "dominant label should repeat, got {count}");
    }
}
