//! Synthetic workloads for the XyDiff experiments.
//!
//! The paper's evaluation (§6) runs on (a) simulated changes over XML
//! documents — "we needed to be able to control the changes on a document
//! based on parameters of interest such as deletion rate. To do that, we
//! built a change simulator" — and (b) XML snapshots of web sites ("we
//! implemented a tool that represents a snapshot of a portion of the web as
//! a set of XML documents"). The original web corpus is not available, so
//! this crate synthesizes documents matching the statistics the paper
//! reports (average web XML ≈ 20 KB; site-metadata files of ~5 MB), per the
//! substitution policy in DESIGN.md §4.
//!
//! - [`docgen`] — parameterized random documents (catalogs, address books,
//!   feeds, generic trees) of controllable size;
//! - [`change`] — the three-phase change simulator of §6.1, emitting the
//!   new version *and* the "perfect" delta (via shared XIDs);
//! - [`websnap`] — site-metadata snapshots à la the INRIA experiment (§6.2);
//! - [`corpus`] — small fixed documents, including the paper's Figure 2
//!   catalog example, for tests and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod change;
pub mod corpus;
pub mod docgen;
pub mod families;
pub mod websnap;
mod words;

pub use change::{simulate, ChangeConfig, SimulatedChange};
pub use docgen::{dtd_for, generate, DocGenConfig, DocKind};
pub use families::{attribute_churn, shuffle_children, AttrChurnConfig, ShuffleConfig};
pub use websnap::{evolve_site, site_snapshot, SiteConfig};
