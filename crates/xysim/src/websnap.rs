//! Web-site snapshots as XML (§6.2).
//!
//! "We implemented a tool that represents a snapshot of a portion of the web
//! as a set of XML documents. Given two such snapshots, our diff computes
//! what has changed in the time interval. For instance, using the site
//! www.inria.fr that is about fourteen thousand pages, the XML document is
//! about five million bytes."
//!
//! We synthesize site-metadata documents with that shape: one `<page>` entry
//! per URL carrying title, size, last-modified date and outgoing links
//! (~350 bytes/page, matching the paper's 14k pages ≈ 5 MB), plus an
//! evolution step modeling a week of site churn: pages change size/date,
//! some are removed, new ones appear, and sections get reorganized.

use crate::change::{simulate, ChangeConfig, SimulatedChange};
use crate::words::{sentence, words};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xydelta::XidDocument;
use xytree::{Document, ElementBuilder};

/// Snapshot generator configuration.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// Number of `<page>` entries.
    pub pages: usize,
    /// Sections (top-level directories) the pages are spread over.
    pub sections: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig { pages: 1000, sections: 12, seed: 0 }
    }
}

/// Generate a site snapshot document.
pub fn site_snapshot(cfg: &SiteConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut root = ElementBuilder::new("site").attr("host", "www.example.org");
    let sections = cfg.sections.max(1);
    let mut page_no = 0usize;
    for s in 0..sections {
        let sec_name = format!("{}-{s}", words(&mut rng, 1));
        let mut sec = ElementBuilder::new("section").attr("path", format!("/{sec_name}"));
        let in_this = (cfg.pages / sections).max(1);
        for _ in 0..in_this {
            page_no += 1;
            if page_no > cfg.pages {
                break;
            }
            let mut links = ElementBuilder::new("outlinks");
            for _ in 0..rng.gen_range(0..5) {
                links = links.child(ElementBuilder::new("link").attr(
                    "href",
                    format!("/{}/{}.html", words(&mut rng, 1), words(&mut rng, 1)),
                ));
            }
            sec = sec.child(
                ElementBuilder::new("page")
                    .attr("url", format!("/{sec_name}/page-{page_no}.html"))
                    .child(ElementBuilder::new("title").text(sentence(&mut rng, 2, 7)))
                    .child(ElementBuilder::new("bytes").text(rng.gen_range(500..90_000).to_string()))
                    .child(ElementBuilder::new("lastmod").text(format!(
                        "2001-{:02}-{:02}",
                        rng.gen_range(1..=12),
                        rng.gen_range(1..=28)
                    )))
                    .child(links),
            );
        }
        root = root.child(sec);
    }
    root.into_document()
}

/// Evolve a snapshot by one crawl interval: `churn` is the per-node change
/// probability (weekly site churn is low; 0.01–0.05 is realistic). Moves are
/// included — section reorganizations are exactly the "moves of big
/// subtrees" the paper says Unix diff pays dearly for.
pub fn evolve_site(old: &XidDocument, churn: f64, seed: u64) -> SimulatedChange {
    let cfg = ChangeConfig {
        p_delete: churn,
        p_update: churn * 2.0, // dates/sizes change more often than structure
        p_insert: churn,
        p_move: churn / 2.0,
        seed,
    };
    simulate(old, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_count_matches_config() {
        let doc = site_snapshot(&SiteConfig { pages: 120, sections: 6, seed: 1 });
        let t = &doc.tree;
        let pages = t
            .descendants(t.root())
            .filter(|&n| t.name(n) == Some("page"))
            .count();
        assert_eq!(pages, 120);
    }

    #[test]
    fn five_megabyte_snapshot_shape() {
        // The INRIA experiment: ~14k pages ≈ 5 MB. Use 2k pages here and
        // check bytes-per-page lands in the right regime (≈350 B/page).
        let doc = site_snapshot(&SiteConfig { pages: 2000, sections: 20, seed: 2 });
        let bytes = doc.to_xml().len();
        let per_page = bytes / 2000;
        assert!(
            (150..700).contains(&per_page),
            "per-page byte count {per_page} out of the INRIA-like range"
        );
    }

    #[test]
    fn snapshot_is_deterministic() {
        let a = site_snapshot(&SiteConfig { pages: 50, sections: 4, seed: 3 });
        let b = site_snapshot(&SiteConfig { pages: 50, sections: 4, seed: 3 });
        assert_eq!(a.to_xml(), b.to_xml());
    }

    #[test]
    fn evolution_produces_applyable_delta() {
        let old = XidDocument::assign_initial(site_snapshot(&SiteConfig {
            pages: 200,
            sections: 8,
            seed: 4,
        }));
        let evolved = evolve_site(&old, 0.03, 99);
        assert!(!evolved.perfect_delta.is_empty());
        let mut replay = old.clone();
        evolved.perfect_delta.apply_to(&mut replay).unwrap();
        assert_eq!(replay.doc.to_xml(), evolved.new_version.doc.to_xml());
    }

    #[test]
    fn low_churn_changes_few_pages() {
        let old = XidDocument::assign_initial(site_snapshot(&SiteConfig {
            pages: 500,
            sections: 10,
            seed: 5,
        }));
        let evolved = evolve_site(&old, 0.01, 7);
        let delta_bytes = evolved.perfect_delta.size_bytes();
        let doc_bytes = old.doc.to_xml().len();
        assert!(
            delta_bytes < doc_bytes / 2,
            "weekly churn delta ({delta_bytes} B) should be well below the snapshot ({doc_bytes} B)"
        );
    }
}
