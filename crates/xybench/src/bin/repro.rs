//! Regenerate the paper's figures. Run with:
//!
//! ```text
//! cargo run -p xybench --release --bin repro -- all
//! cargo run -p xybench --release --bin repro -- fig4 fig5 fig6 scaling site ablation
//! ```
//!
//! Each subcommand prints one table; EXPERIMENTS.md records a reference run
//! and compares the shapes with the paper's claims.

use std::time::Instant;
use xybench::{fmt_bytes, fmt_dur, log_log_slope, pair_at_rate};
use xydelta::XidDocument;
use xydiff::{diff, Differ, DiffOptions};
use xysim::{evolve_site, site_snapshot, SiteConfig};
use xytree::{Document, SerializeOptions};

const KNOWN: &[&str] = &[
    "all", "fig4", "fig5", "fig6", "scaling", "site", "ablation", "index", "matchers", "modes",
    "ingest", "diff", "serve", "recover",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(bad) = args.iter().find(|a| !KNOWN.contains(&a.as_str())) {
        eprintln!("unknown experiment {bad:?}; expected one of: {}", KNOWN.join(", "));
        std::process::exit(2);
    }
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| run_all || args.iter().any(|a| a == name);

    if want("fig4") {
        fig4();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig6") {
        fig6();
    }
    if want("scaling") {
        scaling();
    }
    if want("site") {
        site();
    }
    if want("ablation") {
        ablation();
    }
    if want("index") {
        index_maintenance();
    }
    if want("matchers") {
        matchers();
    }
    if want("modes") {
        modes();
    }
    if want("ingest") {
        ingest();
    }
    if want("diff") {
        diff_bench();
    }
    if want("serve") {
        serve_bench();
    }
    if want("recover") {
        recover();
    }
}

/// E14 (extension) — WAL durability and crash recovery on a hot key: one
/// document with thousands of versions, each delta logged the way the
/// server's ack path logs it. Measures append+fsync throughput, recovery
/// (scan + replay into a cold warehouse), and the cost of "querying the
/// past" before vs after chain compaction. Writes `BENCH_recover.json`;
/// `XYBENCH_GATE=1` fails the run if compaction leaves any version more
/// than the configured hop bound away from an anchor.
fn recover() {
    use xywal::{Record, Wal, WalConfig};
    use xywarehouse::{replay, Repository};

    println!("## Recover — WAL append, crash replay, chain compaction (xywal)\n");
    let fast = xybench::fast_mode();
    let versions = if fast { 1_500usize } else { 10_000 };
    let chain_max = 64usize;
    // A hot document that stays the same size forever: every version
    // rewrites a few item values in place, so deltas are small and a
    // 10k-deep chain does not compound document growth the way the
    // simulator's insert/delete mix would.
    let key = "hot".to_string();
    let snaps: Vec<String> = {
        let mut items: Vec<u64> = (0..40).map(|i| i as u64).collect();
        (0..versions)
            .map(|v| {
                if v > 0 {
                    for k in 0..3 {
                        let idx = (v * 7 + k * 13) % items.len();
                        items[idx] = items[idx].wrapping_mul(31).wrapping_add(v as u64);
                    }
                }
                let body: String = items
                    .iter()
                    .enumerate()
                    .map(|(i, val)| {
                        format!("<item id=\"i{i}\"><name>part-{i}</name><val>{val}</val></item>")
                    })
                    .collect();
                format!("<catalog>{body}</catalog>")
            })
            .collect()
    };
    let key = &key;
    println!(
        "corpus: 1 hot document x {versions} versions (~{} each), hop bound {chain_max}\n",
        fmt_bytes(snaps[0].len()),
    );

    let dir = std::env::temp_dir().join(format!("xydiff-bench-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create wal dir");

    // Ingest + log: diff each snapshot against the chain, append the
    // completed delta before acking — the server's write path.
    let reference = Repository::new();
    let (wal, _) = Wal::open(&WalConfig::new(&dir)).expect("open wal");
    let t = Instant::now();
    for xml in &snaps {
        let first = reference.version_count(key) == 0;
        let out = reference.load_version(key, xml).expect("ingest");
        let record = if first {
            Record::Init { key: key.clone(), xml: Document::parse(xml).expect("snapshot").to_xml() }
        } else {
            Record::Delta {
                key: key.clone(),
                version: out.version as u64,
                delta_xml: xydelta::xml_io::delta_to_xml(&out.delta),
            }
        };
        wal.append(&record).expect("append");
    }
    let ingest_wall = t.elapsed();
    let stats = wal.stats();
    drop(wal); // crash: no snapshot was taken, the log is all there is

    // Recovery: re-open (scan + checksum every frame), then replay the
    // whole log into a cold warehouse.
    let t = Instant::now();
    let (wal, recovery) = Wal::open(&WalConfig::new(&dir)).expect("reopen wal");
    let scan_wall = t.elapsed();
    drop(wal);
    assert_eq!(recovery.records.len(), versions, "every acked record must survive");
    let shards = vec![Repository::new()];
    let t = Instant::now();
    let rstats = replay::apply_records(&recovery.records, &shards, |_| 0).expect("replay");
    let replay_wall = t.elapsed();
    assert_eq!(rstats.total(), versions);
    let repo = &shards[0];
    assert_eq!(repo.version_count(key), versions);

    // Querying the past before/after compaction: the same interior
    // version, first on the raw chain (one anchor: the latest version),
    // then with checkpoints every `chain_max` versions.
    let probe = versions / 2 + chain_max / 2;
    let hops_before = repo.chain_hops(key).unwrap_or(0);
    let t = Instant::now();
    let probe_before = repo.version_xml(key, probe).expect("probe version");
    let reconstruct_before = t.elapsed();

    let t = Instant::now();
    let compacted = repo.compact_chains(chain_max);
    let compact_wall = t.elapsed();
    assert_eq!(compacted, 1, "exactly the hot chain gets compacted");
    let hops_after = repo.chain_hops(key).unwrap_or(usize::MAX);
    let checkpoints = repo.chain_checkpoints(key).unwrap_or(0);
    let t = Instant::now();
    let probe_after = repo.version_xml(key, probe).expect("probe version after");
    let reconstruct_after = t.elapsed();
    assert_eq!(probe_before, probe_after, "compaction must not change history");
    assert_eq!(
        probe_after,
        reference.version_xml(key, probe).expect("reference probe"),
        "replayed history must match the pre-crash reference",
    );

    let replay_rate = versions as f64 / replay_wall.as_secs_f64();
    println!("| phase | wall | detail |");
    println!("|---|---:|---|");
    println!(
        "| ingest + log | {} | {} records, {} appended, {} fsyncs |",
        fmt_dur(ingest_wall),
        stats.appends,
        fmt_bytes(stats.appended_bytes as usize),
        stats.fsyncs,
    );
    println!("| recovery scan | {} | checksum every frame |", fmt_dur(scan_wall));
    println!(
        "| replay | {} | {replay_rate:.0} versions/sec into a cold warehouse |",
        fmt_dur(replay_wall),
    );
    println!(
        "| compaction | {} | {checkpoints} checkpoints, max hops {hops_before} -> {hops_after} |",
        fmt_dur(compact_wall),
    );
    println!(
        "| query v{probe} | {} -> {} | before -> after compaction |",
        fmt_dur(reconstruct_before),
        fmt_dur(reconstruct_after),
    );

    let json = format!(
        "{{\n  \"bench\": \"recover\",\n  \"mode\": \"{mode}\",\n  \"versions\": {versions},\n  \
         \"chain_max\": {chain_max},\n  \"wal_bytes\": {wal_bytes},\n  \"fsyncs\": {fsyncs},\n  \
         \"ingest_wall_secs\": {ingest:.4},\n  \"scan_wall_secs\": {scan:.4},\n  \
         \"replay_wall_secs\": {rep:.4},\n  \"replay_versions_per_sec\": {replay_rate:.2},\n  \
         \"compact_wall_secs\": {compact:.4},\n  \"checkpoints\": {checkpoints},\n  \
         \"hops_before\": {hops_before},\n  \"hops_after\": {hops_after},\n  \
         \"reconstruct_mid_before_micros\": {rb},\n  \"reconstruct_mid_after_micros\": {ra},\n  \
         \"peak_rss_bytes\": {rss}\n}}\n",
        mode = if fast { "fast" } else { "full" },
        wal_bytes = stats.appended_bytes,
        fsyncs = stats.fsyncs,
        ingest = ingest_wall.as_secs_f64(),
        scan = scan_wall.as_secs_f64(),
        rep = replay_wall.as_secs_f64(),
        compact = compact_wall.as_secs_f64(),
        rb = reconstruct_before.as_micros(),
        ra = reconstruct_after.as_micros(),
        rss = xybench::peak_rss_bytes().unwrap_or(0),
    );
    let path = xybench::bench_out_path("BENCH_recover.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| eprintln!("cannot write {path:?}: {e}"));
    println!("\nwrote {}\n", path.display());
    let _ = std::fs::remove_dir_all(&dir);

    if std::env::var_os("XYBENCH_GATE").is_some() {
        println!("recover gate: max hops {hops_after} vs bound {chain_max}");
        if hops_after > chain_max {
            eprintln!("recover gate FAILED: compaction left a {hops_after}-hop reconstruction");
            std::process::exit(1);
        }
    }
}

/// E13 (extension) — loopback HTTP load: concurrent clients driving the
/// `xynet` front over real TCP, 1 client vs N, keep-alive connections.
/// Writes `BENCH_serve.json` for the CI smoke job.
fn serve_bench() {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::Arc;
    use xynet::{NetConfig, NetServer};
    use xyserve::ServeConfig;

    /// Read one `Content-Length`-framed response off a keep-alive stream.
    fn read_response(stream: &mut TcpStream) -> (u16, usize) {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            let n = stream.read(&mut chunk).expect("read response head");
            assert!(n > 0, "server closed mid-response");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let status: u16 =
            head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status line");
        let len: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string))
            .and_then(|v| v.trim().parse().ok())
            .expect("Content-Length");
        while buf.len() < head_end + len {
            let n = stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "server closed mid-body");
            buf.extend_from_slice(&chunk[..n]);
        }
        (status, len)
    }

    println!("## Serve — loopback HTTP ingest through the xynet front (xyserve behind)\n");
    let fast = xybench::fast_mode();
    let (docs, versions, bytes) = if fast { (8usize, 4usize, 4_000) } else { (16, 6, 12_000) };
    let corpus = Arc::new(xybench::versioned_corpus(docs, versions, bytes, 61));
    let snapshots: usize = corpus.iter().map(|(_, v)| v.len()).sum();
    println!(
        "corpus: {docs} documents x {versions} versions = {snapshots} snapshots (~{} each)\n",
        fmt_bytes(corpus[0].1[0].len()),
    );
    println!("| clients | idle conns | wall time | docs/sec | speedup | shed (503) | req p99 | ingest-wait p99 |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|");

    // The idle column is the reactor's whole point: the same single loop
    // thread carries hundreds of parked keep-alive connections while the
    // active clients ingest at full rate.
    let idle_pool = if fast { 256usize } else { 1000 };
    let mut base_rate = None;
    let mut json_rows: Vec<String> = Vec::new();
    for (clients, idle_conns) in [(1usize, 0usize), (4, 0), (4, idle_pool)] {
        let server = NetServer::start(
            NetConfig::new()
                .with_http_workers(clients.max(2))
                .with_max_connections(idle_pool + 64)
                .with_shed_connections(idle_pool + 64)
                .with_idle_timeout(std::time::Duration::from_secs(300)),
            ServeConfig::new()
                .with_workers(4)
                .unwrap()
                .with_queue_capacity(64)
                .unwrap()
                .with_shards(8)
                .unwrap(),
        )
        .expect("bind loopback");
        let addr = server.local_addr();

        // Park the idle pool first: each completes one request so it is
        // registered with the reactor, then just holds its socket open.
        let idle: Vec<TcpStream> = (0..idle_conns)
            .map(|_| {
                let mut stream = TcpStream::connect(addr).expect("connect idle");
                stream
                    .write_all(b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n")
                    .expect("idle request");
                let (status, _) = read_response(&mut stream);
                assert_eq!(status, 200, "idle connection setup failed");
                stream
            })
            .collect();

        let t = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let corpus = Arc::clone(&corpus);
                std::thread::spawn(move || {
                    // One keep-alive connection per client; each client owns
                    // a disjoint document slice so per-key order holds.
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    let mut shed = 0u64;
                    for (key, versions) in corpus.iter().skip(c).step_by(clients) {
                        for xml in versions {
                            loop {
                                let raw = format!(
                                    "POST /ingest/{key} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{xml}",
                                    xml.len(),
                                );
                                stream.write_all(raw.as_bytes()).expect("write request");
                                let (status, _) = read_response(&mut stream);
                                match status {
                                    200 => break,
                                    503 => {
                                        shed += 1;
                                        std::thread::sleep(std::time::Duration::from_millis(1));
                                    }
                                    other => panic!("{key}: unexpected status {other}"),
                                }
                            }
                        }
                    }
                    shed
                })
            })
            .collect();
        let shed: u64 = handles.into_iter().map(|h| h.join().expect("client thread")).sum();
        let wall = t.elapsed();

        let rate = snapshots as f64 / wall.as_secs_f64();
        let speedup = rate / *base_rate.get_or_insert(rate);
        let http = server.http_metrics();
        let req_p99 = http.request_time.quantile_bound_micros(0.99);
        let wait_p99 = http.ingest_wait_time.quantile_bound_micros(0.99);
        println!(
            "| {clients} | {idle_conns} | {} | {rate:.0} | {speedup:.2}x | {shed} | {req_p99} µs | {wait_p99} µs |",
            fmt_dur(wall),
        );
        json_rows.push(format!(
            "    {{ \"clients\": {clients}, \"idle_conns\": {idle_conns}, \"wall_secs\": {:.4}, \
             \"docs_per_sec\": {rate:.2}, \
             \"speedup\": {speedup:.3}, \"shed_503\": {shed}, \"request_p99_micros\": {req_p99}, \
             \"ingest_wait_p99_micros\": {wait_p99} }}",
            wall.as_secs_f64(),
        ));

        drop(idle);
        let report = server.shutdown();
        assert!(report.ingest.is_balanced(), "unbalanced accounting: {report:?}");
        assert_eq!(report.ingest.succeeded as usize, snapshots);
        assert_eq!(report.ingest.dead_lettered, 0);
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{}\",\n  \"snapshots\": {snapshots},\n  \
         \"runs\": [\n{}\n  ],\n  \"peak_rss_bytes\": {}\n}}\n",
        if fast { "fast" } else { "full" },
        json_rows.join(",\n"),
        xybench::peak_rss_bytes().unwrap_or(0),
    );
    let path = xybench::bench_out_path("BENCH_serve.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| eprintln!("cannot write {path:?}: {e}"));
    println!("wrote {}\n", path.display());
}

/// E12 (extension) — diff hot-path throughput on the xysim corpus, with a
/// machine-readable `BENCH_diff.json` next to the human table. Fast mode
/// (`XYBENCH_FAST=1`) shrinks the corpus for the CI perf-smoke job;
/// `XYBENCH_GATE=1` compares docs/sec against `bench_baseline.json` and
/// exits non-zero on a >2x regression.
fn diff_bench() {
    use xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};

    println!("## Diff throughput — hot path on the xysim corpus\n");
    let fast = xybench::fast_mode();
    let (sizes, rounds): (&[usize], usize) =
        if fast { (&[20_000], 3) } else { (&[20_000, 100_000, 400_000], 5) };
    let kinds = [
        (DocKind::Catalog, "catalog"),
        (DocKind::AddressBook, "addressbook"),
        (DocKind::Feed, "feed"),
        (DocKind::Generic, "generic"),
    ];

    struct Case {
        old: XidDocument,
        new: Document,
        bytes: usize,
    }
    let mut cases = Vec::new();
    for &bytes in sizes {
        for (i, &(kind, _)) in kinds.iter().enumerate() {
            for (j, &rate) in [0.05f64, 0.2].iter().enumerate() {
                let seed = 1000 + (bytes + i * 7 + j) as u64;
                let doc = generate(&DocGenConfig {
                    kind,
                    target_nodes: (bytes / xybench::CATALOG_BYTES_PER_NODE).max(16),
                    seed,
                    id_attributes: matches!(kind, DocKind::Catalog),
                });
                let old = XidDocument::assign_initial(doc);
                let sim = simulate(&old, &ChangeConfig::uniform(rate, seed ^ 0x5eed));
                let total = old.doc.to_xml().len() + sim.new_version.doc.to_xml().len();
                cases.push(Case { old, new: sim.new_version.doc.clone(), bytes: total });
            }
        }
    }
    let bytes_per_round: usize = cases.iter().map(|c| c.bytes).sum();

    // Intra-document diff parallelism: XYBENCH_DIFF_THREADS, defaulting to
    // the host's parallelism capped at 8 (1 ⇒ strictly serial pipeline).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let diff_threads = std::env::var("XYBENCH_DIFF_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| cores.min(8))
        .max(1);

    // One differ (options + scratch) reused across the whole run, as a
    // long-lived ingest worker would hold it: zero-copy (borrowed) payload
    // capture, plus the scheduler-backed runner when parallelism is on. The
    // warmup round (untimed) also warms its scratch capacity, so the timed
    // rounds measure the allocation-free steady state.
    let mut differ = Differ::new().with_capture(xydelta::CaptureMode::Borrowed);
    if diff_threads > 1 {
        differ = differ.with_runner(std::sync::Arc::new(xyserve::DiffRunner::new(diff_threads)));
    }
    for c in &cases {
        let _ = differ.diff(&c.old, &c.new);
    }

    // The timed loop takes the consuming entry point (the ingest path), so
    // every round's input documents are cloned up front, outside the timing.
    let mut pool: Vec<Vec<Document>> = (0..rounds)
        .map(|_| cases.iter().map(|c| c.new.clone()).collect())
        .collect();

    // Per-diff per-phase samples (micros): p1..p5 + total per row.
    let mut samples: Vec<[f64; 6]> = Vec::with_capacity(rounds * cases.len());
    let t = Instant::now();
    for round in pool.drain(..) {
        for (c, new_doc) in cases.iter().zip(round) {
            let r = differ.diff_consume(&c.old, new_doc);
            let tm = r.timings;
            let mut row = [0.0f64; 6];
            for (slot, d) in row.iter_mut().zip([
                tm.phase1,
                tm.phase2,
                tm.phase3,
                tm.phase4,
                tm.phase5,
                tm.total(),
            ]) {
                *slot = d.as_secs_f64() * 1e6;
            }
            samples.push(row);
        }
    }
    let wall = t.elapsed();
    let diffs = samples.len() as f64;
    let mut phases = [0.0f64; 6]; // mean micros per diff
    for row in &samples {
        for (acc, v) in phases.iter_mut().zip(row) {
            *acc += v;
        }
    }
    for p in &mut phases {
        *p /= diffs;
    }
    // Nearest-rank percentile over the per-diff samples of one phase.
    let percentile = |phase: usize, q: f64| -> f64 {
        let mut vals: Vec<f64> = samples.iter().map(|r| r[phase]).collect();
        vals.sort_by(f64::total_cmp);
        let rank = ((q / 100.0 * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
        vals[rank - 1]
    };
    let p50: Vec<f64> = (0..6).map(|i| percentile(i, 50.0)).collect();
    let p99: Vec<f64> = (0..6).map(|i| percentile(i, 99.0)).collect();
    let docs_per_sec = diffs / wall.as_secs_f64();
    let mb_per_sec = (bytes_per_round * rounds) as f64 / 1e6 / wall.as_secs_f64();
    let peak_rss = xybench::peak_rss_bytes().unwrap_or(0);

    println!("| mode | pairs | rounds | threads | docs/sec | MB/s | mean diff | peak RSS |");
    println!("|---|---:|---:|---:|---:|---:|---:|---:|");
    println!(
        "| {} | {} | {rounds} | {diff_threads} | {docs_per_sec:.0} | {mb_per_sec:.1} | {:.0} µs | {} |",
        if fast { "fast" } else { "full" },
        cases.len(),
        phases[5],
        fmt_bytes(peak_rss as usize),
    );
    println!(
        "\nmean per-phase micros: p1 {:.0} | p2 {:.0} | p3 {:.0} | p4 {:.0} | p5 {:.0}",
        phases[0], phases[1], phases[2], phases[3], phases[4]
    );
    println!(
        "p50 per-phase micros:  p1 {:.0} | p2 {:.0} | p3 {:.0} | p4 {:.0} | p5 {:.0}",
        p50[0], p50[1], p50[2], p50[3], p50[4]
    );
    println!(
        "p99 per-phase micros:  p1 {:.0} | p2 {:.0} | p3 {:.0} | p4 {:.0} | p5 {:.0}\n",
        p99[0], p99[1], p99[2], p99[3], p99[4]
    );

    let phase_obj = |vals: &[f64]| {
        format!(
            "{{ \"phase1\": {:.1}, \"phase2\": {:.1}, \"phase3\": {:.1}, \
             \"phase4\": {:.1}, \"phase5\": {:.1}, \"total\": {:.1} }}",
            vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"diff\",\n  \"mode\": \"{mode}\",\n  \"pairs\": {pairs},\n  \
         \"rounds\": {rounds},\n  \"diff_threads\": {diff_threads},\n  \
         \"bytes_per_round\": {bytes_per_round},\n  \
         \"docs_per_sec\": {docs_per_sec:.2},\n  \"mb_per_sec\": {mb_per_sec:.3},\n  \
         \"phase_micros\": {means},\n  \
         \"phase_p50_micros\": {p50s},\n  \
         \"phase_p99_micros\": {p99s},\n  \
         \"peak_rss_bytes\": {peak_rss}\n}}\n",
        mode = if fast { "fast" } else { "full" },
        pairs = cases.len(),
        means = phase_obj(&phases),
        p50s = phase_obj(&p50),
        p99s = phase_obj(&p99),
    );
    let path = xybench::bench_out_path("BENCH_diff.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| eprintln!("cannot write {path:?}: {e}"));
    println!("wrote {}\n", path.display());

    if std::env::var_os("XYBENCH_GATE").is_some() {
        let mut failed = false;
        match xybench::baseline_docs_per_sec("bench_baseline.json") {
            Some(base) => {
                let floor = base / 2.0;
                println!(
                    "perf gate: {docs_per_sec:.0} docs/sec vs baseline {base:.0} (floor {floor:.0})"
                );
                if docs_per_sec < floor {
                    eprintln!("perf gate FAILED: diff throughput regressed >2x");
                    failed = true;
                }
            }
            None => eprintln!("perf gate: no bench_baseline.json found, skipping"),
        }
        // Phase-level gate: a regression hiding inside one phase (e.g. the
        // zero-copy capture path falling back to full clones) must fail even
        // when the total stays within the throughput floor. Phases that are
        // noise-sized in the baseline (< 50 µs) are skipped.
        if let Some(base_phases) = xybench::baseline_phase_micros("bench_baseline.json") {
            for (i, (name, base)) in base_phases.iter().enumerate().take(5) {
                if *base < 50.0 {
                    continue;
                }
                let ceil = base * 2.5;
                let cur = phases[i];
                println!("perf gate: {name} {cur:.0} µs vs baseline {base:.0} (ceiling {ceil:.0})");
                if cur > ceil {
                    eprintln!("perf gate FAILED: {name} mean regressed >2.5x");
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}

/// E11 (extension) — Figure 1 at production scale: the `xyserve` worker
/// pool running crawler→diff→store→alert concurrently, 1 worker vs N.
fn ingest() {
    use xyserve::{IngestServer, ServeConfig};

    println!("## Ingest — concurrent crawler→diff→store→alert throughput (xyserve)\n");
    let corpus = xybench::versioned_corpus(24, 6, 12_000, 41);
    let snapshots: usize = corpus.iter().map(|(_, v)| v.len()).sum();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "corpus: {} documents x {} versions = {snapshots} snapshots (~{} each); host parallelism: {cores}\n",
        corpus.len(),
        corpus[0].1.len(),
        fmt_bytes(corpus[0].1[0].len()),
    );
    println!("| workers | wall time | docs/sec | speedup | queue high-water | steals | stolen jobs | diff mean | diff p99 | total p99 |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    let mut base_rate = None;
    let mut last_metrics = String::new();
    let mut json_rows: Vec<String> = Vec::new();
    for workers in [1usize, 2, 4] {
        let config = ServeConfig::new()
            .with_workers(workers)
            .unwrap()
            .with_queue_capacity(64)
            .unwrap()
            .with_shards(8)
            .unwrap();
        eprintln!("effective: {}", config.effective());
        let server = IngestServer::start(config);
        let t = Instant::now();
        // Round-robin across documents, as a crawler sweep would: version i
        // of every document before version i+1 of any, so the chains of
        // different documents genuinely overlap in the pool.
        let max_versions = corpus.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        for round in 0..max_versions {
            for (key, versions) in &corpus {
                if let Some(xml) = versions.get(round) {
                    server.submit(key, xml.clone()).unwrap();
                }
            }
        }
        server.wait_idle();
        let wall = t.elapsed();
        let m = server.metrics();
        let rate = snapshots as f64 / wall.as_secs_f64();
        let speedup = rate / *base_rate.get_or_insert(rate);
        let steals = m.steals.get();
        let stolen = m.stolen_jobs.get();
        println!(
            "| {workers} | {} | {:.0} | {speedup:.2}x | {} | {steals} | {stolen} | {} µs | {} µs | {} µs |",
            fmt_dur(wall),
            rate,
            m.queue_depth.high_water(),
            m.diff_time.mean_micros(),
            m.diff_time.quantile_bound_micros(0.99),
            m.total_time.quantile_bound_micros(0.99),
        );
        json_rows.push(format!(
            "    {{ \"workers\": {workers}, \"wall_secs\": {:.4}, \"docs_per_sec\": {rate:.2}, \
             \"speedup\": {speedup:.3}, \"steals\": {steals}, \"stolen_jobs\": {stolen}, \
             \"diff_mean_micros\": {}, \"diff_p99_micros\": {}, \"total_p99_micros\": {} }}",
            wall.as_secs_f64(),
            m.diff_time.mean_micros(),
            m.diff_time.quantile_bound_micros(0.99),
            m.total_time.quantile_bound_micros(0.99),
        ));
        last_metrics = m.render();
        let report = server.shutdown();
        assert!(report.is_balanced(), "unbalanced shutdown accounting: {report:?}");
        assert_eq!(report.succeeded as usize, snapshots);
    }
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"snapshots\": {snapshots},\n  \"runs\": [\n{}\n  ],\n  \
         \"peak_rss_bytes\": {}\n}}\n",
        json_rows.join(",\n"),
        xybench::peak_rss_bytes().unwrap_or(0),
    );
    let path = xybench::bench_out_path("BENCH_ingest.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| eprintln!("cannot write {path:?}: {e}"));
    println!("wrote {}", path.display());
    println!(
        "\n(target: >=2x docs/sec with 4 workers on a >=4-core host; this host has {cores} core{})\n",
        if cores == 1 { "" } else { "s" }
    );
    println!("metrics exposition of the 4-worker run:\n\n```\n{last_metrics}```\n");
}

/// E1 / Figure 4 — time cost of the different phases vs total input size.
fn fig4() {
    println!("## Figure 4 — per-phase time vs total size of both documents\n");
    println!(
        "| total size | parse | p1+p2 (hash) | p3 (BULD) | p4 (propagate) | p5 (delta) | diff total |"
    );
    println!("|---:|---:|---:|---:|---:|---:|---:|");
    let mut pts_total = Vec::new();
    let mut pts_core = Vec::new();
    for target in [1_000usize, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000] {
        let (old, sim) = pair_at_rate(target, 0.1, 42);
        let old_xml = old.doc.to_xml();
        let new_xml = sim.new_version.doc.to_xml();
        let total_bytes = old_xml.len() + new_xml.len();

        let t = Instant::now();
        let old_doc = Document::parse(&old_xml).unwrap();
        let new_doc = Document::parse(&new_xml).unwrap();
        let parse = t.elapsed();
        let old_x = XidDocument::assign_initial(old_doc);
        let r = diff(&old_x, &new_doc, &DiffOptions::default());
        let tm = r.timings;
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            fmt_bytes(total_bytes),
            fmt_dur(parse),
            fmt_dur(tm.phase1 + tm.phase2),
            fmt_dur(tm.phase3),
            fmt_dur(tm.phase4),
            fmt_dur(tm.phase5),
            fmt_dur(tm.total()),
        );
        pts_total.push((total_bytes as f64, tm.total().as_secs_f64()));
        pts_core.push((total_bytes as f64, tm.core().as_secs_f64().max(1e-9)));
    }
    println!(
        "\ngrowth exponent (log-log slope): diff total ≈ {:.2}, phases 3+4 ≈ {:.2}  (1.0 = linear; paper: 'almost linear')\n",
        log_log_slope(&pts_total),
        log_log_slope(&pts_core)
    );
}

/// E2 / Figure 5 — computed delta size vs the simulator's perfect delta.
fn fig5() {
    println!("## Figure 5 — delta quality: computed size vs synthetic (perfect) size\n");
    println!("| doc size | change rate | perfect delta | computed delta | ratio |");
    println!("|---:|---:|---:|---:|---:|");
    let mut worst: f64 = 0.0;
    let mut ratios = Vec::new();
    for &bytes in &[5_000usize, 20_000, 100_000, 400_000] {
        for &rate in &[0.01, 0.05, 0.1, 0.2, 0.3, 0.5] {
            let (old, sim) = pair_at_rate(bytes, rate, 7 + (bytes + (rate * 100.0) as usize) as u64);
            let r = diff(&old, &sim.new_version.doc, &DiffOptions::default());
            let perfect = sim.perfect_delta.size_bytes().max(1);
            let ours = r.delta.size_bytes();
            let ratio = ours as f64 / perfect as f64;
            worst = worst.max(ratio);
            ratios.push((rate, ratio));
            println!(
                "| {} | {:>4.0}% | {} | {} | {:.2} |",
                fmt_bytes(bytes),
                rate * 100.0,
                fmt_bytes(perfect),
                fmt_bytes(ours),
                ratio
            );
        }
    }
    let mid: Vec<f64> = ratios
        .iter()
        .filter(|(r, _)| (0.2..=0.35).contains(r))
        .map(|&(_, q)| q)
        .collect();
    let mid_avg = mid.iter().sum::<f64>() / mid.len().max(1) as f64;
    println!(
        "\nworst ratio {worst:.2}; mean ratio around 30% change: {mid_avg:.2}  \
         (paper: 'about fifty percent larger' in the middle of the range)\n"
    );
}

/// E3 / Figure 6 — delta size over Unix-diff output size on web-like XML.
fn fig6() {
    println!("## Figure 6 — delta size / Unix diff size on web-like documents\n");
    println!("| doc size | layout | unix diff | xydelta | ratio |");
    println!("|---:|---|---:|---:|---:|");
    let pretty = SerializeOptions::pretty();
    for &bytes in &[2_000usize, 10_000, 20_000, 50_000, 100_000, 500_000] {
        for (layout, opts) in [("multi-line", Some(&pretty)), ("one-line", None)] {
            let (old, sim) = pair_at_rate(bytes, 0.03, 1000 + bytes as u64);
            let (old_txt, new_txt) = match opts {
                Some(o) => (old.doc.to_xml_with(o), sim.new_version.doc.to_xml_with(o)),
                None => (old.doc.to_xml(), sim.new_version.doc.to_xml()),
            };
            let unix = xybase::unix_diff_size(&old_txt, &new_txt).max(1);
            let r = diff(&old, &sim.new_version.doc, &DiffOptions::default());
            let ours = r.delta.size_bytes();
            println!(
                "| {} | {layout} | {} | {} | {:.2} |",
                fmt_bytes(old_txt.len()),
                fmt_bytes(unix),
                fmt_bytes(ours),
                ours as f64 / unix as f64
            );
        }
    }
    println!(
        "\n(paper: deltas are 'on average roughly the size of the Unix Diff result'; \
         one-line documents show Unix diff's long-line pathology)\n"
    );
}

/// E4 — BULD (n log n) vs the quadratic Selkow-variant DP and DiffMK.
fn scaling() {
    println!("## Scaling — BULD vs quadratic tree DP vs DiffMK list diff\n");
    println!("| nodes | BULD | Selkow DP | DP pairs | DiffMK | BULD delta | DP cost |");
    println!("|---:|---:|---:|---:|---:|---:|---:|");
    let mut buld_pts = Vec::new();
    let mut selkow_pts = Vec::new();
    for &bytes in &[2_000usize, 5_000, 10_000, 20_000, 50_000, 100_000] {
        let (old, sim) = pair_at_rate(bytes, 0.1, 77);
        let nodes = old.doc.node_count();

        let t = Instant::now();
        let r = diff(&old, &sim.new_version.doc, &DiffOptions::default());
        let buld_time = t.elapsed();

        let t = Instant::now();
        let s = xybase::selkow_distance(&old.doc, &sim.new_version.doc);
        let selkow_time = t.elapsed();

        let t = Instant::now();
        let mk = xybase::diffmk_diff(&old.doc, &sim.new_version.doc);
        let diffmk_time = t.elapsed();

        println!(
            "| {nodes} | {} | {} | {} | {} | {} | {} |",
            fmt_dur(buld_time),
            fmt_dur(selkow_time),
            s.pairs_examined,
            fmt_dur(diffmk_time),
            fmt_bytes(r.delta.size_bytes()),
            s.cost,
        );
        let _ = mk;
        buld_pts.push((nodes as f64, buld_time.as_secs_f64()));
        selkow_pts.push((nodes as f64, selkow_time.as_secs_f64()));
    }
    println!(
        "\ngrowth exponents: BULD ≈ {:.2}, Selkow DP ≈ {:.2}  \
         (paper: linear vs quadratic for previous algorithms)\n",
        log_log_slope(&buld_pts),
        log_log_slope(&selkow_pts)
    );
}

/// E7 — the §6.2 site-snapshot experiment (INRIA-scale, 5 MB XML).
fn site() {
    println!("## Site snapshot — §6.2 (www.inria.fr scale: ~14k pages, ~5 MB)\n");
    let cfg = SiteConfig { pages: 14_000, sections: 60, seed: 5 };
    let t = Instant::now();
    let snapshot = site_snapshot(&cfg);
    let gen_time = t.elapsed();
    let old = XidDocument::assign_initial(snapshot);
    let evolved = evolve_site(&old, 0.02, 17);
    let old_xml = old.doc.to_xml();
    let new_xml = evolved.new_version.doc.to_xml();

    let t = Instant::now();
    let _od = Document::parse(&old_xml).unwrap();
    let _nd = Document::parse(&new_xml).unwrap();
    let parse_time = t.elapsed();

    let t = Instant::now();
    let r = diff(&old, &evolved.new_version.doc, &DiffOptions::default());
    let diff_time = t.elapsed();

    let t = Instant::now();
    let delta_xml = xydelta::xml_io::delta_to_xml(&r.delta);
    let write_time = t.elapsed();

    println!("snapshot: {} ({} pages), new version: {}", fmt_bytes(old_xml.len()), cfg.pages, fmt_bytes(new_xml.len()));
    println!("generate: {} | parse both: {} | diff: {} (core p3+p4: {}) | write delta: {}",
        fmt_dur(gen_time), fmt_dur(parse_time), fmt_dur(diff_time), fmt_dur(r.timings.core()), fmt_dur(write_time));
    println!("delta: {} ops, {}", r.delta.len(), fmt_bytes(delta_xml.len()));
    println!(
        "(paper: delta in ~30 s wall incl. I/O, core < 2 s, delta ≈ 1 MB for 5 MB snapshot)\n"
    );
}

/// E10 (extension) — BULD vs the LaDiff-inspired similarity matcher (§3:
/// "perhaps the closest in spirit to our algorithm is LaDiff").
fn matchers() {
    println!("## Matchers — BULD (signatures) vs LaDiff-inspired similarity\n");
    println!("| doc size | change rate | BULD time | BULD delta | similarity time | similarity delta | delta ratio |");
    println!("|---:|---:|---:|---:|---:|---:|---:|");
    for &bytes in &[20_000usize, 100_000] {
        for &rate in &[0.02, 0.1, 0.25] {
            let (old, sim) = pair_at_rate(bytes, rate, 3);
            let t = Instant::now();
            let buld = diff(&old, &sim.new_version.doc, &DiffOptions::default());
            let buld_time = t.elapsed();
            let mut simi_differ = Differ::new()
                .with_options(DiffOptions { exact_lis: true, ..Default::default() })
                .with_mode(xydiff::MatchMode::Similarity);
            let t = Instant::now();
            let simi = simi_differ.diff(&old, &sim.new_version.doc);
            let simi_time = t.elapsed();
            println!(
                "| {} | {:>3.0}% | {} | {} | {} | {} | {:.2} |",
                fmt_bytes(bytes),
                rate * 100.0,
                fmt_dur(buld_time),
                fmt_bytes(buld.delta.size_bytes()),
                fmt_dur(simi_time),
                fmt_bytes(simi.delta.size_bytes()),
                simi.delta.size_bytes() as f64 / buld.delta.size_bytes().max(1) as f64,
            );
        }
    }
    println!("\n(both matchers share the delta builder; the ratio isolates matching quality)\n");
}

/// E16 (extension) — cross-mode delta cost: the same simulated pairs run
/// through every `MatchMode`, per change family (the uniform three-phase
/// simulator, pure child-order shuffles over the `Grid` corpus, and
/// attribute churn). Every delta is apply-checked before it is counted, so
/// the table compares costs of *correct* deltas only. Writes
/// `BENCH_modes.json`; `XYBENCH_GATE=1` fails the run unless the unordered
/// matcher's mean ops-per-delta on the shuffle family is strictly below
/// BULD's (the claim EXPERIMENTS.md records).
fn modes() {
    use xydiff::MatchMode;
    use xysim::{attribute_churn, shuffle_children, AttrChurnConfig, ShuffleConfig};

    println!("## Modes — BULD vs unordered vs similarity across change families\n");
    let fast = xybench::fast_mode();
    let pairs = if fast { 12u64 } else { 60 };

    /// One document pair for (family, seed).
    fn pair_for(family: &str, seed: u64) -> (XidDocument, xysim::SimulatedChange) {
        match family {
            "shuffle" => {
                let doc = xysim::generate(&xysim::DocGenConfig {
                    kind: xysim::DocKind::Grid,
                    target_nodes: 800,
                    seed,
                    id_attributes: false,
                });
                let old = XidDocument::assign_initial(doc);
                let sim = shuffle_children(
                    &old,
                    &ShuffleConfig { p_shuffle: 0.8, seed: seed.wrapping_mul(31).wrapping_add(7) },
                );
                (old, sim)
            }
            "attr-churn" => {
                let old = XidDocument::assign_initial(xybench::sized_catalog(20_000, seed));
                let sim = attribute_churn(
                    &old,
                    &AttrChurnConfig {
                        seed: seed.wrapping_mul(31).wrapping_add(7),
                        ..Default::default()
                    },
                );
                (old, sim)
            }
            _ => pair_at_rate(20_000, 0.08, seed),
        }
    }

    println!("| family | mode | mean ops | mean delta bytes | mean diff time |");
    println!("|---|---|---:|---:|---:|");
    let mut json = String::from("{\n  \"bench\": \"modes\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"pairs_per_family\": {pairs},\n",
        if fast { "fast" } else { "full" },
    ));
    let mut shuffle_mean = [0f64; 2];
    for family in ["uniform", "shuffle", "attr-churn"] {
        for mode in MatchMode::all() {
            let mut differ = Differ::new().with_mode(mode);
            let (mut ops, mut bytes, mut wall) = (0usize, 0usize, std::time::Duration::ZERO);
            for seed in 0..pairs {
                let (old, sim) = pair_for(family, seed);
                let t = Instant::now();
                let r = differ.diff(&old, &sim.new_version.doc);
                wall += t.elapsed();
                let mut replay = old.clone();
                r.delta.apply_to(&mut replay).expect("mode delta must apply");
                assert_eq!(
                    replay.doc.to_xml(),
                    sim.new_version.doc.to_xml(),
                    "{family}/{mode} seed {seed}: replay diverged"
                );
                ops += r.delta.ops.len();
                bytes += r.delta.size_bytes();
            }
            let mean_ops = ops as f64 / pairs as f64;
            println!(
                "| {family} | {mode} | {mean_ops:.1} | {} | {} |",
                fmt_bytes(bytes / pairs as usize),
                fmt_dur(wall / pairs as u32),
            );
            let key = format!("{}_{}", family.replace('-', "_"), mode.as_str());
            json.push_str(&format!(
                "  \"{key}_mean_ops\": {mean_ops:.2},\n  \"{key}_mean_bytes\": {},\n",
                bytes / pairs as usize,
            ));
            if family == "shuffle" && mode == MatchMode::Buld {
                shuffle_mean[0] = mean_ops;
            }
            if family == "shuffle" && mode == MatchMode::Unordered {
                shuffle_mean[1] = mean_ops;
            }
        }
    }
    json.push_str(&format!("  \"peak_rss_bytes\": {}\n}}\n", xybench::peak_rss_bytes().unwrap_or(0)));
    let path = xybench::bench_out_path("BENCH_modes.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| eprintln!("cannot write {path:?}: {e}"));
    println!("\nwrote {}", path.display());
    println!(
        "\n(shuffle family, mean ops: buld {:.1} vs unordered {:.1} — the X-Diff regime)\n",
        shuffle_mean[0], shuffle_mean[1],
    );

    if std::env::var_os("XYBENCH_GATE").is_some() {
        println!("modes gate: shuffle mean ops unordered {:.1} vs buld {:.1}", shuffle_mean[1], shuffle_mean[0]);
        if shuffle_mean[1] >= shuffle_mean[0] {
            eprintln!(
                "modes gate FAILED: unordered ({:.1}) must emit fewer ops than BULD ({:.1}) on shuffles",
                shuffle_mean[1], shuffle_mean[0],
            );
            std::process::exit(1);
        }
    }
}

/// E9 (extension) — diff-driven full-text index maintenance vs rebuild
/// (§2: "use the diff to maintain such indexes").
fn index_maintenance() {
    println!("## Index maintenance — incremental (delta-driven) vs full rebuild\n");
    println!("| doc size | change rate | rebuild | incremental | speedup | postings |");
    println!("|---:|---:|---:|---:|---:|---:|");
    for &bytes in &[20_000usize, 100_000, 400_000, 1_000_000] {
        for &rate in &[0.01, 0.05] {
            let (old, sim) = pair_at_rate(bytes, rate, 5);
            let r = diff(&old, &sim.new_version.doc, &DiffOptions::default());
            let base = xyindex::DocumentIndex::build(&old);

            let t = Instant::now();
            let rebuilt = xyindex::DocumentIndex::build(&r.new_version);
            let rebuild_time = t.elapsed();

            // Clone outside the timer: production maintains one index in
            // place; the clone exists only so this loop can compare.
            let mut incremental = base.clone();
            let t = Instant::now();
            incremental.apply_delta(&r.delta, &r.new_version);
            let inc_time = t.elapsed();

            assert!(incremental.same_as(&rebuilt), "incremental index must equal rebuild");
            println!(
                "| {} | {:>3.0}% | {} | {} | {:.1}x | {} |",
                fmt_bytes(bytes),
                rate * 100.0,
                fmt_dur(rebuild_time),
                fmt_dur(inc_time),
                rebuild_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-9),
                rebuilt.posting_count(),
            );
        }
    }
    println!("\n(extension E9: work proportional to the change, not the document)\n");
}

/// E8 — ablations of the design choices (§5.2 "Tuning").
fn ablation() {
    println!("## Ablations — design choices of §5.2\n");
    let variants: Vec<(&str, DiffOptions)> = vec![
        ("default", DiffOptions::default()),
        ("no phase-4 propagation", DiffOptions { enable_propagation: false, ..Default::default() }),
        ("no unique-child propagation", DiffOptions { enable_unique_child_propagation: false, ..Default::default() }),
        ("exact LIS (no window)", DiffOptions { exact_lis: true, ..Default::default() }),
        ("LIS window 5", DiffOptions { lis_window: 5, ..Default::default() }),
        ("depth factor 0 (parent only)", DiffOptions { depth_factor: 0.0, ..Default::default() }),
        ("depth factor 4", DiffOptions { depth_factor: 4.0, ..Default::default() }),
    ];
    println!("| variant | time | delta bytes | ops | moves | matched |");
    println!("|---|---:|---:|---:|---:|---:|");
    let (old, sim) = pair_at_rate(200_000, 0.15, 99);
    for (name, opts) in &variants {
        let t = Instant::now();
        let r = diff(&old, &sim.new_version.doc, opts);
        let time = t.elapsed();
        let c = r.delta.counts();
        println!(
            "| {name} | {} | {} | {} | {} | {} |",
            fmt_dur(time),
            fmt_bytes(r.delta.size_bytes()),
            c.total(),
            c.moves,
            r.stats.matched_nodes,
        );
    }
    // ID-attribute ablation needs an ID-stamped corpus.
    println!("\nID attributes (catalog with DTD-declared product ids, products reordered + edited):\n");
    println!("| variant | time | delta bytes | ops | id matches |");
    println!("|---|---:|---:|---:|---:|");
    let doc = xysim::generate(&xysim::DocGenConfig {
        kind: xysim::DocKind::Catalog,
        target_nodes: 8_000,
        seed: 12,
        id_attributes: true,
    });
    let old = XidDocument::assign_initial(doc);
    let sim = xysim::simulate(&old, &xysim::ChangeConfig::uniform(0.1, 5));
    for (name, opts) in [
        ("with ID matching", DiffOptions::default()),
        ("without ID matching", DiffOptions { use_id_attributes: false, ..Default::default() }),
    ] {
        let t = Instant::now();
        let r = diff(&old, &sim.new_version.doc, &opts);
        let time = t.elapsed();
        println!(
            "| {name} | {} | {} | {} | {} |",
            fmt_dur(time),
            fmt_bytes(r.delta.size_bytes()),
            r.delta.len(),
            r.stats.id_matches,
        );
    }
    println!();
}
