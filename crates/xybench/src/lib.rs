//! Shared workloads and reporting helpers for the experiment harness.
//!
//! The `repro` binary (`cargo run -p xybench --release --bin repro -- all`)
//! regenerates every figure of the paper; the Criterion benches under
//! `benches/` measure the timing-sensitive parts with statistical rigor.
//! DESIGN.md §3 maps each experiment id (E1–E8) to its regenerator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use xydelta::XidDocument;
use xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind, SimulatedChange};
use xytree::Document;

/// Approximate serialized bytes per node for the catalog generator; used to
/// translate byte targets into node targets.
pub const CATALOG_BYTES_PER_NODE: usize = 18;

/// Generate a catalog document of roughly `bytes` serialized bytes.
pub fn sized_catalog(bytes: usize, seed: u64) -> Document {
    generate(&DocGenConfig {
        kind: DocKind::Catalog,
        target_nodes: (bytes / CATALOG_BYTES_PER_NODE).max(16),
        seed,
        id_attributes: false,
    })
}

/// A versioned pair: old document (with XIDs) and a simulated change at the
/// given uniform per-node rate.
pub fn pair_at_rate(bytes: usize, rate: f64, seed: u64) -> (XidDocument, SimulatedChange) {
    let old = XidDocument::assign_initial(sized_catalog(bytes, seed));
    let sim = simulate(&old, &ChangeConfig::uniform(rate, seed.wrapping_mul(31).wrapping_add(7)));
    (old, sim)
}

/// A corpus of `docs` documents with `versions` snapshots each, serialized
/// the way a crawler would deliver them. Each document's snapshots form a
/// chain of simulated edits (8% per-node change rate), so ingesting them in
/// order exercises the full diff→store→alert loop of `xyserve`.
pub fn versioned_corpus(
    docs: usize,
    versions: usize,
    bytes: usize,
    seed: u64,
) -> Vec<(String, Vec<String>)> {
    (0..docs)
        .map(|d| {
            let mut cur = XidDocument::assign_initial(sized_catalog(bytes, seed + d as u64));
            let mut snaps = vec![cur.doc.to_xml()];
            for v in 1..versions {
                let step_seed = seed ^ (d as u64).wrapping_mul(1009) ^ (v as u64).wrapping_mul(9176);
                cur = simulate(&cur, &ChangeConfig::uniform(0.08, step_seed)).new_version;
                snaps.push(cur.doc.to_xml());
            }
            (format!("doc-{d:03}"), snaps)
        })
        .collect()
}

/// True when `XYBENCH_FAST=1`: benches shrink their corpora so the CI
/// perf-smoke job finishes in seconds.
pub fn fast_mode() -> bool {
    std::env::var_os("XYBENCH_FAST").is_some_and(|v| v != "0")
}

/// Where a `BENCH_*.json` file should land: `$XYBENCH_OUT` or the current
/// directory.
pub fn bench_out_path(file: &str) -> std::path::PathBuf {
    match std::env::var_os("XYBENCH_OUT") {
        Some(dir) => std::path::PathBuf::from(dir).join(file),
        None => std::path::PathBuf::from(file),
    }
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`; `None`
/// elsewhere).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Extract `"docs_per_sec": <number>` from a checked-in baseline JSON file
/// (hand-rolled so the workspace stays dependency-free).
pub fn baseline_docs_per_sec(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    json_number(&text, "docs_per_sec")
}

/// Per-phase mean micros (`phase1`..`phase5`, `total`) from a checked-in
/// baseline JSON, in that order. Reads the *first* occurrence of each key,
/// which is the `phase_micros` (mean) object — the BENCH writer emits the
/// p50/p99 objects after it.
pub fn baseline_phase_micros(path: &str) -> Option<Vec<(&'static str, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let keys = ["phase1", "phase2", "phase3", "phase4", "phase5", "total"];
    let out: Vec<(&'static str, f64)> =
        keys.iter().filter_map(|k| json_number(&text, k).map(|v| (*k, v))).collect();
    (!out.is_empty()).then_some(out)
}

/// Find `"key": <number>` in a JSON text. Good enough for the flat BENCH
/// files this workspace writes; not a general JSON parser.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Least-squares slope of `ln y` against `ln x` — the growth exponent used
/// to check the near-linearity claims (slope ≈ 1 ⇒ linear, ≈ 2 ⇒ quadratic).
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Human-readable byte count.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1_000_000 {
        format!("{:.1} MB", b as f64 / 1e6)
    } else if b >= 1_000 {
        format!("{:.1} KB", b as f64 / 1e3)
    } else {
        format!("{b} B")
    }
}

/// Human-readable duration in microseconds/milliseconds/seconds.
pub fn fmt_dur(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us >= 1_000_000 {
        format!("{:.2} s", d.as_secs_f64())
    } else if us >= 1_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_catalog_hits_byte_target() {
        for target in [10_000usize, 100_000] {
            let doc = sized_catalog(target, 1);
            let actual = doc.to_xml().len();
            assert!(
                actual > target / 3 && actual < target * 3,
                "target {target} gave {actual}"
            );
        }
    }

    #[test]
    fn slope_detects_linear_and_quadratic() {
        let linear: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((log_log_slope(&linear) - 1.0).abs() < 1e-9);
        let quad: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((log_log_slope(&quad) - 2.0).abs() < 1e-9);
        assert!(log_log_slope(&[(1.0, 1.0)]).is_nan());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2_048), "2.0 KB");
        assert_eq!(fmt_bytes(5_200_000), "5.2 MB");
        assert_eq!(fmt_dur(std::time::Duration::from_micros(250)), "250 µs");
        assert_eq!(fmt_dur(std::time::Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_dur(std::time::Duration::from_secs(3)), "3.00 s");
    }

    #[test]
    fn json_number_extracts_flat_keys() {
        let text = "{\n  \"bench\": \"diff\",\n  \"docs_per_sec\": 123.45,\n  \"n\": 7\n}";
        assert_eq!(json_number(text, "docs_per_sec"), Some(123.45));
        assert_eq!(json_number(text, "n"), Some(7.0));
        assert_eq!(json_number(text, "missing"), None);
    }

    #[test]
    fn pair_at_rate_is_consistent() {
        let (old, sim) = pair_at_rate(20_000, 0.1, 3);
        let mut replay = old.clone();
        sim.perfect_delta.apply_to(&mut replay).unwrap();
        assert_eq!(replay.doc.to_xml(), sim.new_version.doc.to_xml());
    }
}
