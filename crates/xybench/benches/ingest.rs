//! Criterion bench for E11: concurrent ingestion throughput.
//!
//! One `xyserve` pool ingests the same versioned corpus with 1 worker and
//! with N workers; the element throughput lines make the scaling visible.
//! On a single-core host the multi-worker run only measures coordination
//! overhead — the ≥2× expectation applies to ≥4-core machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xybench::versioned_corpus;
use xyserve::{IngestServer, ServeConfig};

fn ingest_corpus(corpus: &[(String, Vec<String>)], workers: usize) {
    let server = IngestServer::start(
        ServeConfig::new()
            .with_workers(workers)
            .unwrap()
            .with_queue_capacity(64)
            .unwrap()
            .with_shards(8)
            .unwrap(),
    );
    let max_versions = corpus.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    for round in 0..max_versions {
        for (key, versions) in corpus {
            if let Some(xml) = versions.get(round) {
                server.submit(key, xml.clone()).unwrap();
            }
        }
    }
    let report = server.shutdown();
    assert!(report.is_balanced());
    assert_eq!(report.dead_lettered, 0);
}

fn bench_ingest(c: &mut Criterion) {
    let corpus = versioned_corpus(8, 4, 8_000, 21);
    let snapshots: usize = corpus.iter().map(|(_, v)| v.len()).sum();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(snapshots as u64));
    for workers in [1usize, cores.max(4)] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| ingest_corpus(&corpus, w));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
