//! Delta application and inversion throughput.
//!
//! Reconstruction cost matters: the warehouse "possibly removes the old
//! version from the repository" (§2) and rebuilds any past version by
//! applying inverted deltas backwards, so apply speed bounds how deep
//! "querying the past" can go interactively.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xybench::pair_at_rate;
use xydiff::{diff, DiffOptions};

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply");
    group.sample_size(10);
    for bytes in [20_000usize, 200_000] {
        let (old, sim) = pair_at_rate(bytes, 0.1, 9);
        let r = diff(&old, &sim.new_version.doc, &DiffOptions::default());
        group.bench_with_input(BenchmarkId::new("forward", bytes), &bytes, |b, _| {
            b.iter(|| {
                let mut doc = old.clone();
                r.delta.apply_to(&mut doc).unwrap();
                doc
            });
        });
        let inverted = r.delta.inverted();
        group.bench_with_input(BenchmarkId::new("inverse", bytes), &bytes, |b, _| {
            b.iter(|| {
                let mut doc = r.new_version.clone();
                inverted.apply_to(&mut doc).unwrap();
                doc
            });
        });
        group.bench_with_input(BenchmarkId::new("invert_op", bytes), &bytes, |b, _| {
            b.iter(|| r.delta.inverted());
        });
        group.bench_with_input(BenchmarkId::new("serialize_delta", bytes), &bytes, |b, _| {
            b.iter(|| xydelta::xml_io::delta_to_xml(&r.delta));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
