//! Criterion bench for E4: BULD vs the quadratic baselines.
//!
//! "Our algorithm runs in O(n log(n)) time vs. quadratic time for previous
//! algorithms" — the Selkow-variant DP is the quadratic representative, the
//! DiffMK token diff the list-based one. Compare how each scales across a
//! 4× size step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xybench::pair_at_rate;
use xybase::{diffmk_diff, selkow_distance};
use xydiff::{diff, DiffOptions};

fn bench_scaling(c: &mut Criterion) {
    for bytes in [5_000usize, 20_000, 80_000] {
        let (old, sim) = pair_at_rate(bytes, 0.1, 77);
        let new_doc = sim.new_version.doc.clone();
        let nodes = old.doc.node_count();

        let mut group = c.benchmark_group(format!("scaling/{nodes}_nodes"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("buld", nodes), &nodes, |b, _| {
            b.iter(|| diff(&old, &new_doc, &DiffOptions::default()));
        });
        group.bench_with_input(BenchmarkId::new("selkow_dp", nodes), &nodes, |b, _| {
            b.iter(|| selkow_distance(&old.doc, &new_doc));
        });
        group.bench_with_input(BenchmarkId::new("diffmk", nodes), &nodes, |b, _| {
            b.iter(|| diffmk_diff(&old.doc, &new_doc));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
