//! Criterion bench for E3 / Figure 6: XyDiff vs Unix diff on web-like XML.
//!
//! The figure's size ratios come from `repro -- fig6`; this bench compares
//! the *costs* of producing the two outputs on the ~20 KB documents the
//! paper calls the web average.

use criterion::{criterion_group, criterion_main, Criterion};
use xybench::pair_at_rate;
use xybase::unix_diff;
use xydiff::{diff, DiffOptions};
use xytree::SerializeOptions;

fn bench_fig6(c: &mut Criterion) {
    let (old, sim) = pair_at_rate(20_000, 0.03, 3);
    let pretty = SerializeOptions::pretty();
    let old_txt = old.doc.to_xml_with(&pretty);
    let new_txt = sim.new_version.doc.to_xml_with(&pretty);
    let new_doc = sim.new_version.doc.clone();

    let mut group = c.benchmark_group("fig6");
    group.sample_size(20);
    group.bench_function("xydiff_20KB", |b| {
        b.iter(|| diff(&old, &new_doc, &DiffOptions::default()));
    });
    group.bench_function("unix_diff_20KB", |b| {
        b.iter(|| unix_diff(&old_txt, &new_txt));
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
