//! Criterion bench for E8: cost of each §5.2 design choice.
//!
//! Quality effects are reported by `repro -- ablation`; here we measure what
//! each knob costs or saves in time on a fixed 100 KB / 15%-change workload.

use criterion::{criterion_group, criterion_main, Criterion};
use xybench::pair_at_rate;
use xydiff::{diff, DiffOptions};

fn bench_ablation(c: &mut Criterion) {
    let (old, sim) = pair_at_rate(100_000, 0.15, 99);
    let new_doc = sim.new_version.doc.clone();
    let variants: Vec<(&str, DiffOptions)> = vec![
        ("default", DiffOptions::default()),
        ("no_propagation", DiffOptions { enable_propagation: false, ..Default::default() }),
        (
            "no_unique_child",
            DiffOptions { enable_unique_child_propagation: false, ..Default::default() },
        ),
        ("exact_lis", DiffOptions { exact_lis: true, ..Default::default() }),
        ("depth_factor_0", DiffOptions { depth_factor: 0.0, ..Default::default() }),
        ("depth_factor_4", DiffOptions { depth_factor: 4.0, ..Default::default() }),
    ];
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (name, opts) in variants {
        group.bench_function(name, |b| {
            b.iter(|| diff(&old, &new_doc, &opts));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
