//! Criterion bench for E1 / Figure 4: diff cost vs document size.
//!
//! The statistical companion of `repro -- fig4`: measures the full BULD diff
//! (and parsing, which dominates in the paper's Figure 4) at three sizes a
//! decade apart. Near-linear scaling shows as ~10× time per size step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xybench::pair_at_rate;
use xydelta::XidDocument;
use xydiff::{diff, DiffOptions};
use xytree::Document;

fn bench_diff_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/diff");
    group.sample_size(10);
    for bytes in [10_000usize, 100_000, 1_000_000] {
        let (old, sim) = pair_at_rate(bytes, 0.1, 42);
        let new_doc = sim.new_version.doc.clone();
        let total = old.doc.to_xml().len() + new_doc.to_xml().len();
        group.throughput(Throughput::Bytes(total as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bytes), &bytes, |b, _| {
            b.iter(|| diff(&old, &new_doc, &DiffOptions::default()));
        });
    }
    group.finish();
}

fn bench_parse_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/parse");
    group.sample_size(10);
    for bytes in [10_000usize, 100_000, 1_000_000] {
        let (old, _) = pair_at_rate(bytes, 0.1, 42);
        let xml = old.doc.to_xml();
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bytes), &bytes, |b, _| {
            b.iter(|| Document::parse(&xml).unwrap());
        });
    }
    group.finish();
}

fn bench_xid_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/assign_xids");
    group.sample_size(10);
    let (old, _) = pair_at_rate(100_000, 0.1, 42);
    group.bench_function("100KB", |b| {
        b.iter(|| XidDocument::assign_initial(old.doc.clone()));
    });
    group.finish();
}

criterion_group!(benches, bench_diff_sizes, bench_parse_sizes, bench_xid_assignment);
criterion_main!(benches);
