//! Extension experiment E9: diff-driven index maintenance vs full rebuild.
//!
//! §2: "We are considering the possibility to use the diff to maintain such
//! indexes." This bench quantifies the possibility: applying a small delta
//! to a structural full-text index should beat rebuilding it from the new
//! version by a factor that grows with document size (work ∝ change, not
//! ∝ document).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xybench::pair_at_rate;
use xydiff::{diff, DiffOptions};
use xyindex::DocumentIndex;

fn bench_index_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_maintenance");
    group.sample_size(10);
    for bytes in [20_000usize, 100_000, 400_000] {
        // Low change rate: the regime where incremental pays.
        let (old, sim) = pair_at_rate(bytes, 0.02, 5);
        let r = diff(&old, &sim.new_version.doc, &DiffOptions::default());
        let base_index = DocumentIndex::build(&old);

        group.bench_with_input(BenchmarkId::new("rebuild", bytes), &bytes, |b, _| {
            b.iter(|| DocumentIndex::build(&r.new_version));
        });
        group.bench_with_input(BenchmarkId::new("incremental", bytes), &bytes, |b, _| {
            // Clone in setup; measure only the delta application.
            b.iter_batched(
                || base_index.clone(),
                |mut idx| {
                    idx.apply_delta(&r.delta, &r.new_version);
                    idx
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_maintenance);
criterion_main!(benches);
