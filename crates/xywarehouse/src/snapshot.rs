//! Crash-safe, generation-based snapshots of a sharded repository set.
//!
//! The ingest server keeps its version chains in memory (Figure 1's loop is
//! CPU-bound on the diff); this module gives it durability without a write
//! path in the hot loop. A snapshot writes every shard with
//! [`Repository::save_to`] into a *temporary* directory, then publishes it
//! with two atomic renames:
//!
//! ```text
//! <root>/tmp-gen-000042/…      written in full first
//! <root>/gen-000042/…          rename(tmp, final)
//! <root>/CURRENT               "gen-000042" via write-temp + rename
//! ```
//!
//! A crash at any point leaves either the previous generation current (the
//! new one is a stale `tmp-…`/unreferenced directory, ignored and later
//! overwritten) or the new generation fully published. Readers only ever
//! follow `CURRENT`, so they never observe a half-written tree.
//!
//! Renames alone only order *metadata*; for a generation to survive power
//! loss the file contents and the directory entries must reach the disk
//! before `CURRENT` flips. [`SnapshotStore::save`] therefore fsyncs every
//! file and directory of the temporary tree bottom-up, fsyncs the root
//! after each rename, and fsyncs `CURRENT.tmp` before publishing it —
//! without this a snapshot that WAL truncation depends on could evaporate,
//! silently losing acknowledged ingests.
//!
//! Restore is shard-count agnostic: chains are re-routed by key through a
//! caller-supplied function, so a server restarted with a different shard
//! count still finds every document.

use crate::persist::{load_chain, PersistError};
use crate::repository::Repository;
use std::fs;
use std::path::{Path, PathBuf};

/// The pointer file naming the current generation.
const CURRENT: &str = "CURRENT";

/// A directory of snapshot generations with an atomically updated pointer
/// to the newest complete one. See the module docs for the layout.
pub struct SnapshotStore {
    root: PathBuf,
    keep: usize,
}

impl SnapshotStore {
    /// Open (creating if missing) a snapshot store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<SnapshotStore, PersistError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(SnapshotStore { root, keep: 2 })
    }

    /// How many published generations to retain (minimum 1, default 2 —
    /// the current one plus its predecessor as a fallback).
    #[must_use]
    pub fn with_keep(mut self, keep: usize) -> SnapshotStore {
        self.keep = keep.max(1);
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The generation number `CURRENT` points at, if any generation has
    /// been published. An unreadable or malformed pointer reads as `None`
    /// (the store is treated as fresh; stale directories are overwritten).
    pub fn current_generation(&self) -> Option<u64> {
        let text = fs::read_to_string(self.root.join(CURRENT)).ok()?;
        text.trim().strip_prefix("gen-")?.parse().ok()
    }

    fn generation_dir(&self, generation: u64) -> PathBuf {
        self.root.join(format!("gen-{generation:06}"))
    }

    /// Fsync every regular file under `dir`, then every directory bottom-up,
    /// so the whole tree is durable before it is renamed into place.
    fn sync_tree(dir: &Path) -> Result<(), PersistError> {
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_dir() {
                SnapshotStore::sync_tree(&path)?;
            } else {
                fs::File::open(&path)?.sync_all()?;
            }
        }
        fs::File::open(dir)?.sync_all()?;
        Ok(())
    }

    /// Fsync a directory so renames inside it are durable.
    fn sync_dir(dir: &Path) -> Result<(), PersistError> {
        fs::File::open(dir)?.sync_all()?;
        Ok(())
    }

    /// Write every shard into a fresh generation and publish it. Returns
    /// the generation number. The previous generation stays readable until
    /// pruned (see [`SnapshotStore::with_keep`]).
    ///
    /// Each chain is internally consistent (it is cloned under the shard's
    /// lock), but chains captured while ingest is running may reflect
    /// slightly different moments — the snapshot is per-document
    /// consistent, not a global point-in-time cut.
    pub fn save(&self, shards: &[Repository]) -> Result<u64, PersistError> {
        let generation = self.current_generation().map_or(0, |g| g + 1);
        let name = format!("gen-{generation:06}");
        let tmp = self.root.join(format!("tmp-{name}"));
        if tmp.exists() {
            fs::remove_dir_all(&tmp)?;
        }
        fs::create_dir_all(&tmp)?;
        for (i, shard) in shards.iter().enumerate() {
            shard.save_to(&tmp.join(format!("shard-{i:03}")))?;
        }
        SnapshotStore::sync_tree(&tmp)?;
        let target = self.generation_dir(generation);
        if target.exists() {
            // A crash after rename but before the CURRENT flip left an
            // unreferenced generation behind; replace it.
            fs::remove_dir_all(&target)?;
        }
        fs::rename(&tmp, &target)?;
        SnapshotStore::sync_dir(&self.root)?;
        let pointer_tmp = self.root.join("CURRENT.tmp");
        {
            use std::io::Write;
            let mut f = fs::File::create(&pointer_tmp)?;
            f.write_all(name.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&pointer_tmp, self.root.join(CURRENT))?;
        SnapshotStore::sync_dir(&self.root)?;
        self.prune(generation)?;
        Ok(generation)
    }

    /// Remove generations older than the retention window.
    fn prune(&self, current: u64) -> Result<(), PersistError> {
        let cutoff = current.saturating_sub(self.keep as u64 - 1);
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let Some(gen) = name.strip_prefix("gen-").and_then(|s| s.parse::<u64>().ok()) else {
                continue;
            };
            if gen < cutoff {
                fs::remove_dir_all(&path)?;
            }
        }
        Ok(())
    }

    /// Load every chain of the current generation into `shards`, routing
    /// each key through `route` (callers pass their live shard function, so
    /// a changed shard count re-partitions cleanly). Returns the number of
    /// chains restored; a store with no published generation restores 0.
    pub fn restore_into(
        &self,
        shards: &[Repository],
        route: impl Fn(&str) -> usize,
    ) -> Result<usize, PersistError> {
        let Some(generation) = self.current_generation() else {
            return Ok(0);
        };
        let dir = self.generation_dir(generation);
        let mut shard_dirs: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-"))
            })
            .collect();
        shard_dirs.sort();
        let mut restored = 0;
        for shard_dir in shard_dirs {
            let manifest = fs::read_to_string(shard_dir.join("manifest.txt"))?;
            for line in manifest.lines().filter(|l| !l.trim().is_empty()) {
                let doc_dir = shard_dir.join(line.trim());
                let key = fs::read_to_string(doc_dir.join("key.txt"))?.trim().to_string();
                let chain = load_chain(&doc_dir)?;
                let idx = route(&key).min(shards.len().saturating_sub(1));
                shards[idx].install_chain(key, chain);
                restored += 1;
            }
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("xywarehouse-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn shard_pair() -> Vec<Repository> {
        let shards = vec![Repository::new(), Repository::new()];
        shards[0].load_version("a", "<a><v>1</v></a>").unwrap();
        shards[0].load_version("a", "<a><v>2</v></a>").unwrap();
        shards[1].load_version("b", "<b/>").unwrap();
        shards
    }

    #[test]
    fn save_then_restore_reproduces_every_chain() {
        let root = tmp_root("roundtrip");
        let store = SnapshotStore::open(&root).unwrap();
        assert_eq!(store.current_generation(), None);
        let shards = shard_pair();
        assert_eq!(store.save(&shards).unwrap(), 0);
        assert_eq!(store.current_generation(), Some(0));

        // Restore into a *different* shard count with a new routing.
        let fresh = vec![Repository::new(), Repository::new(), Repository::new()];
        let restored = store
            .restore_into(&fresh, |key| usize::from(key == "b") * 2)
            .unwrap();
        assert_eq!(restored, 2);
        assert_eq!(fresh[0].latest_xml("a").unwrap(), "<a><v>2</v></a>");
        assert_eq!(fresh[0].version_xml("a", 0).unwrap(), "<a><v>1</v></a>");
        assert_eq!(fresh[2].latest_xml("b").unwrap(), "<b/>");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn generations_advance_and_prune() {
        let root = tmp_root("prune");
        let store = SnapshotStore::open(&root).unwrap().with_keep(2);
        let shards = shard_pair();
        for expect in 0..4 {
            assert_eq!(store.save(&shards).unwrap(), expect);
        }
        assert_eq!(store.current_generation(), Some(3));
        assert!(store.generation_dir(3).exists());
        assert!(store.generation_dir(2).exists());
        assert!(!store.generation_dir(1).exists(), "pruned");
        assert!(!store.generation_dir(0).exists(), "pruned");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_tmp_directory_is_ignored_and_replaced() {
        let root = tmp_root("crash");
        let store = SnapshotStore::open(&root).unwrap();
        let shards = shard_pair();
        store.save(&shards).unwrap();
        // Simulate a crash mid-write of the next generation: a tmp dir
        // exists but CURRENT still points at generation 0.
        fs::create_dir_all(root.join("tmp-gen-000001").join("shard-000")).unwrap();
        fs::write(root.join("tmp-gen-000001").join("garbage"), "x").unwrap();
        let fresh = vec![Repository::new()];
        assert_eq!(store.restore_into(&fresh, |_| 0).unwrap(), 2);
        // The next save claims generation 1, clobbering the stale tmp dir.
        assert_eq!(store.save(&shards).unwrap(), 1);
        assert_eq!(store.current_generation(), Some(1));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_store_restores_nothing() {
        let root = tmp_root("empty");
        let store = SnapshotStore::open(&root).unwrap();
        let fresh = vec![Repository::new()];
        assert_eq!(store.restore_into(&fresh, |_| 0).unwrap(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn restored_chain_continues_ingest() {
        let root = tmp_root("continue");
        let store = SnapshotStore::open(&root).unwrap();
        let shards = shard_pair();
        store.save(&shards).unwrap();
        let fresh = vec![Repository::new()];
        store.restore_into(&fresh, |_| 0).unwrap();
        let out = fresh[0].load_version("a", "<a><v>3</v></a>").unwrap();
        assert_eq!(out.version, 2);
        assert_eq!(out.delta.counts().updates, 1);
        let _ = fs::remove_dir_all(&root);
    }
}
