//! The alerter: matches incoming deltas against subscriptions.
//!
//! "The alerter is in charge of detecting, in the document V(n) or in the
//! delta, patterns that may interest some subscriptions." (§2, Figure 1)

use crate::subscription::Subscription;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use xydelta::{Delta, Op, Xid, XidDocument};
use xytree::Doctype;

/// A subscription hit produced while loading one new version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Name of the subscription that fired.
    pub subscription: String,
    /// Document the change happened in.
    pub doc_key: String,
    /// Operation kind (`"insert"`, `"delete"`, `"update"`, `"move"`, …).
    pub op_kind: &'static str,
    /// Root-first label path of the affected node.
    pub path: String,
    /// A short content excerpt (inserted/deleted text, new value, …).
    pub snippet: String,
}

/// A registration-time schema diagnostic: a subscription whose query can
/// never select a node in any document valid under the stored DTD, so it
/// will silently never fire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaWarning {
    /// Name of the dead subscription.
    pub subscription: String,
    /// Document whose DTD rules it out.
    pub doc_key: String,
    /// Human-readable unsatisfiability proof sketch.
    pub reason: String,
}

/// A set of subscriptions evaluated against every delta.
#[derive(Debug, Default, Clone)]
pub struct Alerter {
    subscriptions: Vec<Subscription>,
    /// `(doc_key, subscription)` pairs already warned about, shared across
    /// clones so each dead subscription is reported once per document.
    warned: Arc<Mutex<HashSet<(String, String)>>>,
}

impl Alerter {
    /// An alerter with no subscriptions (never fires).
    pub fn new() -> Alerter {
        Alerter::default()
    }

    /// Register a subscription.
    pub fn subscribe(&mut self, sub: Subscription) {
        self.subscriptions.push(sub);
    }

    /// Number of registered subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Statically audit every subscription scoped to `doc_key` against the
    /// document's DTD: a subscription whose query (or path suffix) is
    /// provably unsatisfiable under the grammar can never fire and is
    /// reported as a [`SchemaWarning`]. Each `(doc_key, subscription)` pair
    /// is warned about at most once across the alerter's lifetime (clones
    /// share the memory). Queries the analyzer cannot decide are skipped —
    /// only proofs produce warnings.
    pub fn audit(&self, doc_key: &str, doctype: &Doctype) -> Vec<SchemaWarning> {
        if self.subscriptions.is_empty() || !doctype.has_element_decls() {
            return Vec::new();
        }
        let Ok(grammar) = xyschema::Grammar::from_doctype(doctype) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        // INVARIANT: a poisoned lock means another thread panicked while
        // recording a warning key; the alerter cannot vouch for its dedup
        // state, so the panic propagates.
        let mut warned = self.warned.lock().expect("schema-warning set poisoned");
        for sub in &self.subscriptions {
            if !sub.document_matches(doc_key) {
                continue;
            }
            // Subscriptions with an explicit query are checked as-is; a bare
            // path suffix `[l1, …, ln]` fires only on nodes whose label path
            // ends with it, which requires the chain `//l1/l2/…/ln` to be
            // realizable somewhere in a valid document.
            let path = match &sub.query {
                Some(q) => q.clone(),
                None => {
                    if sub.path_suffix.is_empty() {
                        continue;
                    }
                    let expr = format!("//{}", sub.path_suffix.join("/"));
                    match xyquery::Path::parse(&expr) {
                        Ok(p) => p,
                        Err(_) => continue,
                    }
                }
            };
            if let Ok(xyschema::Verdict::Unsatisfiable(u)) = xyschema::analyze(&path, &grammar) {
                let key = (doc_key.to_string(), sub.name.clone());
                if warned.insert(key) {
                    out.push(SchemaWarning {
                        subscription: sub.name.clone(),
                        doc_key: doc_key.to_string(),
                        reason: u.describe(),
                    });
                }
            }
        }
        out
    }

    /// Evaluate a delta (computed between `old` and `new`) for document
    /// `doc_key`; returns one notification per (subscription, matching op).
    pub fn evaluate(
        &self,
        doc_key: &str,
        delta: &Delta,
        old: &XidDocument,
        new: &XidDocument,
    ) -> Vec<Notification> {
        if self.subscriptions.is_empty() || delta.is_empty() {
            return Vec::new();
        }
        // Evaluate each subscription's query once per delta (not per op):
        // the selected node sets over the old and the new version.
        let query_sets: Vec<Option<(std::collections::HashSet<xytree::NodeId>,
                                    std::collections::HashSet<xytree::NodeId>)>> = self
            .subscriptions
            .iter()
            .map(|sub| {
                sub.query.as_ref().map(|q| {
                    (
                        q.select(&old.doc.tree).into_iter().collect(),
                        q.select(&new.doc.tree).into_iter().collect(),
                    )
                })
            })
            .collect();
        let mut out = Vec::new();
        for op in &delta.ops {
            // Deletes are located in the old version, everything else in the
            // new one.
            let doc = match op {
                Op::Delete { .. } => old,
                _ => new,
            };
            let path = label_path(doc, op.anchor());
            let snippet = snippet_of(op);
            let anchor_node = doc.node(op.anchor());
            for (sub, sets) in self.subscriptions.iter().zip(&query_sets) {
                let query_hit = match (sets, anchor_node) {
                    (None, _) => true, // no query restriction
                    (Some(_), None) => false,
                    (Some((old_set, new_set)), Some(n)) => {
                        let set = if matches!(op, Op::Delete { .. }) { old_set } else { new_set };
                        set.contains(&n)
                    }
                };
                if query_hit
                    && sub.document_matches(doc_key)
                    && sub.filter.accepts(op)
                    && sub.path_matches(&path)
                    && sub.content_matches(&snippet)
                {
                    out.push(Notification {
                        subscription: sub.name.clone(),
                        doc_key: doc_key.to_string(),
                        op_kind: op.kind_name(),
                        path: path.join("/"),
                        snippet: truncate(&snippet, 120),
                    });
                }
            }
        }
        out
    }
}

/// Root-first element-label path of the node carrying `xid` (the node's own
/// label included when it is an element).
fn label_path(doc: &XidDocument, xid: Xid) -> Vec<String> {
    let Some(node) = doc.node(xid) else { return Vec::new() };
    let t = &doc.doc.tree;
    let mut path: Vec<String> = Vec::new();
    if let Some(name) = t.name(node) {
        path.push(name.to_string());
    }
    for anc in t.ancestors(node) {
        if let Some(name) = t.name(anc) {
            path.push(name.to_string());
        }
    }
    path.reverse();
    path
}

/// The content an op affects, for `content_contains` filtering.
fn snippet_of(op: &Op) -> String {
    match op {
        Op::Insert { subtree, .. } | Op::Delete { subtree, .. } => {
            // Alerting runs on stored (owned) deltas past the into_owned
            // boundary.
            let subtree = subtree.tree();
            subtree.deep_text(subtree.root())
        }
        Op::Update { new, .. } => new.clone(),
        Op::Move { .. } => String::new(),
        Op::AttrInsert { value, .. } => value.clone(),
        Op::AttrUpdate { new, .. } => new.clone(),
        Op::AttrDelete { old, .. } => old.clone(),
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        let mut cut = max;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &s[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscription::OpFilter;
    use xydiff::{diff, DiffOptions};
    use xytree::Document;

    /// Diff the catalog example and evaluate subscriptions on it.
    fn catalog_case(subs: Vec<Subscription>) -> Vec<Notification> {
        let old = XidDocument::parse_initial(
            "<catalog><product><name>old-cam</name><price>$10</price></product></catalog>",
        )
        .unwrap();
        let new = Document::parse(
            "<catalog><product><name>old-cam</name><price>$12</price></product>\
             <product><name>new-cam</name><price>$99</price></product></catalog>",
        )
        .unwrap();
        let r = diff(&old, &new, &DiffOptions::default());
        let mut alerter = Alerter::new();
        for s in subs {
            alerter.subscribe(s);
        }
        alerter.evaluate("cat.xml", &r.delta, &old, &r.new_version)
    }

    #[test]
    fn new_product_subscription_fires() {
        // The paper's own example: "that a new product has been added to a
        // catalog".
        let hits = catalog_case(vec![Subscription::everything("new-products")
            .at_path(["catalog", "product"])
            .only(OpFilter::Insert)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].op_kind, "insert");
        assert_eq!(hits[0].path, "catalog/product");
        assert!(hits[0].snippet.contains("new-cam"));
    }

    #[test]
    fn price_update_subscription_fires() {
        let hits = catalog_case(vec![Subscription::everything("price-watch")
            .at_path(["price"])
            .only(OpFilter::Update)]);
        assert!(!hits.is_empty(), "price text update must fire");
        assert!(hits.iter().any(|h| h.snippet.contains("$12")), "{hits:?}");
    }

    #[test]
    fn content_filter_narrows() {
        let hits = catalog_case(vec![
            Subscription::everything("cams").only(OpFilter::Insert).containing("new-cam"),
            Subscription::everything("phones").only(OpFilter::Insert).containing("phone"),
        ]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].subscription, "cams");
    }

    #[test]
    fn wrong_document_key_suppresses() {
        let hits = catalog_case(vec![Subscription::everything("other-doc")
            .on_document("different.xml")]);
        assert!(hits.is_empty());
    }

    #[test]
    fn empty_alerter_and_empty_delta_are_quiet() {
        let old = XidDocument::parse_initial("<a/>").unwrap();
        let alerter = Alerter::new();
        assert!(alerter.evaluate("k", &Delta::new(), &old, &old).is_empty());
        let mut with_sub = Alerter::new();
        with_sub.subscribe(Subscription::everything("s"));
        assert!(with_sub.evaluate("k", &Delta::new(), &old, &old).is_empty());
        assert_eq!(with_sub.subscription_count(), 1);
    }

    #[test]
    fn delete_paths_resolve_in_old_version() {
        let old = XidDocument::parse_initial(
            "<catalog><product><name>gone</name></product></catalog>",
        )
        .unwrap();
        let new = Document::parse("<catalog/>").unwrap();
        let r = diff(&old, &new, &DiffOptions::default());
        let mut alerter = Alerter::new();
        alerter.subscribe(
            Subscription::everything("deletions")
                .at_path(["catalog", "product"])
                .only(OpFilter::Delete),
        );
        let hits = alerter.evaluate("k", &r.delta, &old, &r.new_version);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].snippet.contains("gone"));
    }

    #[test]
    fn query_subscriptions_scope_to_selected_nodes() {
        // Two categories; only the cameras category's prices are watched.
        // The stable <name> texts anchor signature matching, so the changed
        // prices become updates (ambiguous same-label siblings with *no*
        // unchanged content would be replaced wholesale instead).
        let old = XidDocument::parse_initial(
            "<catalog>\
             <category name='cameras'><product><name>alpha cam</name><price>$10</price></product></category>\
             <category name='phones'><product><name>beta phone</name><price>$90</price></product></category>\
             </catalog>",
        )
        .unwrap();
        let new = Document::parse(
            "<catalog>\
             <category name='cameras'><product><name>alpha cam</name><price>$12</price></product></category>\
             <category name='phones'><product><name>beta phone</name><price>$95</price></product></category>\
             </catalog>",
        )
        .unwrap();
        let r = diff(&old, &new, &DiffOptions::default());
        assert_eq!(r.delta.counts().updates, 2, "{}", r.delta.describe());
        let mut alerter = Alerter::new();
        alerter.subscribe(
            Subscription::everything("camera-prices")
                .only(OpFilter::Update)
                .at_query("//category[@name='cameras']//text()"),
        );
        let hits = alerter.evaluate("cat", &r.delta, &old, &r.new_version);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].snippet, "$12");
    }

    #[test]
    fn query_subscription_on_deletes_uses_old_version() {
        let old = XidDocument::parse_initial(
            "<site><sec id='a'><page>x</page></sec><sec id='b'><page>y</page></sec></site>",
        )
        .unwrap();
        let new = Document::parse(
            "<site><sec id='a'><page>x</page></sec><sec id='b'/></site>",
        )
        .unwrap();
        let r = diff(&old, &new, &DiffOptions::default());
        let mut alerter = Alerter::new();
        alerter.subscribe(
            Subscription::everything("b-removals")
                .only(OpFilter::Delete)
                .at_query("//sec[@id='b']/page"),
        );
        alerter.subscribe(
            Subscription::everything("a-removals")
                .only(OpFilter::Delete)
                .at_query("//sec[@id='a']/page"),
        );
        let hits = alerter.evaluate("site", &r.delta, &old, &r.new_version);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].subscription, "b-removals");
    }

    #[test]
    fn bad_subscription_query_fails_at_registration() {
        assert!(Subscription::everything("s").try_at_query("//broken[").is_err());
    }

    #[test]
    fn audit_flags_dead_subscriptions_once() {
        let dt = xytree::parse_dtd(
            "<!ELEMENT catalog (product*)>\
             <!ELEMENT product (name)>\
             <!ELEMENT name (#PCDATA)>",
            None,
        )
        .unwrap();
        let mut a = Alerter::new();
        a.subscribe(Subscription::everything("dead-query").at_query("//widget"));
        a.subscribe(Subscription::everything("alive").at_query("//product/name"));
        a.subscribe(Subscription::everything("dead-suffix").at_path(["catalog", "widget"]));
        a.subscribe(Subscription::everything("no-restriction"));
        let w = a.audit("cat.xml", &dt);
        let names: Vec<&str> = w.iter().map(|w| w.subscription.as_str()).collect();
        assert_eq!(names, ["dead-query", "dead-suffix"], "{w:?}");
        assert!(w[0].reason.contains("widget"), "{w:?}");
        // Each (doc, subscription) pair is warned about once, and clones
        // share the memory.
        assert!(a.audit("cat.xml", &dt).is_empty());
        assert!(a.clone().audit("cat.xml", &dt).is_empty());
        // A different document key is a fresh audit.
        assert_eq!(a.audit("other.xml", &dt).len(), 2);
    }

    #[test]
    fn audit_scopes_to_document_key() {
        let dt = xytree::parse_dtd("<!ELEMENT a (#PCDATA)>", None).unwrap();
        let mut a = Alerter::new();
        a.subscribe(Subscription::everything("elsewhere").on_document("other.xml").at_query("//b"));
        assert!(a.audit("cat.xml", &dt).is_empty());
        assert_eq!(a.audit("other.xml", &dt).len(), 1);
    }

    #[test]
    fn audit_without_element_decls_is_quiet() {
        // ID-attribute-only DOCTYPEs (the common xysim shape) declare no
        // content models, so there is no grammar to analyze against.
        let dt = xytree::parse_dtd("<!ATTLIST product id ID #REQUIRED>", Some("catalog")).unwrap();
        let mut a = Alerter::new();
        a.subscribe(Subscription::everything("q").at_query("//nosuch"));
        assert!(a.audit("cat.xml", &dt).is_empty());
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        let s = "é".repeat(100);
        let t = truncate(&s, 11);
        assert!(t.ends_with('…'));
        assert!(t.len() <= 14);
    }
}
