//! Change-frequency statistics: the learning hook of §5.2.
//!
//! "The DTD or XMLSchema (or a data guide in absence of DTD) is an excellent
//! structure to record statistical information. It is therefore a useful
//! tool to introduce learning features in the algorithm, e.g. learn that a
//! price node is more likely to change than a description node." The
//! conclusion likewise calls for gathering "statistics on change frequency,
//! patterns of changes in a document".
//!
//! [`ChangeStats`] accumulates per-label operation counts from the delta
//! stream: every op is attributed to the element label it affects (the
//! updated text's parent, the inserted/deleted subtree's root, the moved
//! node). `change_rate` then answers "how often does a `price` change per
//! version?", the exact signal the paper wants to feed back into matching.

use xydelta::{Delta, Op, Xid, XidDocument};
use xytree::hash::FastHashMap;
use xytree::NodeKind;

/// Per-label operation counters over a stream of deltas.
#[derive(Debug, Clone, Default)]
pub struct ChangeStats {
    /// label → (updates, inserts, deletes, moves)
    per_label: FastHashMap<String, LabelCounts>,
    /// Number of deltas ingested.
    deltas_seen: usize,
    /// Total operations ingested.
    total_ops: usize,
}

/// Counters for one element label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelCounts {
    /// Text updates under this label.
    pub updates: usize,
    /// Subtrees of this label inserted.
    pub inserts: usize,
    /// Subtrees of this label deleted.
    pub deletes: usize,
    /// Nodes of this label moved.
    pub moves: usize,
}

impl LabelCounts {
    /// Sum of all operation kinds.
    pub fn total(&self) -> usize {
        self.updates + self.inserts + self.deletes + self.moves
    }
}

impl ChangeStats {
    /// Empty statistics.
    pub fn new() -> ChangeStats {
        ChangeStats::default()
    }

    /// Ingest one delta. `old` and `new` are the versions it connects
    /// (needed to resolve op anchors to labels: deletes live in `old`,
    /// everything else in `new`).
    pub fn record(&mut self, delta: &Delta, old: &XidDocument, new: &XidDocument) {
        self.deltas_seen += 1;
        for op in &delta.ops {
            self.total_ops += 1;
            let label = match op {
                Op::Delete { subtree, .. } | Op::Insert { subtree, .. } => {
                    // The stored subtree's root labels the op directly
                    // (stats run on owned deltas past the into_owned
                    // boundary).
                    let subtree = subtree.tree();
                    subtree
                        .first_child(subtree.root())
                        .map(|c| node_label(subtree, c))
                }
                Op::Update { xid, .. } => anchor_label(new, *xid).or_else(|| anchor_label(old, *xid)),
                Op::Move { xid, .. } => anchor_label(new, *xid),
                Op::AttrInsert { element, .. }
                | Op::AttrDelete { element, .. }
                | Op::AttrUpdate { element, .. } => anchor_label(new, *element),
            };
            let Some(label) = label else { continue };
            let e = self.per_label.entry(label).or_default();
            match op {
                Op::Update { .. } => e.updates += 1,
                Op::Insert { .. } => e.inserts += 1,
                Op::Delete { .. } => e.deletes += 1,
                Op::Move { .. } => e.moves += 1,
                // Attribute changes count as updates of the element.
                _ => e.updates += 1,
            }
        }
    }

    /// Counters for one label.
    pub fn counts(&self, label: &str) -> LabelCounts {
        self.per_label.get(label).copied().unwrap_or_default()
    }

    /// Average operations touching `label` per ingested delta — the
    /// "a price node is more likely to change than a description node"
    /// number.
    pub fn change_rate(&self, label: &str) -> f64 {
        if self.deltas_seen == 0 {
            0.0
        } else {
            self.counts(label).total() as f64 / self.deltas_seen as f64
        }
    }

    /// Labels ranked by total change count, most volatile first.
    pub fn most_volatile(&self, top: usize) -> Vec<(String, LabelCounts)> {
        let mut v: Vec<(String, LabelCounts)> = self
            .per_label
            .iter()
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        v.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then_with(|| a.0.cmp(&b.0)));
        v.truncate(top);
        v
    }

    /// Number of deltas ingested.
    pub fn deltas_seen(&self) -> usize {
        self.deltas_seen
    }

    /// Total operations ingested.
    pub fn total_ops(&self) -> usize {
        self.total_ops
    }
}

/// Label of an op anchor: for text nodes, the parent element's label (the
/// paper's "a price node is more likely to change" speaks of the element).
fn anchor_label(doc: &XidDocument, xid: Xid) -> Option<String> {
    let node = doc.node(xid)?;
    let t = &doc.doc.tree;
    match t.kind(node) {
        NodeKind::Element(e) => Some(e.name.to_string()),
        NodeKind::Text(_) | NodeKind::Comment(_) | NodeKind::Pi { .. } => {
            t.parent(node).and_then(|p| t.name(p)).map(str::to_string)
        }
        NodeKind::Document => None,
    }
}

fn node_label(tree: &xytree::Tree, node: xytree::NodeId) -> String {
    match tree.kind(node) {
        NodeKind::Element(e) => e.name.to_string(),
        NodeKind::Text(_) => "#text".to_string(),
        NodeKind::Comment(_) => "#comment".to_string(),
        NodeKind::Pi { .. } => "#pi".to_string(),
        NodeKind::Document => "#document".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xydiff::{diff, DiffOptions};
    use xytree::Document;

    fn step(stats: &mut ChangeStats, old: &XidDocument, new_xml: &str) -> XidDocument {
        let new_doc = Document::parse(new_xml).unwrap();
        let r = diff(old, &new_doc, &DiffOptions::default());
        stats.record(&r.delta, old, &r.new_version);
        r.new_version
    }

    #[test]
    fn learns_that_price_changes_more_than_description() {
        let mut stats = ChangeStats::new();
        let mut v = XidDocument::parse_initial(
            "<p><price>$1</price><description>stable text</description></p>",
        )
        .unwrap();
        for i in 2..=6 {
            v = step(
                &mut stats,
                &v,
                &format!("<p><price>${i}</price><description>stable text</description></p>"),
            );
        }
        assert_eq!(stats.deltas_seen(), 5);
        assert_eq!(stats.counts("price").updates, 5);
        assert_eq!(stats.counts("description").total(), 0);
        assert!(stats.change_rate("price") > stats.change_rate("description"));
        let top = stats.most_volatile(1);
        assert_eq!(top[0].0, "price");
    }

    #[test]
    fn attributes_count_as_element_updates() {
        let mut stats = ChangeStats::new();
        let v = XidDocument::parse_initial("<p><item k=\"1\"/></p>").unwrap();
        step(&mut stats, &v, "<p><item k=\"2\"/></p>");
        assert_eq!(stats.counts("item").updates, 1);
    }

    #[test]
    fn inserts_deletes_and_moves_attributed_to_labels() {
        let mut stats = ChangeStats::new();
        let v = XidDocument::parse_initial(
            "<cat><sec><a>keep me here</a><b>payload two</b></sec><sec2/></cat>",
        )
        .unwrap();
        // Move <b> to sec2, delete <a>, insert <c>.
        let v2 = step(
            &mut stats,
            &v,
            "<cat><sec><c>fresh</c></sec><sec2><b>payload two</b></sec2></cat>",
        );
        let _ = v2;
        assert_eq!(stats.counts("b").moves, 1, "{:?}", stats.most_volatile(5));
        assert_eq!(stats.counts("a").deletes, 1);
        assert_eq!(stats.counts("c").inserts, 1);
        assert!(stats.total_ops() >= 3);
    }

    #[test]
    fn empty_stats_report_zero() {
        let s = ChangeStats::new();
        assert_eq!(s.change_rate("anything"), 0.0);
        assert!(s.most_volatile(3).is_empty());
        assert_eq!(s.counts("x"), LabelCounts::default());
    }
}
