//! The version repository: the storage half of Figure 1.
//!
//! Keyed by document identifier (URL in Xyleme), each entry is a
//! [`VersionChain`]: the latest snapshot plus the forward delta sequence.
//! Loading a new version runs the BULD diff against the stored latest,
//! appends the delta, replaces the snapshot ("the old version is then
//! possibly removed from the repository"), and hands the delta to the
//! alerter.

use crate::alerter::{Alerter, Notification, SchemaWarning};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use xydelta::{ApplyError, Delta, VersionChain, XidDocument};
use xydiff::{Differ, DiffOptions, SignatureCache};
use xytree::{Document, ParseError};

/// Errors surfaced by repository operations.
#[derive(Debug)]
pub enum RepositoryError {
    /// The submitted XML does not parse.
    Parse(ParseError),
    /// No document is stored under the given key.
    UnknownDocument(String),
    /// The requested version index does not exist.
    UnknownVersion {
        /// Document key.
        key: String,
        /// Requested version.
        version: usize,
        /// Number of stored versions.
        available: usize,
    },
    /// Delta replay failed while reconstructing a version (storage
    /// corruption — should never happen).
    Reconstruct(ApplyError),
    /// The freshly computed delta failed static verification
    /// ([`xydelta::verify`]); the version was NOT stored. Indicates a diff
    /// bug or memory corruption, never a property of the input document.
    InvalidDelta(xydelta::VerifyError),
}

impl fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepositoryError::Parse(e) => write!(f, "document does not parse: {e}"),
            RepositoryError::UnknownDocument(k) => write!(f, "no document stored under {k:?}"),
            RepositoryError::UnknownVersion { key, version, available } => write!(
                f,
                "document {key:?} has {available} versions, version {version} requested"
            ),
            RepositoryError::Reconstruct(e) => write!(f, "version reconstruction failed: {e}"),
            RepositoryError::InvalidDelta(e) => {
                write!(f, "computed delta failed static verification: {e}")
            }
        }
    }
}

impl std::error::Error for RepositoryError {}

impl From<ParseError> for RepositoryError {
    fn from(e: ParseError) -> Self {
        RepositoryError::Parse(e)
    }
}

/// What loading one version produced.
#[derive(Debug)]
pub struct LoadOutcome {
    /// Index of the freshly stored version (0 for the first load).
    pub version: usize,
    /// The computed delta (empty for the first load or an unchanged doc).
    pub delta: Delta,
    /// Subscription hits raised by this delta.
    pub notifications: Vec<Notification>,
    /// Wall-clock time spent in the BULD diff for this load.
    pub diff_time: std::time::Duration,
    /// Wall-clock time spent evaluating subscriptions.
    pub alert_time: std::time::Duration,
    /// Subscriptions statically proven dead against this document's DTD
    /// (audited on the first load and whenever the DOCTYPE changes; each is
    /// reported once per document).
    pub schema_warnings: Vec<SchemaWarning>,
}

/// One stored document: its version chain plus the signature cache carried
/// between ingests (see [`SignatureCache`] for the coherence contract — the
/// repository refreshes it on every diff, so the *old* side of the next diff
/// replays cached subtree signatures instead of re-hashing the whole tree).
struct StoredDoc {
    chain: VersionChain,
    cache: SignatureCache,
}

/// A concurrent store of versioned documents.
pub struct Repository {
    entries: RwLock<HashMap<String, StoredDoc>>,
    opts: DiffOptions,
    alerter: Alerter,
    use_signature_cache: bool,
}

impl Repository {
    /// An empty repository with default diff options and no subscriptions.
    pub fn new() -> Repository {
        Repository::with_options(DiffOptions::default(), Alerter::new())
    }

    /// An empty repository with explicit diff options and an alerter.
    pub fn with_options(opts: DiffOptions, alerter: Alerter) -> Repository {
        Repository {
            entries: RwLock::new(HashMap::new()),
            opts,
            alerter,
            use_signature_cache: true,
        }
    }

    /// Enable or disable the per-document cross-version signature cache.
    ///
    /// The cache is a pure optimisation — deltas and reconstructed versions
    /// are byte-identical either way (pinned by tests) — so the toggle exists
    /// for benchmarking and for debugging suspected cache-coherence issues.
    pub fn set_signature_cache(&mut self, enabled: bool) {
        self.use_signature_cache = enabled;
        if !enabled {
            for stored in self.entries.write().values_mut() {
                stored.cache.clear();
            }
        }
    }

    /// Install a new version of document `key` (the Figure 1 ingest path).
    ///
    /// The first load of a key creates version 0 with an empty delta; later
    /// loads diff against the stored latest.
    pub fn load_version(&self, key: &str, xml: &str) -> Result<LoadOutcome, RepositoryError> {
        let doc = Document::parse(xml)?;
        Ok(self.load_parsed(key, doc))
    }

    /// Install an already-parsed new version of document `key`.
    ///
    /// This is the shard-friendly ingest entry point: parsing — the only
    /// fallible part and a large share of the work — happens outside the
    /// store's write lock, so concurrent pipelines parse in parallel and
    /// hold the lock only for diff + append.
    pub fn load_parsed(&self, key: &str, doc: Document) -> LoadOutcome {
        let mut differ = self.differ();
        self.try_load_parsed_with(key, doc, &mut differ)
            // INVARIANT: the only fallible step is static delta verification,
            // and every delta the BULD diff emits verifies (pinned by the
            // diff_deltas_verify property test); a failure here is a diff bug
            // for which no not-stored fallback exists on this infallible API.
            .expect("BULD diff produced a delta that fails static verification")
    }

    /// A [`Differ`] configured with this repository's diff options — what a
    /// long-lived ingest worker should hold and pass to every
    /// [`Repository::try_load_parsed_with`] call.
    ///
    /// The differ uses borrowed (zero-copy) payload capture: insert/delete
    /// payloads reference the diffed documents' arenas instead of cloning
    /// each subtree, and [`Repository::try_load_parsed_with`] materializes
    /// them (`Delta::into_owned`) in one step before the delta is verified,
    /// alerted on, or stored — so everything past the load call observes
    /// plain owned deltas, bit-identical to the pre-zero-copy format.
    pub fn differ(&self) -> Differ {
        Differ::new()
            .with_options(self.opts.clone())
            .with_capture(xydelta::CaptureMode::Borrowed)
    }

    /// Install an already-parsed new version of `key`, using the caller's
    /// [`Differ`] and surfacing delta-verification failures.
    ///
    /// The differ contributes the diff options and the reusable scratch
    /// (long-lived workers hold one differ each, making steady-state ingest
    /// free of per-diff structural allocation); the repository contributes
    /// the per-document signature cache. Every computed delta is checked by
    /// the static validator ([`xydelta::verify`]) before the version is
    /// stored. On failure the repository is left unchanged — the bad delta
    /// is neither appended to the chain nor handed to the alerter — and the
    /// caller decides what to do with the document (xyserve routes it to the
    /// dead-letter queue).
    pub fn try_load_parsed_with(
        &self,
        key: &str,
        doc: Document,
        differ: &mut Differ,
    ) -> Result<LoadOutcome, RepositoryError> {
        let mut entries = self.entries.write();
        match entries.get_mut(key) {
            None => {
                let schema_warnings = doc
                    .doctype
                    .as_ref()
                    .map_or_else(Vec::new, |dt| self.alerter.audit(key, dt));
                let initial = XidDocument::assign_initial(doc);
                entries.insert(
                    key.to_string(),
                    StoredDoc { chain: VersionChain::new(initial), cache: SignatureCache::new() },
                );
                Ok(LoadOutcome {
                    version: 0,
                    delta: Delta::new(),
                    notifications: Vec::new(),
                    diff_time: std::time::Duration::ZERO,
                    alert_time: std::time::Duration::ZERO,
                    schema_warnings,
                })
            }
            Some(stored) => {
                let chain = &mut stored.chain;
                // Re-audit only when this version ships a different DOCTYPE
                // than the stored latest (the audit memoizes per
                // subscription, but skipping it entirely keeps the steady
                // state free of grammar construction).
                let audit_doctype = (doc.doctype.is_some()
                    && doc.doctype != chain.latest().doc.doctype)
                    .then(|| doc.doctype.clone())
                    .flatten();
                let t0 = std::time::Instant::now();
                // The consuming entry points move `doc` into the produced
                // version (no whole-document clone), and a borrowed-capture
                // differ skips the per-subtree payload clones too.
                let result = if self.use_signature_cache {
                    differ.diff_consume_with_cache(chain.latest(), doc, &mut stored.cache)
                } else {
                    differ.diff_consume(chain.latest(), doc)
                };
                // Materialize any borrowed payloads while both source
                // documents are still in scope. This is the into_owned
                // boundary: verification, alerting, the WAL, and the chain
                // all see owned deltas only.
                let delta = {
                    let src = xydelta::PayloadSource {
                        old: &chain.latest().doc.tree,
                        new: &result.new_version.doc.tree,
                    };
                    result.delta.into_owned(&src)
                };
                xydelta::verify(&delta).map_err(RepositoryError::InvalidDelta)?;
                let diff_time = t0.elapsed();
                let t1 = std::time::Instant::now();
                let notifications =
                    self.alerter.evaluate(key, &delta, chain.latest(), &result.new_version);
                let alert_time = t1.elapsed();
                let version = chain.latest_index() + 1;
                chain.push_version(result.new_version, delta.clone());
                let schema_warnings = audit_doctype
                    .map_or_else(Vec::new, |dt| self.alerter.audit(key, &dt));
                Ok(LoadOutcome {
                    version,
                    delta,
                    notifications,
                    diff_time,
                    alert_time,
                    schema_warnings,
                })
            }
        }
    }

    /// Serialized latest version of `key`.
    pub fn latest_xml(&self, key: &str) -> Result<String, RepositoryError> {
        let entries = self.entries.read();
        let chain = entries
            .get(key)
            .map(|s| &s.chain)
            .ok_or_else(|| RepositoryError::UnknownDocument(key.to_string()))?;
        Ok(chain.latest().doc.to_xml())
    }

    /// Cumulative signature-cache (hits, misses) for `key`, `(0, 0)` when the
    /// key is unknown or the cache is disabled (observability hook).
    pub fn cache_counters(&self, key: &str) -> (u64, u64) {
        self.entries.read().get(key).map_or((0, 0), |s| s.cache.counters())
    }

    /// Serialized version `i` of `key`, reconstructed through inverse deltas
    /// ("querying the past").
    pub fn version_xml(&self, key: &str, version: usize) -> Result<String, RepositoryError> {
        let entries = self.entries.read();
        let chain = entries
            .get(key)
            .map(|s| &s.chain)
            .ok_or_else(|| RepositoryError::UnknownDocument(key.to_string()))?;
        if version > chain.latest_index() {
            return Err(RepositoryError::UnknownVersion {
                key: key.to_string(),
                version,
                available: chain.version_count(),
            });
        }
        let doc = chain.version(version).map_err(RepositoryError::Reconstruct)?;
        Ok(doc.doc.to_xml())
    }

    /// Number of stored versions of `key` (0 when unknown).
    pub fn version_count(&self, key: &str) -> usize {
        self.entries.read().get(key).map_or(0, |s| s.chain.version_count())
    }

    /// The aggregated delta between two versions of `key`.
    pub fn delta_between(
        &self,
        key: &str,
        from: usize,
        to: usize,
    ) -> Result<Delta, RepositoryError> {
        let entries = self.entries.read();
        let chain = entries
            .get(key)
            .map(|s| &s.chain)
            .ok_or_else(|| RepositoryError::UnknownDocument(key.to_string()))?;
        chain.delta_between(from, to).map_err(RepositoryError::Reconstruct)
    }

    /// All stored document keys.
    pub fn keys(&self) -> Vec<String> {
        self.entries.read().keys().cloned().collect()
    }

    /// Number of stored documents (stats hook for serving layers).
    pub fn doc_count(&self) -> usize {
        self.entries.read().len()
    }

    /// Total stored versions across all documents (stats hook).
    pub fn total_versions(&self) -> usize {
        self.entries.read().values().map(|s| s.chain.version_count()).sum()
    }

    /// Clone of one document's chain (persistence support).
    pub(crate) fn chain_snapshot(&self, key: &str) -> Option<VersionChain> {
        self.entries.read().get(key).map(|s| s.chain.clone())
    }

    /// Install a loaded chain under `key`, replacing any existing entry
    /// (persistence support). The signature cache starts cold — misses fall
    /// back to local hashing and the first ingest re-warms it.
    pub(crate) fn install_chain(&self, key: String, chain: VersionChain) {
        self.entries
            .write()
            .insert(key, StoredDoc { chain, cache: SignatureCache::new() });
    }

    /// Append a WAL-replayed delta to `key`'s chain (recovery support). No
    /// diff runs — the delta was computed before the crash and the caller
    /// has already re-verified it.
    pub(crate) fn append_replayed_delta(
        &self,
        key: &str,
        delta: Delta,
    ) -> Result<(), RepositoryError> {
        let mut entries = self.entries.write();
        let stored = entries
            .get_mut(key)
            .ok_or_else(|| RepositoryError::UnknownDocument(key.to_string()))?;
        stored.chain.push_delta(delta).map_err(RepositoryError::Reconstruct)
    }

    /// Compact every chain whose worst-case reconstruction cost exceeds
    /// `every` hops, materialising checkpoints so any version is reachable
    /// within a bounded number of delta applications. Returns the number of
    /// chains compacted.
    ///
    /// Candidate keys are collected under the read lock; each chain is then
    /// compacted under its own short write-lock acquisition so concurrent
    /// ingest interleaves between documents instead of stalling for the
    /// whole sweep.
    pub fn compact_chains(&self, every: usize) -> usize {
        let needy: Vec<String> = self
            .entries
            .read()
            .iter()
            .filter(|(_, s)| s.chain.needs_compaction(every))
            .map(|(k, _)| k.clone())
            .collect();
        let mut compacted = 0;
        for key in needy {
            let mut entries = self.entries.write();
            if let Some(stored) = entries.get_mut(&key) {
                if stored.chain.needs_compaction(every) && stored.chain.compact(every).is_ok() {
                    compacted += 1;
                }
            }
        }
        compacted
    }

    /// Worst-case delta applications needed to reconstruct any version of
    /// `key` (`None` when the key is unknown).
    pub fn chain_hops(&self, key: &str) -> Option<usize> {
        self.entries.read().get(key).map(|s| s.chain.max_reconstruct_hops())
    }

    /// Number of materialised checkpoints on `key`'s chain (`None` when the
    /// key is unknown).
    pub fn chain_checkpoints(&self, key: &str) -> Option<usize> {
        self.entries.read().get(key).map(|s| s.chain.checkpoint_count())
    }
}

impl Default for Repository {
    fn default() -> Self {
        Repository::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscription::{OpFilter, Subscription};
    use std::sync::Arc;

    #[test]
    fn first_load_is_version_zero() {
        let repo = Repository::new();
        let out = repo.load_version("doc", "<a><b>1</b></a>").unwrap();
        assert_eq!(out.version, 0);
        assert!(out.delta.is_empty());
        assert_eq!(repo.version_count("doc"), 1);
        assert_eq!(repo.latest_xml("doc").unwrap(), "<a><b>1</b></a>");
    }

    #[test]
    fn subsequent_loads_append_versions() {
        let repo = Repository::new();
        repo.load_version("doc", "<a><b>1</b></a>").unwrap();
        let out = repo.load_version("doc", "<a><b>2</b></a>").unwrap();
        assert_eq!(out.version, 1);
        assert_eq!(out.delta.counts().updates, 1);
        assert_eq!(repo.version_count("doc"), 2);
        assert_eq!(repo.latest_xml("doc").unwrap(), "<a><b>2</b></a>");
        assert_eq!(repo.version_xml("doc", 0).unwrap(), "<a><b>1</b></a>");
    }

    #[test]
    fn querying_the_past_across_many_versions() {
        let repo = Repository::new();
        for i in 0..6 {
            repo.load_version("doc", &format!("<log><n>{i}</n></log>")).unwrap();
        }
        for i in 0..6 {
            assert_eq!(
                repo.version_xml("doc", i).unwrap(),
                format!("<log><n>{i}</n></log>")
            );
        }
        let agg = repo.delta_between("doc", 1, 4).unwrap();
        assert_eq!(agg.counts().updates, 1, "updates must aggregate: {}", agg.describe());
    }

    #[test]
    fn unknown_keys_and_versions_error() {
        let repo = Repository::new();
        assert!(matches!(
            repo.latest_xml("nope"),
            Err(RepositoryError::UnknownDocument(_))
        ));
        repo.load_version("doc", "<a/>").unwrap();
        assert!(matches!(
            repo.version_xml("doc", 5),
            Err(RepositoryError::UnknownVersion { .. })
        ));
        assert_eq!(repo.version_count("nope"), 0);
    }

    #[test]
    fn malformed_xml_is_rejected() {
        let repo = Repository::new();
        assert!(matches!(
            repo.load_version("doc", "<a><b></a>"),
            Err(RepositoryError::Parse(_))
        ));
        assert_eq!(repo.version_count("doc"), 0);
    }

    #[test]
    fn alerter_is_wired_into_ingest() {
        let mut alerter = Alerter::new();
        alerter.subscribe(
            Subscription::everything("new-products")
                .at_path(["catalog", "product"])
                .only(OpFilter::Insert),
        );
        let repo = Repository::with_options(DiffOptions::default(), alerter);
        repo.load_version("cat", "<catalog><product><name>a</name></product></catalog>")
            .unwrap();
        let out = repo
            .load_version(
                "cat",
                "<catalog><product><name>a</name></product>\
                 <product><name>b</name></product></catalog>",
            )
            .unwrap();
        assert_eq!(out.notifications.len(), 1);
        assert_eq!(out.notifications[0].subscription, "new-products");
    }

    #[test]
    fn concurrent_loads_on_distinct_keys() {
        let repo = Arc::new(Repository::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let repo = Arc::clone(&repo);
            handles.push(std::thread::spawn(move || {
                let key = format!("doc-{t}");
                for v in 0..10 {
                    repo.load_version(&key, &format!("<d><v>{v}</v></d>")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(repo.keys().len(), 8);
        for t in 0..8 {
            assert_eq!(repo.version_count(&format!("doc-{t}")), 10);
            assert_eq!(
                repo.version_xml(&format!("doc-{t}"), 3).unwrap(),
                "<d><v>3</v></d>"
            );
        }
    }

    #[test]
    fn identical_reload_creates_empty_delta_version() {
        let repo = Repository::new();
        repo.load_version("doc", "<a/>").unwrap();
        let out = repo.load_version("doc", "<a/>").unwrap();
        assert_eq!(out.version, 1);
        assert!(out.delta.is_empty());
    }

    #[test]
    fn dead_subscriptions_surface_as_schema_warnings_on_ingest() {
        let mut alerter = Alerter::new();
        alerter.subscribe(
            crate::subscription::Subscription::everything("dead").at_query("//widget"),
        );
        alerter.subscribe(
            crate::subscription::Subscription::everything("alive").at_query("//name"),
        );
        let repo = Repository::with_options(DiffOptions::default(), alerter);
        let dtd = "<!DOCTYPE catalog [<!ELEMENT catalog (product*)>\
                   <!ELEMENT product (name)><!ELEMENT name (#PCDATA)>]>";
        // First load with a DOCTYPE: the audit runs and flags the dead one.
        let out = repo
            .load_version("cat.xml", &format!("{dtd}<catalog><product><name>n</name></product></catalog>"))
            .unwrap();
        assert_eq!(out.schema_warnings.len(), 1, "{:?}", out.schema_warnings);
        assert_eq!(out.schema_warnings[0].subscription, "dead");
        assert_eq!(out.schema_warnings[0].doc_key, "cat.xml");
        // Same DOCTYPE again: no re-audit, no warnings.
        let out = repo
            .load_version("cat.xml", &format!("{dtd}<catalog><product><name>m</name></product></catalog>"))
            .unwrap();
        assert!(out.schema_warnings.is_empty());
        // A document without any DOCTYPE never audits.
        let out = repo.load_version("plain.xml", "<catalog/>").unwrap();
        assert!(out.schema_warnings.is_empty());
    }
}
