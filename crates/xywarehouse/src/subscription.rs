//! Subscription patterns over change operations.
//!
//! "We implemented a subscription system that allows to detect changes of
//! interest in XML documents, e.g., that a new product has been added to a
//! catalog. To do that, at the time we obtain a new version of some data, we
//! diff it and verify if some of the changes that have been detected are
//! relevant to subscriptions." (§2)
//!
//! A subscription selects operations by kind ([`OpFilter`]), by the label
//! path of the affected node (a suffix pattern, so `["catalog", "product"]`
//! behaves like `//catalog/product`), optionally by document key and by a
//! substring of the affected content.

use xydelta::Op;
use xyquery::Path;

/// Which operation kinds a subscription fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFilter {
    /// Any operation.
    Any,
    /// Subtree insertions.
    Insert,
    /// Subtree deletions.
    Delete,
    /// Text updates.
    Update,
    /// Subtree moves.
    Move,
    /// Attribute insert/delete/update.
    AttrChange,
}

impl OpFilter {
    /// Does this filter accept `op`?
    pub fn accepts(&self, op: &Op) -> bool {
        matches!(
            (self, op),
            (OpFilter::Any, _)
                | (OpFilter::Insert, Op::Insert { .. })
                | (OpFilter::Delete, Op::Delete { .. })
                | (OpFilter::Update, Op::Update { .. })
                | (OpFilter::Move, Op::Move { .. })
                | (
                    OpFilter::AttrChange,
                    Op::AttrInsert { .. } | Op::AttrDelete { .. } | Op::AttrUpdate { .. },
                )
        )
    }
}

/// A standing query over the stream of deltas.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// Subscriber-chosen name, echoed in notifications.
    pub name: String,
    /// Restrict to one document key (`None` = all documents).
    pub doc_key: Option<String>,
    /// Label-path suffix the affected node's path must end with. Empty
    /// matches every path.
    pub path_suffix: Vec<String>,
    /// Operation-kind filter.
    pub filter: OpFilter,
    /// Substring that must occur in the affected content (inserted/deleted
    /// subtree text, the new value of an update, or an attribute value).
    pub content_contains: Option<String>,
    /// Full path-expression restriction: the affected node must be among the
    /// nodes this query selects in the relevant version (old for deletes,
    /// new otherwise). Strictly more expressive than `path_suffix` — it can
    /// say `//category[@name='cameras']//price`.
    pub query: Option<Path>,
}

impl Subscription {
    /// A subscription firing on every operation of every document.
    pub fn everything(name: impl Into<String>) -> Subscription {
        Subscription {
            name: name.into(),
            doc_key: None,
            path_suffix: Vec::new(),
            filter: OpFilter::Any,
            content_contains: None,
            query: None,
        }
    }

    /// Builder: restrict to a document key.
    pub fn on_document(mut self, key: impl Into<String>) -> Self {
        self.doc_key = Some(key.into());
        self
    }

    /// Builder: set the label-path suffix.
    pub fn at_path<I, S>(mut self, path: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.path_suffix = path.into_iter().map(Into::into).collect();
        self
    }

    /// Builder: set the operation filter.
    pub fn only(mut self, filter: OpFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Builder: require a content substring.
    pub fn containing(mut self, needle: impl Into<String>) -> Self {
        self.content_contains = Some(needle.into());
        self
    }

    /// Builder: restrict to nodes selected by a path expression, e.g.
    /// `//category[@name='cameras']//price`.
    ///
    /// # Panics
    /// Panics when the expression does not parse — subscriptions are
    /// registered by the operator, so a bad pattern is a configuration bug
    /// best caught at registration. Use [`Subscription::try_at_query`] for
    /// fallible registration.
    pub fn at_query(self, path: &str) -> Self {
        // INVARIANT: documented panic — operator-supplied pattern; the
        // fallible form is try_at_query.
        self.try_at_query(path).expect("subscription query must parse")
    }

    /// Fallible form of [`Subscription::at_query`].
    pub fn try_at_query(mut self, path: &str) -> Result<Self, xyquery::QueryParseError> {
        self.query = Some(Path::parse(path)?);
        Ok(self)
    }

    /// Does the label path `path` (root-first) end with this subscription's
    /// suffix?
    pub fn path_matches(&self, path: &[String]) -> bool {
        if self.path_suffix.len() > path.len() {
            return false;
        }
        path[path.len() - self.path_suffix.len()..]
            .iter()
            .zip(&self.path_suffix)
            .all(|(a, b)| a == b)
    }

    /// Does `doc_key` pass the document restriction?
    pub fn document_matches(&self, doc_key: &str) -> bool {
        self.doc_key.as_deref().is_none_or(|k| k == doc_key)
    }

    /// Does `content` pass the substring restriction?
    pub fn content_matches(&self, content: &str) -> bool {
        self.content_contains
            .as_deref()
            .is_none_or(|needle| content.contains(needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xydelta::Xid;

    fn update_op() -> Op {
        Op::Update { xid: Xid(1), old: "a".into(), new: "b".into() }
    }

    #[test]
    fn filter_dispatch() {
        let up = update_op();
        assert!(OpFilter::Any.accepts(&up));
        assert!(OpFilter::Update.accepts(&up));
        assert!(!OpFilter::Insert.accepts(&up));
        let attr = Op::AttrInsert { element: Xid(1), name: "n".into(), value: "v".into(), pos: 0 };
        assert!(OpFilter::AttrChange.accepts(&attr));
        assert!(!OpFilter::Move.accepts(&attr));
    }

    #[test]
    fn path_suffix_semantics() {
        let s = Subscription::everything("s").at_path(["catalog", "product"]);
        let p = |v: &[&str]| v.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert!(s.path_matches(&p(&["catalog", "product"])));
        assert!(s.path_matches(&p(&["site", "catalog", "product"])));
        assert!(!s.path_matches(&p(&["catalog", "product", "name"])));
        assert!(!s.path_matches(&p(&["product"])));
        let any = Subscription::everything("a");
        assert!(any.path_matches(&p(&[])));
        assert!(any.path_matches(&p(&["x"])));
    }

    #[test]
    fn document_and_content_restrictions() {
        let s = Subscription::everything("s")
            .on_document("doc-1")
            .containing("camera");
        assert!(s.document_matches("doc-1"));
        assert!(!s.document_matches("doc-2"));
        assert!(s.content_matches("a digital camera!"));
        assert!(!s.content_matches("a phone"));
        let open = Subscription::everything("o");
        assert!(open.document_matches("anything"));
        assert!(open.content_matches("anything"));
    }
}
