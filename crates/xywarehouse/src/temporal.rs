//! Temporal queries: "querying the past" (§2).
//!
//! "One might want to ask a query about the past, e.g., ask for the value of
//! some element at some previous time, and to query changes, e.g., ask for
//! the list of items recently introduced in a catalog." Both shapes live
//! here: path queries against any stored version, and path queries against
//! the deltas between versions (which are XML documents themselves).

use crate::repository::{Repository, RepositoryError};
use xydelta::xml_io;
use xyquery::{Path, QueryParseError};
use xytree::Document;

/// Error type for temporal queries.
#[derive(Debug)]
pub enum TemporalError {
    /// Underlying repository problem.
    Repository(RepositoryError),
    /// The path expression does not parse.
    Query(QueryParseError),
    /// A reconstructed version failed to re-parse (storage corruption).
    Corrupt(xytree::ParseError),
}

impl std::fmt::Display for TemporalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemporalError::Repository(e) => write!(f, "{e}"),
            TemporalError::Query(e) => write!(f, "{e}"),
            TemporalError::Corrupt(e) => write!(f, "stored version corrupt: {e}"),
        }
    }
}

impl std::error::Error for TemporalError {}

impl From<RepositoryError> for TemporalError {
    fn from(e: RepositoryError) -> Self {
        TemporalError::Repository(e)
    }
}

impl From<QueryParseError> for TemporalError {
    fn from(e: QueryParseError) -> Self {
        TemporalError::Query(e)
    }
}

impl Repository {
    /// Evaluate a path expression against version `version` of `key` —
    /// "the value of some element at some previous time".
    pub fn query_version(
        &self,
        key: &str,
        version: usize,
        path: &str,
    ) -> Result<Vec<String>, TemporalError> {
        let path = Path::parse(path)?;
        let xml = self.version_xml(key, version)?;
        let doc = Document::parse(&xml).map_err(TemporalError::Corrupt)?;
        Ok(path.select_strings(&doc))
    }

    /// Evaluate a path expression against the latest version of `key`.
    pub fn query_latest(&self, key: &str, path: &str) -> Result<Vec<String>, TemporalError> {
        let path = Path::parse(path)?;
        let xml = self.latest_xml(key)?;
        let doc = Document::parse(&xml).map_err(TemporalError::Corrupt)?;
        Ok(path.select_strings(&doc))
    }

    /// Evaluate a path expression against the (aggregated) delta between two
    /// versions — "ask for the list of items recently introduced in a
    /// catalog" becomes `query_changes(key, i, j, "/delta/insert//item")`.
    pub fn query_changes(
        &self,
        key: &str,
        from: usize,
        to: usize,
        path: &str,
    ) -> Result<Vec<String>, TemporalError> {
        let path = Path::parse(path)?;
        let delta = self.delta_between(key, from, to)?;
        let doc = xml_io::delta_to_document(&delta);
        Ok(path.select_strings(&doc))
    }

    /// The history of one queried value across all versions: element `i` of
    /// the result is the first match of `path` in version `i` (or `None`).
    pub fn value_history(
        &self,
        key: &str,
        path: &str,
    ) -> Result<Vec<Option<String>>, TemporalError> {
        let parsed = Path::parse(path)?;
        let n = self.version_count(key);
        if n == 0 {
            return Err(TemporalError::Repository(RepositoryError::UnknownDocument(
                key.to_string(),
            )));
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let xml = self.version_xml(key, i)?;
            let doc = Document::parse(&xml).map_err(TemporalError::Corrupt)?;
            out.push(parsed.select_strings(&doc).into_iter().next());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog_repo() -> Repository {
        let repo = Repository::new();
        repo.load_version(
            "cat",
            "<catalog><product id='p1'><price>$10</price></product></catalog>",
        )
        .unwrap();
        repo.load_version(
            "cat",
            "<catalog><product id='p1'><price>$12</price></product></catalog>",
        )
        .unwrap();
        repo.load_version(
            "cat",
            "<catalog><product id='p1'><price>$12</price></product>\
             <product id='p2'><price>$99</price></product></catalog>",
        )
        .unwrap();
        repo
    }

    #[test]
    fn value_of_an_element_at_a_previous_time() {
        let repo = catalog_repo();
        assert_eq!(
            repo.query_version("cat", 0, "//product[@id='p1']/price/text()").unwrap(),
            vec!["$10"]
        );
        assert_eq!(
            repo.query_latest("cat", "//product[@id='p1']/price/text()").unwrap(),
            vec!["$12"]
        );
    }

    #[test]
    fn value_history_tracks_all_versions() {
        let repo = catalog_repo();
        let h = repo.value_history("cat", "//product[@id='p1']/price/text()").unwrap();
        assert_eq!(h, vec![Some("$10".into()), Some("$12".into()), Some("$12".into())]);
        let h2 = repo.value_history("cat", "//product[@id='p2']/price/text()").unwrap();
        assert_eq!(h2, vec![None, None, Some("$99".into())]);
    }

    #[test]
    fn recently_introduced_items_via_delta_query() {
        let repo = catalog_repo();
        // "Ask for the list of items recently introduced in a catalog."
        let inserted = repo
            .query_changes("cat", 0, 2, "/delta/insert/product/@id")
            .unwrap();
        assert_eq!(inserted, vec!["p2"]);
        // And the updates over the same range.
        let updated = repo.query_changes("cat", 0, 2, "//update/newval/text()").unwrap();
        assert_eq!(updated, vec!["$12"]);
    }

    #[test]
    fn bad_path_and_bad_key_error() {
        let repo = catalog_repo();
        assert!(matches!(
            repo.query_latest("cat", "/a[").unwrap_err(),
            TemporalError::Query(_)
        ));
        assert!(matches!(
            repo.query_latest("nope", "//a").unwrap_err(),
            TemporalError::Repository(_)
        ));
        assert!(matches!(
            repo.value_history("nope", "//a").unwrap_err(),
            TemporalError::Repository(_)
        ));
    }
}
