//! File-backed persistence for version chains.
//!
//! Figure 1's repository stores documents and their delta sequences. The
//! on-disk layout per document key is deliberately plain XML — "the diff
//! output is stored as an XML document" (§2) — so the files are themselves
//! greppable/queryable:
//!
//! ```text
//! <dir>/<key>/v0.xml          the initial version
//! <dir>/<key>/delta-0001.xml  v0 -> v1
//! <dir>/<key>/delta-0002.xml  v1 -> v2
//! …
//! ```
//!
//! Nothing else is needed: initial XIDs are assigned deterministically
//! (postfix order, §4), and every later version is `v0` plus the deltas, so
//! reloading replays the chain and reproduces the exact XID assignment the
//! writer had.

use crate::repository::RepositoryError;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use xydelta::{xml_io, VersionChain, XidDocument};

/// Errors from saving/loading chains.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// A stored file does not parse as XML or as a delta.
    Corrupt {
        /// Offending file.
        file: PathBuf,
        /// What went wrong.
        message: String,
    },
    /// Replaying a stored delta failed.
    Replay(xydelta::ApplyError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o: {e}"),
            PersistError::Corrupt { file, message } => {
                write!(f, "corrupt store file {}: {message}", file.display())
            }
            PersistError::Replay(e) => write!(f, "stored delta does not replay: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<PersistError> for RepositoryError {
    fn from(e: PersistError) -> Self {
        // Persistence failures surface as reconstruction problems at the
        // repository level; keep the detailed message.
        RepositoryError::UnknownDocument(e.to_string())
    }
}

/// Write a chain to `dir` (created if missing). Only files this module owns
/// (`v0.xml`, `delta-*.xml`, `key.txt`) are replaced or removed — the
/// directory is never wholesale-deleted, so a mistaken path cannot wipe
/// unrelated data.
pub fn save_chain(chain: &VersionChain, dir: &Path) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    // Remove stale chain files from a previous (possibly longer) save.
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name == "v0.xml" || (name.starts_with("delta-") && name.ends_with(".xml")) {
            fs::remove_file(&path)?;
        }
    }
    let v0 = chain
        .version(0)
        .map_err(PersistError::Replay)?;
    fs::write(dir.join("v0.xml"), v0.doc.to_xml())?;
    for i in 0.. {
        let Some(delta) = chain.delta(i) else { break };
        let name = format!("delta-{:04}.xml", i + 1);
        fs::write(dir.join(name), xml_io::delta_to_xml(delta))?;
    }
    Ok(())
}

/// Load a chain from `dir`, replaying every stored delta.
pub fn load_chain(dir: &Path) -> Result<VersionChain, PersistError> {
    let v0_path = dir.join("v0.xml");
    let v0_xml = fs::read_to_string(&v0_path)?;
    let v0_doc = xytree::Document::parse(&v0_xml).map_err(|e| PersistError::Corrupt {
        file: v0_path,
        message: e.to_string(),
    })?;
    let mut chain = VersionChain::new(XidDocument::assign_initial(v0_doc));

    // Collect delta files in order.
    let mut delta_files: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("delta-") && n.ends_with(".xml"))
        })
        .collect();
    delta_files.sort();
    for file in delta_files {
        let xml = fs::read_to_string(&file)?;
        let delta = xml_io::parse_delta(&xml).map_err(|e| PersistError::Corrupt {
            file: file.clone(),
            message: e.to_string(),
        })?;
        chain.push_delta(delta).map_err(PersistError::Replay)?;
    }
    Ok(chain)
}

impl crate::repository::Repository {
    /// Persist every stored document's chain under `dir`: one numbered
    /// subdirectory per key, with the key recorded in `key.txt` (keys are
    /// URLs in the Xyleme setting and may contain path separators) and the
    /// set of live subdirectories in `manifest.txt`. Stale subdirectories
    /// from a previous larger save are dropped from the manifest but never
    /// deleted — this function only ever touches files it wrote itself.
    pub fn save_to(&self, dir: &Path) -> Result<(), PersistError> {
        fs::create_dir_all(dir)?;
        let mut keys = self.keys();
        keys.sort();
        let mut manifest = String::new();
        for (i, key) in keys.iter().enumerate() {
            let sub_name = format!("doc-{i:05}");
            let sub = dir.join(&sub_name);
            let chain = self
                .chain_snapshot(key)
                // INVARIANT: `keys` was listed from the same repository
                // under the same lock scope; no chain can have vanished.
                .expect("listed key must have a chain");
            save_chain(&chain, &sub)?;
            fs::write(sub.join("key.txt"), key)?;
            manifest.push_str(&sub_name);
            manifest.push('\n');
        }
        fs::write(dir.join("manifest.txt"), manifest)?;
        Ok(())
    }

    /// Load a repository previously written by [`Repository::save_to`],
    /// with fresh diff options and alerter.
    pub fn load_from(
        dir: &Path,
        opts: xydiff::DiffOptions,
        alerter: crate::alerter::Alerter,
    ) -> Result<Self, PersistError> {
        let repo = crate::repository::Repository::with_options(opts, alerter);
        let manifest_path = dir.join("manifest.txt");
        let manifest = fs::read_to_string(&manifest_path)?;
        let mut subdirs: Vec<PathBuf> = manifest
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| dir.join(l.trim()))
            .collect();
        subdirs.sort();
        for sub in subdirs {
            let key_file = sub.join("key.txt");
            let key = fs::read_to_string(&key_file)?;
            let chain = load_chain(&sub)?;
            repo.install_chain(key.trim().to_string(), chain);
        }
        Ok(repo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xydiff::{diff, DiffOptions};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "xywarehouse-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn build_chain(versions: &[&str]) -> VersionChain {
        let mut chain =
            VersionChain::new(XidDocument::parse_initial(versions[0]).unwrap());
        for xml in &versions[1..] {
            let doc = xytree::Document::parse(xml).unwrap();
            let r = diff(chain.latest(), &doc, &DiffOptions::default());
            chain.push_version(r.new_version, r.delta);
        }
        chain
    }

    #[test]
    fn save_load_roundtrip_reproduces_every_version() {
        let versions = [
            "<log><e>a</e></log>",
            "<log><e>a</e><e>b</e></log>",
            "<log><e>b</e><e>a!</e></log>",
        ];
        let chain = build_chain(&versions);
        let dir = tmpdir("roundtrip");
        save_chain(&chain, &dir).unwrap();

        let loaded = load_chain(&dir).unwrap();
        assert_eq!(loaded.version_count(), 3);
        for (i, xml) in versions.iter().enumerate() {
            assert_eq!(&loaded.version(i).unwrap().doc.to_xml(), xml, "version {i}");
        }
        // XID assignment is reproduced exactly, so diffing can continue from
        // the loaded chain.
        let next = xytree::Document::parse("<log><e>b</e><e>a!</e><e>c</e></log>").unwrap();
        let r = diff(loaded.latest(), &next, &DiffOptions::default());
        assert_eq!(r.delta.counts().inserts, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn loaded_chain_matches_original_xids() {
        let chain = build_chain(&["<a><b>x</b></a>", "<a><b>y</b></a>"]);
        let dir = tmpdir("xids");
        save_chain(&chain, &dir).unwrap();
        let loaded = load_chain(&dir).unwrap();
        // Same latest XML and the same next-XID counter (continuation-safe).
        assert_eq!(
            loaded.latest().doc.to_xml(),
            chain.latest().doc.to_xml()
        );
        assert_eq!(
            loaded.latest().next_xid_value(),
            chain.latest().next_xid_value()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_delta_is_reported_with_filename() {
        let chain = build_chain(&["<a/>", "<a><b/></a>"]);
        let dir = tmpdir("corrupt");
        save_chain(&chain, &dir).unwrap();
        fs::write(dir.join("delta-0001.xml"), "<not-a-delta/>").unwrap();
        match load_chain(&dir) {
            Err(PersistError::Corrupt { file, .. }) => {
                assert!(file.to_string_lossy().contains("delta-0001"));
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_io_error() {
        assert!(matches!(
            load_chain(Path::new("/nonexistent/xywarehouse-test")),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn repository_save_and_load() {
        let repo = crate::repository::Repository::new();
        repo.load_version("site/a.xml", "<a><v>1</v></a>").unwrap();
        repo.load_version("site/a.xml", "<a><v>2</v></a>").unwrap();
        repo.load_version("site/b.xml", "<b/>").unwrap();
        let dir = tmpdir("repo");
        repo.save_to(&dir).unwrap();

        let loaded = crate::repository::Repository::load_from(
            &dir,
            DiffOptions::default(),
            crate::alerter::Alerter::new(),
        )
        .unwrap();
        let mut keys = loaded.keys();
        keys.sort();
        assert_eq!(keys, vec!["site/a.xml".to_string(), "site/b.xml".to_string()]);
        assert_eq!(loaded.version_count("site/a.xml"), 2);
        assert_eq!(loaded.version_xml("site/a.xml", 0).unwrap(), "<a><v>1</v></a>");
        assert_eq!(loaded.latest_xml("site/a.xml").unwrap(), "<a><v>2</v></a>");
        // And ingest continues seamlessly after reload.
        let out = loaded.load_version("site/a.xml", "<a><v>3</v></a>").unwrap();
        assert_eq!(out.version, 2);
        assert_eq!(out.delta.counts().updates, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_replaces_previous_contents() {
        let dir = tmpdir("replace");
        let chain1 = build_chain(&["<a/>", "<a><b/></a>", "<a><b/><c/></a>"]);
        save_chain(&chain1, &dir).unwrap();
        let chain2 = build_chain(&["<z/>"]);
        save_chain(&chain2, &dir).unwrap();
        let loaded = load_chain(&dir).unwrap();
        assert_eq!(loaded.version_count(), 1);
        assert_eq!(loaded.latest().doc.to_xml(), "<z/>");
        let _ = fs::remove_dir_all(&dir);
    }
}
