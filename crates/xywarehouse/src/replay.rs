//! Replaying a write-ahead delta log into repositories.
//!
//! After a crash, warehouse state is `latest snapshot + log suffix`: the
//! snapshot restore (`SnapshotStore::restore_into`) rebuilds everything a
//! published generation covers, then [`apply_records`] folds the remaining
//! WAL records on top. Replay is **idempotent by version arithmetic**: a
//! record producing a version the chain already has is skipped (the
//! snapshot was taken after that record's effect), a record producing
//! exactly the next version is applied, and anything further ahead is a
//! hard error — log and snapshot disagree about history, which recovery
//! must surface rather than paper over.
//!
//! Every delta record passes the static validator (`xydelta::verify`)
//! *before* it touches a chain, so a record that decodes cleanly (its WAL
//! checksum matched) but carries a semantically corrupt delta is rejected
//! here, exactly like a freshly computed delta would be on the ingest path.

use crate::repository::Repository;
use std::fmt;
use xydelta::{xml_io, VersionChain, XidDocument};
use xytree::Document;
use xywal::Record;

/// What a replay pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Chains created from `Init` records.
    pub initialized: usize,
    /// Delta records applied on top of existing chains.
    pub applied: usize,
    /// Records skipped because the snapshot already covered them.
    pub skipped: usize,
}

impl ReplayStats {
    /// Total records consumed.
    pub fn total(&self) -> usize {
        self.initialized + self.applied + self.skipped
    }
}

/// Why replay stopped. Every variant names the offending record's LSN and
/// key so an operator can find it with `xydiff wal inspect`.
#[derive(Debug)]
pub enum ReplayError {
    /// The record payload does not parse as XML / as a delta.
    Parse {
        /// Record LSN.
        lsn: u64,
        /// Document key.
        key: String,
        /// Parser message.
        message: String,
    },
    /// The delta decoded but failed static verification — it never reaches
    /// the chain.
    Invalid {
        /// Record LSN.
        lsn: u64,
        /// Document key.
        key: String,
        /// Validator message.
        message: String,
    },
    /// The record's version is ahead of the chain: snapshot and log
    /// disagree about history (records lost, or logs mixed up).
    Gap {
        /// Record LSN.
        lsn: u64,
        /// Document key.
        key: String,
        /// The version the chain could accept next.
        expected: u64,
        /// The version the record claims to produce.
        found: u64,
    },
    /// The delta verified but did not apply to the reconstructed chain.
    Apply {
        /// Record LSN.
        lsn: u64,
        /// Document key.
        key: String,
        /// Application error.
        message: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Parse { lsn, key, message } => {
                write!(f, "wal record lsn={lsn} key={key:?} does not parse: {message}")
            }
            ReplayError::Invalid { lsn, key, message } => {
                write!(f, "wal record lsn={lsn} key={key:?} fails delta verification: {message}")
            }
            ReplayError::Gap { lsn, key, expected, found } => write!(
                f,
                "wal record lsn={lsn} key={key:?} produces version {found} but the chain \
                 expects {expected}: log and snapshot disagree"
            ),
            ReplayError::Apply { lsn, key, message } => {
                write!(f, "wal record lsn={lsn} key={key:?} does not apply: {message}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Fold `records` (LSN order) into `shards`, routing each key through
/// `route` exactly like live ingest does. Returns counts; fails fast on
/// the first record that cannot be reconciled.
pub fn apply_records(
    records: &[(u64, Record)],
    shards: &[Repository],
    route: impl Fn(&str) -> usize,
) -> Result<ReplayStats, ReplayError> {
    let mut stats = ReplayStats::default();
    if shards.is_empty() {
        return Ok(stats);
    }
    for (lsn, record) in records {
        let repo = &shards[route(record.key()).min(shards.len() - 1)];
        match record {
            Record::Init { key, xml } => {
                if repo.version_count(key) > 0 {
                    stats.skipped += 1;
                    continue;
                }
                let doc = Document::parse(xml).map_err(|e| ReplayError::Parse {
                    lsn: *lsn,
                    key: key.clone(),
                    message: e.to_string(),
                })?;
                repo.install_chain(key.clone(), VersionChain::new(XidDocument::assign_initial(doc)));
                stats.initialized += 1;
            }
            Record::Delta { key, version, delta_xml } => {
                let have = repo.version_count(key) as u64;
                // A chain with `have` versions stores indices 0..have; the
                // next delta to arrive produces index `have`.
                if *version < have {
                    stats.skipped += 1;
                    continue;
                }
                if *version > have || have == 0 {
                    return Err(ReplayError::Gap {
                        lsn: *lsn,
                        key: key.clone(),
                        expected: have,
                        found: *version,
                    });
                }
                let delta = xml_io::parse_delta(delta_xml).map_err(|e| ReplayError::Parse {
                    lsn: *lsn,
                    key: key.clone(),
                    message: e.to_string(),
                })?;
                xydelta::verify(&delta).map_err(|e| ReplayError::Invalid {
                    lsn: *lsn,
                    key: key.clone(),
                    message: e.to_string(),
                })?;
                repo.append_replayed_delta(key, delta).map_err(|e| ReplayError::Apply {
                    lsn: *lsn,
                    key: key.clone(),
                    message: e.to_string(),
                })?;
                stats.applied += 1;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xywal::Record;

    /// Run `versions` through a live repository, logging exactly what the
    /// ingest server would, and return (reference repo, records).
    fn ingest_and_log(key: &str, versions: &[&str]) -> (Repository, Vec<(u64, Record)>) {
        let repo = Repository::new();
        let mut records = Vec::new();
        let mut lsn = 0;
        for xml in versions {
            let out = repo.load_version(key, xml).unwrap();
            lsn += 1;
            if out.version == 0 {
                let canonical = Document::parse(xml).unwrap().to_xml();
                records.push((lsn, Record::Init { key: key.into(), xml: canonical }));
            } else {
                records.push((
                    lsn,
                    Record::Delta {
                        key: key.into(),
                        version: out.version as u64,
                        delta_xml: xml_io::delta_to_xml(&out.delta),
                    },
                ));
            }
        }
        (repo, records)
    }

    const VERSIONS: [&str; 4] = [
        "<log><e>a</e></log>",
        "<log><e>a</e><e>b</e></log>",
        "<log><e>b</e><e>a!</e></log>",
        "<log><e>b</e></log>",
    ];

    #[test]
    fn full_replay_reproduces_every_version() {
        let (reference, records) = ingest_and_log("doc", &VERSIONS);
        let fresh = vec![Repository::new()];
        let stats = apply_records(&records, &fresh, |_| 0).unwrap();
        assert_eq!(stats, ReplayStats { initialized: 1, applied: 3, skipped: 0 });
        assert_eq!(fresh[0].version_count("doc"), 4);
        for i in 0..4 {
            assert_eq!(
                fresh[0].version_xml("doc", i).unwrap(),
                reference.version_xml("doc", i).unwrap(),
                "version {i}"
            );
        }
        // Ingest continues seamlessly on the replayed chain.
        let out = fresh[0].load_version("doc", "<log><e>z</e></log>").unwrap();
        assert_eq!(out.version, 4);
    }

    #[test]
    fn replay_on_top_of_snapshot_skips_covered_records() {
        let (reference, records) = ingest_and_log("doc", &VERSIONS);
        // Simulate a snapshot taken after version 1: a repo already holding
        // the first two versions.
        let snap = Repository::new();
        snap.load_version("doc", VERSIONS[0]).unwrap();
        snap.load_version("doc", VERSIONS[1]).unwrap();
        let shards = vec![snap];
        let stats = apply_records(&records, &shards, |_| 0).unwrap();
        assert_eq!(stats, ReplayStats { initialized: 0, applied: 2, skipped: 2 });
        for i in 0..4 {
            assert_eq!(
                shards[0].version_xml("doc", i).unwrap(),
                reference.version_xml("doc", i).unwrap()
            );
        }
    }

    #[test]
    fn replay_routes_keys_across_shards() {
        let (_, mut records) = ingest_and_log("a", &VERSIONS[..2]);
        let (_, more) = ingest_and_log("b", &VERSIONS[2..]);
        records.extend(more);
        let shards = vec![Repository::new(), Repository::new()];
        let stats = apply_records(&records, &shards, |k| usize::from(k == "b")).unwrap();
        assert_eq!(stats.total(), 4);
        assert_eq!(shards[0].version_count("a"), 2);
        assert_eq!(shards[0].version_count("b"), 0);
        assert_eq!(shards[1].version_count("b"), 2);
    }

    #[test]
    fn version_gap_is_a_hard_error() {
        let (_, records) = ingest_and_log("doc", &VERSIONS);
        // Drop the init + first delta: the remaining records are ahead of
        // an empty warehouse.
        let fresh = vec![Repository::new()];
        match apply_records(&records[2..], &fresh, |_| 0) {
            Err(ReplayError::Gap { expected, found, .. }) => {
                assert_eq!(expected, 0);
                assert_eq!(found, 2);
            }
            other => panic!("expected Gap, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_delta_is_rejected_before_reaching_the_chain() {
        let (_, mut records) = ingest_and_log("doc", &VERSIONS);
        // Corrupt the payload of the second delta while keeping it
        // well-formed XML: swap in a delta whose ops are inconsistent
        // (an update on a node XID that its own v-attr contradicts).
        let bogus = "<delta><update xid=\"99\" old=\"x\" new=\"y\"/></delta>";
        if let Record::Delta { delta_xml, .. } = &mut records[2].1 {
            *delta_xml = bogus.to_string();
        } else {
            panic!("record 2 should be a delta");
        }
        let fresh = vec![Repository::new()];
        let err = apply_records(&records, &fresh, |_| 0).unwrap_err();
        assert!(
            matches!(err, ReplayError::Parse { .. } | ReplayError::Invalid { .. }),
            "got {err:?}"
        );
        // The failing record was not applied; the chain holds only what
        // preceded it.
        assert_eq!(fresh[0].version_count("doc"), 2);
    }

    #[test]
    fn unparsable_init_reports_lsn_and_key() {
        let records = vec![(7u64, Record::Init { key: "k".into(), xml: "<broken".into() })];
        let fresh = vec![Repository::new()];
        match apply_records(&records, &fresh, |_| 0) {
            Err(ReplayError::Parse { lsn, key, .. }) => {
                assert_eq!(lsn, 7);
                assert_eq!(key, "k");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert_eq!(apply_records(&[], &[Repository::new()], |_| 0).unwrap().total(), 0);
        let (_, records) = ingest_and_log("doc", &VERSIONS[..1]);
        assert_eq!(apply_records(&records, &[], |_| 0).unwrap().total(), 0);
    }
}
