//! The Xyleme-Change pipeline (Figure 1 of the paper).
//!
//! "When a new version of a document V(n) is received (or crawled from the
//! web), it is installed in the repository. It is then sent to the diff
//! module that also acquires the previous version V(n−1) from the
//! repository. The diff module computes a delta … appended to the existing
//! sequence of deltas for this document. The old version is then possibly
//! removed from the repository. The alerter is in charge of detecting, in
//! the document V(n) or in the delta, patterns that may interest some
//! subscriptions." (§2)
//!
//! This crate wires the pieces built elsewhere into that loop:
//!
//! - [`Repository`] — a concurrent in-memory store mapping document keys to
//!   version chains (latest snapshot + delta sequence), fed by
//!   [`Repository::load_version`] which runs the BULD diff;
//! - [`Subscription`] / [`Alerter`] — the monitoring side: label-path
//!   patterns over delta operations ("e.g., that a new product has been
//!   added to a catalog"), evaluated against every incoming delta;
//! - temporal queries — any past version or any delta range can be
//!   reconstructed ("querying the past").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alerter;
pub mod persist;
pub mod replay;
pub mod repository;
pub mod snapshot;
pub mod stats;
pub mod temporal;
pub mod subscription;

pub use alerter::{Alerter, Notification, SchemaWarning};
pub use persist::{load_chain, save_chain, PersistError};
pub use replay::{ReplayError, ReplayStats};
pub use repository::{LoadOutcome, Repository, RepositoryError};
pub use snapshot::SnapshotStore;
pub use stats::ChangeStats;
pub use temporal::TemporalError;
pub use subscription::{OpFilter, Subscription};
