//! Regression tests: persistence round-trips for edge-case documents.
//!
//! The Xyleme setting ingests arbitrary crawled XML, so the store must
//! survive documents that stress the serializer/parser boundary: text that
//! becomes empty across versions, non-ASCII content in every syntactic
//! position, and elements that carry only attributes. Each test saves a
//! chain built through the real diff pipeline, reloads it, and requires
//! every reconstructed version byte-for-byte.

use std::fs;
use std::path::PathBuf;
use xydelta::{VersionChain, XidDocument};
use xydiff::{diff, DiffOptions};
use xywarehouse::{load_chain, save_chain, Alerter, Repository};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("xywh-edge-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn build_chain(versions: &[&str]) -> VersionChain {
    let mut chain = VersionChain::new(XidDocument::parse_initial(versions[0]).unwrap());
    for xml in &versions[1..] {
        let doc = xytree::Document::parse(xml).unwrap();
        let r = diff(chain.latest(), &doc, &DiffOptions::default());
        chain.push_version(r.new_version, r.delta);
    }
    chain
}

/// Save, load, and require every reloaded version to serialize exactly as
/// the in-memory chain's version did — the store must not lose or reorder
/// anything the data model keeps.
fn roundtrip(tag: &str, versions: &[&str]) -> VersionChain {
    let chain = build_chain(versions);
    let dir = tmpdir(tag);
    save_chain(&chain, &dir).unwrap();
    let loaded = load_chain(&dir).unwrap();
    assert_eq!(loaded.version_count(), versions.len(), "version count after reload");
    for i in 0..versions.len() {
        assert_eq!(
            loaded.version(i).unwrap().doc.to_xml(),
            chain.version(i).unwrap().doc.to_xml(),
            "version {i} of case {tag}"
        );
    }
    assert_eq!(
        loaded.latest().next_xid_value(),
        chain.latest().next_xid_value(),
        "XID counter must survive reload so diffing can continue"
    );
    let _ = fs::remove_dir_all(&dir);
    chain
}

/// [`roundtrip`], plus the stronger requirement that every version also
/// matches its source string byte-for-byte — valid when the input is already
/// in the serializer's canonical form (no entity-escape or whitespace-only
/// content the data model normalizes).
fn roundtrip_exact(tag: &str, versions: &[&str]) {
    let chain = roundtrip(tag, versions);
    for (i, xml) in versions.iter().enumerate() {
        assert_eq!(
            &chain.version(i).unwrap().doc.to_xml(),
            xml,
            "reconstructed version {i} of case {tag} vs source"
        );
    }
}

#[test]
fn text_that_becomes_empty_and_returns() {
    // A text node whose content is updated to nothing and back: the delta
    // carries an empty update value, and on reload the replay must agree.
    roundtrip_exact(
        "empty-text",
        &[
            "<note><body>hello</body><tag>x</tag></note>",
            "<note><body/><tag>x</tag></note>",
            "<note><body>back</body><tag>x</tag></note>",
        ],
    );
}

#[test]
fn whitespace_only_text_survives() {
    // The parser drops whitespace-only text nodes (default ParseOptions), so
    // the source is not canonical; the store-fidelity contract still holds.
    let _ = roundtrip(
        "ws-text",
        &[
            "<pre><code> indented </code></pre>",
            "<pre><code>  </code></pre>",
            "<pre><code> indented\tagain </code></pre>",
        ],
    );
}

#[test]
fn non_ascii_content_roundtrips() {
    roundtrip_exact(
        "non-ascii",
        &[
            "<menu><dish>crème brûlée</dish><price>€7</price></menu>",
            "<menu><dish>crème brûlée</dish><dish>日本料理</dish><price>€9</price></menu>",
            "<menu><dish>🍮 crème</dish><dish>日本料理</dish><price>€9</price></menu>",
        ],
    );
}

#[test]
fn non_ascii_attribute_values_roundtrip() {
    roundtrip_exact(
        "non-ascii-attrs",
        &[
            "<city name=\"Zürich\"><pop>400000</pop></city>",
            "<city name=\"São Paulo\"><pop>12000000</pop></city>",
        ],
    );
}

#[test]
fn attribute_only_elements_roundtrip() {
    roundtrip_exact(
        "attr-only",
        &[
            "<cfg><opt key=\"a\" value=\"1\"/><opt key=\"b\" value=\"2\"/></cfg>",
            "<cfg><opt key=\"a\" value=\"9\"/><opt key=\"c\" value=\"3\"/></cfg>",
            "<cfg><opt key=\"c\" value=\"3\"/></cfg>",
        ],
    );
}

#[test]
fn markup_characters_in_text_and_attributes() {
    // `&quot;` parses to a plain `"`, which the serializer does not
    // re-escape in text content, so the source is not canonical.
    let _ = roundtrip(
        "escapes",
        &[
            "<m a=\"x&amp;y\">1 &lt; 2 &amp; 3 &gt; 2</m>",
            "<m a=\"x&amp;y&lt;z\">now &quot;quoted&quot;</m>",
        ],
    );
}

#[test]
fn deep_nesting_with_mixed_edge_cases() {
    roundtrip_exact(
        "mixed",
        &[
            "<r><e/><t>é</t><a k=\"v\"/></r>",
            "<r><e><sub/></e><t>é…ö</t><a k=\"v\" l=\"w\"/></r>",
            "<r><t>é…ö</t><a l=\"w\"/></r>",
        ],
    );
}

/// The repository-level save/load path with edge-case documents and a live
/// alerter, continuing ingestion after reload.
#[test]
fn repository_roundtrip_with_edge_documents() {
    let repo = Repository::new();
    repo.load_version("u/é.xml", "<doc><t>héllo</t></doc>").unwrap();
    repo.load_version("u/é.xml", "<doc><t/></doc>").unwrap();
    repo.load_version("attrs", "<a k=\"1\"/>").unwrap();
    let dir = tmpdir("repo-edge");
    repo.save_to(&dir).unwrap();

    let loaded = Repository::load_from(&dir, DiffOptions::default(), Alerter::new()).unwrap();
    assert_eq!(loaded.version_xml("u/é.xml", 0).unwrap(), "<doc><t>héllo</t></doc>");
    assert_eq!(loaded.latest_xml("u/é.xml").unwrap(), "<doc><t/></doc>");
    assert_eq!(loaded.latest_xml("attrs").unwrap(), "<a k=\"1\"/>");
    let out = loaded.load_version("u/é.xml", "<doc><t>again</t></doc>").unwrap();
    assert_eq!(out.version, 2);
    let _ = fs::remove_dir_all(&dir);
}
