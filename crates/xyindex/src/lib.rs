//! Full-text indexing with structural postings, maintained from deltas.
//!
//! §2 of the paper: "In Xyleme, we maintain a full-text index over a large
//! volume of XML documents. To support queries using the structure of data,
//! we store structural information for every indexed word of the document.
//! We are considering the possibility to use the diff to maintain such
//! indexes." — this crate implements exactly that possibility: a
//! [`DocumentIndex`] built from a version can be kept in sync with the
//! document by feeding it the delta stream ([`DocumentIndex::apply_delta`]),
//! and the incremental result is identical to a full rebuild (property
//! tested against the change simulator).
//!
//! Postings are structural: every word maps to the set of text nodes (by
//! persistent XID, so postings survive versions) that contain it, each
//! posting carrying the label of the enclosing element — enough to answer
//! "documents where *camera* occurs inside a `<title>`".
//!
//! ```
//! use xydelta::XidDocument;
//! use xyindex::DocumentIndex;
//!
//! let doc = XidDocument::parse_initial(
//!     "<catalog><title>digital cameras</title><note>film cameras</note></catalog>",
//! ).unwrap();
//! let index = DocumentIndex::build(&doc);
//! assert_eq!(index.postings("cameras").len(), 2);
//! assert_eq!(index.postings_under("cameras", "title").len(), 1);
//! assert!(index.postings("tripod").is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tokenize;

pub use tokenize::tokenize;

use std::collections::BTreeMap;
use xydelta::{Delta, Op, Xid, XidDocument, XidMap};
use xytree::hash::{fast_map, FastHashMap};
use xytree::{NodeId, NodeKind, Tree};

/// One occurrence record: a word occurs in the text node `text_node`, which
/// sits under an element labeled `parent_label`, `count` times.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Posting {
    /// Persistent identifier of the text node.
    pub text_node: Xid,
    /// Label of the enclosing element (`#root` for top-level text).
    pub parent_label: String,
    /// Occurrences of the word within the node.
    pub count: u32,
}

/// A full-text index over one versioned document.
#[derive(Debug, Clone, Default)]
pub struct DocumentIndex {
    /// word → (text-node xid → (parent label, count)).
    by_word: FastHashMap<String, BTreeMap<Xid, (String, u32)>>,
    /// text-node xid → the words it contributes (for removal).
    by_node: FastHashMap<Xid, Vec<String>>,
}

impl DocumentIndex {
    /// An empty index.
    pub fn new() -> DocumentIndex {
        DocumentIndex::default()
    }

    /// Index every text node of `doc`.
    pub fn build(doc: &XidDocument) -> DocumentIndex {
        let mut idx = DocumentIndex::new();
        let t = &doc.doc.tree;
        for n in t.descendants(t.root()) {
            if let NodeKind::Text(content) = t.kind(n) {
                let xid = doc.xid(n).expect("attached node carries an XID");
                let label = parent_label(t, n);
                idx.add_text(xid, &label, content);
            }
        }
        idx
    }

    /// Postings for `word` (case-insensitive), ordered by text-node XID.
    pub fn postings(&self, word: &str) -> Vec<Posting> {
        let needle = word.to_lowercase();
        self.by_word
            .get(&needle)
            .map(|m| {
                m.iter()
                    .map(|(&xid, (label, count))| Posting {
                        text_node: xid,
                        parent_label: label.clone(),
                        count: *count,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Postings for `word` restricted to text under elements labeled
    /// `label` — the "structural information" query of §2.
    pub fn postings_under(&self, word: &str, label: &str) -> Vec<Posting> {
        self.postings(word)
            .into_iter()
            .filter(|p| p.parent_label == label)
            .collect()
    }

    /// True when `word` occurs anywhere.
    pub fn contains(&self, word: &str) -> bool {
        self.by_word
            .get(&word.to_lowercase())
            .is_some_and(|m| !m.is_empty())
    }

    /// Number of distinct indexed words.
    pub fn word_count(&self) -> usize {
        self.by_word.values().filter(|m| !m.is_empty()).count()
    }

    /// Total `(word, text node)` posting pairs.
    pub fn posting_count(&self) -> usize {
        self.by_word.values().map(BTreeMap::len).sum()
    }

    /// Maintain the index across one version step: `delta` transforms the
    /// version this index reflects into `new`. After the call the index is
    /// identical to `DocumentIndex::build(new)`.
    ///
    /// Work is proportional to the *changed* text, not the document — the
    /// paper's motivation for diff-driven index maintenance.
    pub fn apply_delta(&mut self, delta: &Delta, new: &XidDocument) {
        for op in &delta.ops {
            match op {
                Op::Delete { subtree, xid_map, .. } => {
                    // Indexing runs on stored (owned) deltas past the
                    // into_owned boundary.
                    let subtree = subtree.tree();
                    self.walk_stored(subtree, xid_map, &mut |idx, xid, _node, _label, _text| {
                        idx.remove_node(xid);
                    });
                }
                Op::Insert { subtree, xid_map, parent, .. } => {
                    let subtree = subtree.tree();
                    // The stored tree's own root is a wrapper: a text node
                    // inserted directly under `parent` must take its label
                    // from the *target* element in the new version.
                    let target_label = new
                        .node(*parent)
                        .and_then(|n| new.doc.tree.name(n))
                        .unwrap_or("#root")
                        .to_string();
                    let content_root = subtree.first_child(subtree.root());
                    self.walk_stored(subtree, xid_map, &mut |idx, xid, node, label, text| {
                        let label =
                            if Some(node) == content_root { target_label.clone() } else { label };
                        idx.add_text(xid, &label, text);
                    });
                }
                Op::Update { xid, new: new_text, .. } => {
                    self.remove_node(*xid);
                    let label = new
                        .node(*xid)
                        .map(|n| parent_label(&new.doc.tree, n))
                        .unwrap_or_else(|| "#root".to_string());
                    self.add_text(*xid, &label, new_text);
                }
                Op::Move { xid, .. } => {
                    // Structural info changes only when the moved node is a
                    // text node (its enclosing element changed).
                    if let Some(n) = new.node(*xid) {
                        if let NodeKind::Text(content) = new.doc.tree.kind(n) {
                            let label = parent_label(&new.doc.tree, n);
                            self.remove_node(*xid);
                            self.add_text(*xid, &label, content);
                        }
                    }
                }
                Op::AttrInsert { .. } | Op::AttrDelete { .. } | Op::AttrUpdate { .. } => {}
            }
        }
    }

    /// Walk a stored op subtree in postfix order, pairing nodes with their
    /// XIDs from the op's XID-map, and invoke `f` on every text node.
    fn walk_stored(
        &mut self,
        subtree: &Tree,
        xid_map: &XidMap,
        f: &mut dyn FnMut(&mut Self, Xid, NodeId, String, &str),
    ) {
        let Some(content_root) = subtree.first_child(subtree.root()) else {
            return;
        };
        let nodes: Vec<NodeId> = subtree.post_order(content_root).collect();
        debug_assert_eq!(nodes.len(), xid_map.len(), "op XID-map must cover its subtree");
        for (n, &xid) in nodes.iter().zip(xid_map.xids()) {
            if let NodeKind::Text(content) = subtree.kind(*n) {
                let label = parent_label(subtree, *n);
                f(self, xid, *n, label, content);
            }
        }
    }

    fn add_text(&mut self, xid: Xid, label: &str, content: &str) {
        let mut words: Vec<String> = Vec::new();
        let mut counts: FastHashMap<String, u32> = fast_map();
        for w in tokenize(content) {
            *counts.entry(w).or_insert(0) += 1;
        }
        for (w, c) in counts {
            self.by_word
                .entry(w.clone())
                .or_default()
                .insert(xid, (label.to_string(), c));
            words.push(w);
        }
        if !words.is_empty() {
            self.by_node.insert(xid, words);
        }
    }

    fn remove_node(&mut self, xid: Xid) {
        let Some(words) = self.by_node.remove(&xid) else { return };
        for w in words {
            if let Some(m) = self.by_word.get_mut(&w) {
                m.remove(&xid);
                if m.is_empty() {
                    self.by_word.remove(&w);
                }
            }
        }
    }

    /// Structural equality with another index (used to check incremental ==
    /// rebuilt).
    pub fn same_as(&self, other: &DocumentIndex) -> bool {
        if self.posting_count() != other.posting_count() {
            return false;
        }
        self.by_word.iter().all(|(w, m)| {
            other
                .by_word
                .get(w)
                .is_some_and(|om| om == m)
        })
    }
}

/// Label of the element enclosing `node` (its parent), or `#root`.
fn parent_label(tree: &Tree, node: NodeId) -> String {
    tree.parent(node)
        .and_then(|p| tree.name(p))
        .unwrap_or("#root")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xd(xml: &str) -> XidDocument {
        XidDocument::parse_initial(xml).unwrap()
    }

    #[test]
    fn build_indexes_all_text() {
        let d = xd("<a><t>hello world</t><u>hello again</u></a>");
        let idx = DocumentIndex::build(&d);
        assert_eq!(idx.postings("hello").len(), 2);
        assert_eq!(idx.postings("world").len(), 1);
        assert_eq!(idx.postings("nothing").len(), 0);
        assert!(idx.contains("AGAIN"), "lookups are case-insensitive");
        assert_eq!(idx.word_count(), 3); // hello, world, again
    }

    #[test]
    fn postings_carry_structure() {
        let d = xd("<cat><title>digital camera</title><desc>camera body</desc></cat>");
        let idx = DocumentIndex::build(&d);
        assert_eq!(idx.postings_under("camera", "title").len(), 1);
        assert_eq!(idx.postings_under("camera", "desc").len(), 1);
        assert_eq!(idx.postings_under("camera", "price").len(), 0);
    }

    #[test]
    fn counts_repeated_words() {
        let d = xd("<a><t>spam spam spam egg</t></a>");
        let idx = DocumentIndex::build(&d);
        assert_eq!(idx.postings("spam")[0].count, 3);
        assert_eq!(idx.postings("egg")[0].count, 1);
    }

    #[test]
    fn empty_document_empty_index() {
        let d = xd("<a/>");
        let idx = DocumentIndex::build(&d);
        assert_eq!(idx.word_count(), 0);
        assert_eq!(idx.posting_count(), 0);
    }
}
