//! Word tokenization for the full-text index.

/// Split text into lowercase alphanumeric words. Words shorter than two
/// characters are dropped (classic full-text behavior; single letters are
/// noise in the catalog/feed workloads).
pub fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.chars().count() >= 2)
        .map(str::to_lowercase)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s).collect()
    }

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(toks("Hello, world! x2"), ["hello", "world", "x2"]);
    }

    #[test]
    fn drops_single_characters() {
        assert_eq!(toks("a b cd e"), ["cd"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(toks("XyDiff BULD"), ["xydiff", "buld"]);
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(toks("café déjà-vu"), ["café", "déjà", "vu"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(toks("").is_empty());
        assert!(toks("!@# $%").is_empty());
    }
}
