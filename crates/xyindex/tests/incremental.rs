//! The headline property of diff-driven index maintenance (§2): feeding the
//! delta stream into the index yields exactly the index a full rebuild
//! produces — across document kinds, change rates, and long version chains.

use xydelta::XidDocument;
use xydiff::{diff, DiffOptions};
use xyindex::DocumentIndex;
use xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};

fn check_incremental(kind: DocKind, nodes: usize, rate: f64, steps: u64, seed: u64) {
    let doc = generate(&DocGenConfig { kind, target_nodes: nodes, seed, id_attributes: false });
    let mut current = XidDocument::assign_initial(doc);
    let mut index = DocumentIndex::build(&current);
    for step in 0..steps {
        let sim = simulate(&current, &ChangeConfig::uniform(rate, seed * 1000 + step));
        // Run the real diff (not the simulator's perfect delta) so the index
        // sees exactly what the warehouse pipeline would feed it.
        let r = diff(&current, &sim.new_version.doc, &DiffOptions::default());
        index.apply_delta(&r.delta, &r.new_version);
        current = r.new_version;
        let rebuilt = DocumentIndex::build(&current);
        assert!(
            index.same_as(&rebuilt),
            "{kind:?} step {step}: incremental index diverged \
             (incremental {} postings vs rebuilt {})",
            index.posting_count(),
            rebuilt.posting_count()
        );
    }
}

#[test]
fn catalog_chain_stays_in_sync() {
    check_incremental(DocKind::Catalog, 600, 0.1, 4, 1);
}

#[test]
fn addressbook_chain_stays_in_sync() {
    check_incremental(DocKind::AddressBook, 500, 0.1, 3, 2);
}

#[test]
fn feed_chain_stays_in_sync() {
    check_incremental(DocKind::Feed, 500, 0.15, 3, 3);
}

#[test]
fn heavy_churn_stays_in_sync() {
    check_incremental(DocKind::Catalog, 300, 0.4, 3, 4);
}

#[test]
fn move_heavy_stream_stays_in_sync() {
    let doc = generate(&DocGenConfig {
        kind: DocKind::Catalog,
        target_nodes: 500,
        seed: 9,
        id_attributes: false,
    });
    let mut current = XidDocument::assign_initial(doc);
    let mut index = DocumentIndex::build(&current);
    for step in 0..3 {
        let cfg = ChangeConfig { p_delete: 0.1, p_update: 0.0, p_insert: 0.0, p_move: 0.4, seed: step };
        let sim = simulate(&current, &cfg);
        let r = diff(&current, &sim.new_version.doc, &DiffOptions::default());
        index.apply_delta(&r.delta, &r.new_version);
        current = r.new_version;
        assert!(index.same_as(&DocumentIndex::build(&current)), "step {step}");
    }
}

#[test]
fn incremental_update_example_from_the_paper() {
    // "That a new product has been added to a catalog" must become findable
    // the moment its delta is indexed.
    let v0 = XidDocument::parse_initial(
        "<catalog><product><name>old camera</name></product></catalog>",
    )
    .unwrap();
    let mut index = DocumentIndex::build(&v0);
    assert!(!index.contains("telescope"));

    let v1 = xytree::Document::parse(
        "<catalog><product><name>old camera</name></product>\
         <product><name>shiny telescope</name></product></catalog>",
    )
    .unwrap();
    let r = diff(&v0, &v1, &DiffOptions::default());
    index.apply_delta(&r.delta, &r.new_version);
    assert!(index.contains("telescope"));
    assert_eq!(index.postings_under("telescope", "name").len(), 1);
    // And the posting's XID is live in the new version.
    let posting = &index.postings("telescope")[0];
    assert!(r.new_version.node(posting.text_node).is_some());
}
