//! Properties of path evaluation over random documents.

use proptest::prelude::*;
use xyquery::Path;
use xytree::{Document, ElementBuilder};

const NAMES: &[&str] = &["a", "b", "c", "item"];

#[derive(Debug, Clone)]
struct Spec {
    name: usize,
    attr: Option<String>,
    text: Option<String>,
    children: Vec<Spec>,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    let leaf = (0usize..NAMES.len(), proptest::option::of("[a-z]{1,4}"))
        .prop_map(|(name, text)| Spec { name, attr: None, text, children: vec![] });
    leaf.prop_recursive(3, 32, 4, |inner| {
        (
            0usize..NAMES.len(),
            proptest::option::of("[a-z0-9]{0,3}"),
            proptest::option::of("[a-z]{1,4}"),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attr, text, children)| Spec { name, attr, text, children })
    })
}

fn build(spec: &Spec) -> ElementBuilder {
    let mut e = ElementBuilder::new(NAMES[spec.name]);
    if let Some(a) = &spec.attr {
        e = e.attr("k", a.clone());
    }
    if let Some(t) = &spec.text {
        e = e.text(t.clone());
    }
    for c in &spec.children {
        e = e.child(build(c));
    }
    e
}

fn doc(spec: &Spec) -> Document {
    ElementBuilder::new("root").child(build(spec)).into_document()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `//name` finds exactly the elements a manual traversal finds.
    #[test]
    fn descendant_search_is_complete(spec in arb_spec(), which in 0usize..NAMES.len()) {
        let d = doc(&spec);
        let name = NAMES[which];
        let got = Path::parse(&format!("//{name}")).unwrap().select_doc(&d).len();
        let want = d
            .tree
            .descendants(d.tree.root())
            .filter(|&n| d.tree.name(n) == Some(name))
            .count();
        prop_assert_eq!(got, want);
    }

    /// Results are unique and in document order.
    #[test]
    fn results_unique_and_ordered(spec in arb_spec()) {
        let d = doc(&spec);
        let hits = Path::parse("//*").unwrap().select_doc(&d);
        let mut seen = std::collections::HashSet::new();
        prop_assert!(hits.iter().all(|n| seen.insert(*n)), "duplicates in results");
        // Document order: index within a pre-order enumeration increases.
        let order: std::collections::HashMap<_, _> = d
            .tree
            .descendants(d.tree.root())
            .enumerate()
            .map(|(i, n)| (n, i))
            .collect();
        let idx: Vec<usize> = hits.iter().map(|n| order[n]).collect();
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]), "not in document order: {idx:?}");
    }

    /// `//x[@k]` ⊆ `//x`, and every hit really has the attribute.
    #[test]
    fn attr_predicate_is_a_filter(spec in arb_spec(), which in 0usize..NAMES.len()) {
        let d = doc(&spec);
        let name = NAMES[which];
        let all: std::collections::HashSet<_> =
            Path::parse(&format!("//{name}")).unwrap().select_doc(&d).into_iter().collect();
        let with_attr = Path::parse(&format!("//{name}[@k]")).unwrap().select_doc(&d);
        for n in &with_attr {
            prop_assert!(all.contains(n));
            prop_assert!(d.tree.attr(*n, "k").is_some());
        }
    }

    /// Positional `[1]` on the child axis returns at most one node per
    /// parent, and it is that parent's first matching child.
    #[test]
    fn first_position_semantics(spec in arb_spec(), which in 0usize..NAMES.len()) {
        let d = doc(&spec);
        let name = NAMES[which];
        let firsts = Path::parse(&format!("//*/{name}[1]")).unwrap().select_doc(&d);
        for n in firsts {
            let parent = d.tree.parent(n).unwrap();
            let first_matching = d
                .tree
                .children(parent)
                .find(|&c| d.tree.name(c) == Some(name))
                .unwrap();
            prop_assert_eq!(n, first_matching);
        }
    }

    /// text() output equals the concatenation semantics of deep_text on
    /// text nodes.
    #[test]
    fn text_output_matches_node_content(spec in arb_spec()) {
        let d = doc(&spec);
        let texts = Path::parse("//text()").unwrap().select_strings(&d);
        let manual: Vec<String> = d
            .tree
            .descendants(d.tree.root())
            .filter_map(|n| d.tree.text(n).map(str::to_string))
            .collect();
        prop_assert_eq!(texts, manual);
    }
}
