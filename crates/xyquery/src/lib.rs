//! A small XPath-like path language over [`xytree`] documents.
//!
//! Motivation, from §2 of the paper: "Since the diff output is stored as an
//! XML document, namely a delta, such queries are regular queries over
//! documents" — versions *and* deltas are XML, so one query engine serves
//! "querying the past" ("ask for the value of some element at some previous
//! time"), change queries ("ask for the list of items recently introduced in
//! a catalog"), and subscription-style matching. Xyleme had full query
//! languages (XML-QL/XQL); this crate implements the pragmatic core used by
//! the warehouse layer:
//!
//! ```text
//! /catalog/product            child steps from the root
//! //product                   descendant-or-self search
//! /catalog/*/name             wildcard element test
//! //product[@id='p1']         attribute equality predicate
//! //product[@id]              attribute presence predicate
//! //price[text()='$499']      text equality predicate
//! //name[contains(text(),'cam')]  substring predicate
//! /catalog/product[2]         1-based position among siblings
//! //product/text()            trailing text() selects text nodes
//! //product/@id               trailing @attr selects attribute values
//! ```
//!
//! # Example
//!
//! ```
//! use xytree::Document;
//! use xyquery::Path;
//!
//! let doc = Document::parse(
//!     "<catalog><product id='p1'><name>cam</name></product>\
//!      <product id='p2'><name>phone</name></product></catalog>",
//! ).unwrap();
//! let path = Path::parse("//product[@id='p2']/name/text()").unwrap();
//! assert_eq!(path.select_strings(&doc), vec!["phone"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod parse;

pub use parse::QueryParseError;

use xytree::{Document, NodeId, Tree};

/// Which relationship a step traverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Direct children (`/step`).
    Child,
    /// All descendants (`//step`).
    Descendant,
}

/// What a step selects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// Elements with this label.
    Name(String),
    /// Any element (`*`).
    AnyElement,
    /// Text nodes (`text()`).
    Text,
}

/// A filter applied to a step's matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `[@name='value']`
    AttrEquals(String, String),
    /// `[@name]`
    AttrExists(String),
    /// `[text()='value']` — compares the concatenated text content.
    TextEquals(String),
    /// `[contains(text(),'needle')]`
    TextContains(String),
    /// `[n]` — 1-based position among this step's matches under the same
    /// parent (child axis) or in document order (descendant axis).
    Position(usize),
}

/// One step of a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Traversal axis.
    pub axis: Axis,
    /// Node test.
    pub test: NodeTest,
    /// Filters, applied in order.
    pub predicates: Vec<Predicate>,
}

/// What the path ultimately produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output {
    /// The matched nodes themselves.
    Nodes,
    /// Their concatenated text (`…/text()` yields the text nodes' content;
    /// on element results the deep text).
    Text,
    /// The value of an attribute (`…/@name`).
    Attr(String),
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    steps: Vec<Step>,
    output: Output,
}

impl Path {
    /// Parse a path expression.
    pub fn parse(input: &str) -> Result<Path, QueryParseError> {
        parse::parse(input)
    }

    /// The parsed steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// What the path produces.
    pub fn output(&self) -> &Output {
        &self.output
    }

    /// Nodes matched by the path, in document order, starting from the
    /// document root of `tree`.
    pub fn select(&self, tree: &Tree) -> Vec<NodeId> {
        eval::select(self, tree, tree.root())
    }

    /// Nodes matched by the path when evaluated against a [`Document`].
    pub fn select_doc(&self, doc: &Document) -> Vec<NodeId> {
        self.select(&doc.tree)
    }

    /// String results: text content or attribute values, depending on the
    /// path's trailing `text()` / `@attr`, else the deep text of matches.
    pub fn select_strings(&self, doc: &Document) -> Vec<String> {
        eval::select_strings(self, &doc.tree)
    }

    /// First match's string result, if any.
    pub fn select_first_string(&self, doc: &Document) -> Option<String> {
        self.select_strings(doc).into_iter().next()
    }

    /// True when the path matches at least one node.
    pub fn matches(&self, doc: &Document) -> bool {
        !self.select_doc(doc).is_empty()
    }
}

/// One-shot convenience: parse and select strings.
pub fn query(doc: &Document, path: &str) -> Result<Vec<String>, QueryParseError> {
    Ok(Path::parse(path)?.select_strings(doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse(
            "<catalog>\
             <category name=\"cameras\">\
             <product id=\"p1\"><name>alpha cam</name><price>$10</price></product>\
             <product id=\"p2\"><name>beta cam</name><price>$20</price></product>\
             </category>\
             <category name=\"phones\">\
             <product id=\"p3\"><name>gamma phone</name><price>$30</price></product>\
             </category>\
             </catalog>",
        )
        .unwrap()
    }

    #[test]
    fn child_steps() {
        let d = doc();
        assert_eq!(query(&d, "/catalog/category/product/name").unwrap().len(), 3);
        assert_eq!(query(&d, "/catalog/product").unwrap().len(), 0, "child, not descendant");
    }

    #[test]
    fn descendant_steps() {
        let d = doc();
        assert_eq!(query(&d, "//product").unwrap().len(), 3);
        assert_eq!(query(&d, "//name/text()").unwrap(), vec![
            "alpha cam", "beta cam", "gamma phone"
        ]);
    }

    #[test]
    fn wildcard() {
        let d = doc();
        assert_eq!(query(&d, "/catalog/*").unwrap().len(), 2);
        assert_eq!(query(&d, "/catalog/*/product").unwrap().len(), 3);
    }

    #[test]
    fn attribute_predicates() {
        let d = doc();
        assert_eq!(query(&d, "//product[@id='p2']/name/text()").unwrap(), vec!["beta cam"]);
        assert_eq!(query(&d, "//category[@name]").unwrap().len(), 2);
        assert_eq!(query(&d, "//product[@id='nope']").unwrap().len(), 0);
    }

    #[test]
    fn text_predicates() {
        let d = doc();
        assert_eq!(
            query(&d, "//product/price[text()='$20']").unwrap(),
            vec!["$20"]
        );
        assert_eq!(
            query(&d, "//name[contains(text(),'cam')]").unwrap().len(),
            2
        );
    }

    #[test]
    fn positional_predicates_are_per_parent() {
        let d = doc();
        // Second product *within each category*: p2 only (phones has one).
        assert_eq!(
            query(&d, "/catalog/category/product[2]/@id").unwrap(),
            vec!["p2"]
        );
        assert_eq!(query(&d, "/catalog/category[1]/@name").unwrap(), vec!["cameras"]);
    }

    #[test]
    fn attribute_output() {
        let d = doc();
        assert_eq!(query(&d, "//product/@id").unwrap(), vec!["p1", "p2", "p3"]);
        // Products without the attribute contribute nothing.
        assert_eq!(query(&d, "//product/@missing").unwrap().len(), 0);
    }

    #[test]
    fn element_output_is_deep_text() {
        let d = doc();
        assert_eq!(
            query(&d, "//product[@id='p1']").unwrap(),
            vec!["alpha cam$10"]
        );
    }

    #[test]
    fn document_order_and_dedup() {
        let d = doc();
        // `//category//product` could reach the same node through several
        // intermediate matches; results must stay unique & ordered.
        let ids = query(&d, "//category//product/@id").unwrap();
        assert_eq!(ids, vec!["p1", "p2", "p3"]);
    }

    #[test]
    fn matches_predicate_helper() {
        let d = doc();
        assert!(Path::parse("//product[@id='p3']").unwrap().matches(&d));
        assert!(!Path::parse("//tablet").unwrap().matches(&d));
    }

    #[test]
    fn query_over_delta_documents() {
        // §2: deltas are XML, so the same engine queries changes.
        let delta = Document::parse(
            "<delta>\
             <insert xid=\"20\" parent=\"14\" pos=\"1\" xid-map=\"(16-20)\">\
             <Product><Name>abc</Name></Product></insert>\
             <update xid=\"11\"><oldval>$799</oldval><newval>$699</newval></update>\
             </delta>",
        )
        .unwrap();
        assert_eq!(
            query(&delta, "/delta/insert/Product/Name/text()").unwrap(),
            vec!["abc"]
        );
        assert_eq!(query(&delta, "//update/newval/text()").unwrap(), vec!["$699"]);
        assert_eq!(query(&delta, "//insert/@xid").unwrap(), vec!["20"]);
    }
}
