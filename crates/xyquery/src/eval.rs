//! Path evaluation over a [`Tree`].

use crate::{Axis, NodeTest, Output, Path, Predicate, Step};
use xytree::hash::{fast_map_with_capacity, fast_set, FastHashMap};
use xytree::{NodeId, Tree};

/// Evaluate `path` from `start` (normally the document root); results come
/// back deduplicated, in document order.
pub(crate) fn select(path: &Path, tree: &Tree, start: NodeId) -> Vec<NodeId> {
    // Document-order ranks, computed once per evaluation.
    let order = order_map(tree, start);
    let mut current = vec![start];
    for step in &path.steps {
        current = apply_step(tree, &current, step, &order);
        if current.is_empty() {
            break;
        }
    }
    current
}

/// String results per the path's output selector.
pub(crate) fn select_strings(path: &Path, tree: &Tree) -> Vec<String> {
    let nodes = select(path, tree, tree.root());
    match path.output() {
        Output::Nodes | Output::Text => nodes
            .into_iter()
            .map(|n| tree.deep_text(n))
            .collect(),
        Output::Attr(name) => nodes
            .into_iter()
            .filter_map(|n| tree.attr(n, name).map(str::to_string))
            .collect(),
    }
}

fn order_map(tree: &Tree, start: NodeId) -> FastHashMap<NodeId, u32> {
    let mut m = fast_map_with_capacity(tree.arena_len());
    for (i, n) in tree.descendants(start).enumerate() {
        m.insert(n, i as u32);
    }
    m
}

fn apply_step(
    tree: &Tree,
    current: &[NodeId],
    step: &Step,
    order: &FastHashMap<NodeId, u32>,
) -> Vec<NodeId> {
    // Gather raw matches, deduplicated (descendant steps can reach one node
    // through several context nodes).
    let mut seen = fast_set();
    let mut matches: Vec<NodeId> = Vec::new();
    for &ctx in current {
        match step.axis {
            Axis::Child => {
                for c in tree.children(ctx) {
                    if test_matches(tree, c, &step.test) && seen.insert(c) {
                        matches.push(c);
                    }
                }
            }
            Axis::Descendant => {
                for d in tree.descendants(ctx) {
                    if d == ctx {
                        continue;
                    }
                    if test_matches(tree, d, &step.test) && seen.insert(d) {
                        matches.push(d);
                    }
                }
            }
        }
    }
    matches.sort_by_key(|n| order.get(n).copied().unwrap_or(u32::MAX));

    // Predicates, in order. Position counts per parent for the child axis
    // (the familiar XPath behavior) and in document order for descendants.
    let mut filtered = matches;
    for pred in &step.predicates {
        filtered = match pred {
            Predicate::AttrEquals(name, value) => filtered
                .into_iter()
                .filter(|&n| tree.attr(n, name) == Some(value.as_str()))
                .collect(),
            Predicate::AttrExists(name) => filtered
                .into_iter()
                .filter(|&n| tree.attr(n, name).is_some())
                .collect(),
            Predicate::TextEquals(value) => filtered
                .into_iter()
                .filter(|&n| tree.deep_text(n) == *value)
                .collect(),
            Predicate::TextContains(needle) => filtered
                .into_iter()
                .filter(|&n| tree.deep_text(n).contains(needle.as_str()))
                .collect(),
            Predicate::Position(want) => match step.axis {
                Axis::Child => {
                    let mut counts: FastHashMap<NodeId, usize> = fast_map_with_capacity(8);
                    filtered
                        .into_iter()
                        .filter(|&n| {
                            let parent = tree.parent(n).unwrap_or(n);
                            let c = counts.entry(parent).or_insert(0);
                            *c += 1;
                            *c == *want
                        })
                        .collect()
                }
                Axis::Descendant => filtered
                    .into_iter()
                    .enumerate()
                    .filter(|&(i, _)| i + 1 == *want)
                    .map(|(_, n)| n)
                    .collect(),
            },
        };
    }
    filtered
}

fn test_matches(tree: &Tree, node: NodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Name(name) => tree.name(node) == Some(name.as_str()),
        NodeTest::AnyElement => tree.kind(node).is_element(),
        NodeTest::Text => tree.kind(node).is_text(),
    }
}

#[cfg(test)]
mod tests {
    use crate::Path;
    use xytree::Document;

    #[test]
    fn descendant_position_is_global() {
        let d = Document::parse("<a><b><x/></b><c><x/><x/></c></a>").unwrap();
        let p = Path::parse("//x[2]").unwrap();
        let hits = p.select_doc(&d);
        assert_eq!(hits.len(), 1);
        // The second <x/> in document order is the first child of <c>.
        let c = d.tree.child_at(d.root_element().unwrap(), 1).unwrap();
        assert_eq!(d.tree.parent(hits[0]), Some(c));
    }

    #[test]
    fn results_are_document_ordered_even_with_multiple_contexts() {
        let d = Document::parse(
            "<a><g><v>1</v></g><g><v>2</v></g><g><v>3</v></g></a>",
        )
        .unwrap();
        let p = Path::parse("//g//v").unwrap();
        let texts: Vec<String> = p
            .select_doc(&d)
            .into_iter()
            .map(|n| d.tree.deep_text(n))
            .collect();
        assert_eq!(texts, vec!["1", "2", "3"]);
    }

    #[test]
    fn predicates_chain_left_to_right() {
        let d = Document::parse(
            "<a><p k=\"1\">x</p><p k=\"1\">y</p><p k=\"2\">z</p></a>",
        )
        .unwrap();
        // First filter by attribute, then take the 2nd remaining.
        let p = Path::parse("/a/p[@k='1'][2]").unwrap();
        let hits = p.select_doc(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.tree.deep_text(hits[0]), "y");
    }

    #[test]
    fn text_node_test() {
        let d = Document::parse("<a>alpha<b>beta</b></a>").unwrap();
        let p = Path::parse("/a/text()").unwrap();
        assert_eq!(p.select_strings(&d), vec!["alpha"]);
        let p = Path::parse("//text()").unwrap();
        assert_eq!(p.select_strings(&d), vec!["alpha", "beta"]);
    }

    #[test]
    fn empty_result_short_circuits() {
        let d = Document::parse("<a><b/></a>").unwrap();
        let p = Path::parse("/nope/deeper/still").unwrap();
        assert!(p.select_doc(&d).is_empty());
    }
}
