//! Parser for the path language.
//!
//! Grammar (no whitespace sensitivity inside predicates' quoted strings):
//!
//! ```text
//! path       := step+ output?
//! step       := ("/" | "//") nodetest predicate*
//! nodetest   := NAME | "*"
//! predicate  := "[" pred-body "]"
//! pred-body  := "@" NAME ("=" string)?
//!             | "text()" "=" string
//!             | "contains(text()," string ")"
//!             | NUMBER
//! output     := "/" "text()"  |  "/" "@" NAME
//! string     := "'" chars "'"  |  '"' chars '"'
//! ```

use crate::{Axis, NodeTest, Output, Path, Predicate, Step};
use std::fmt;

/// Error produced by [`Path::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the problem.
    pub offset: usize,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path syntax error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryParseError {}

struct P<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, message: impl Into<String>) -> QueryParseError {
        QueryParseError { message: message.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn name(&mut self) -> Option<&'a str> {
        let rest = &self.input[self.pos..];
        let end = rest
            .char_indices()
            .find(|&(_, c)| !(c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 || rest.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return None;
        }
        self.pos += end;
        Some(&rest[..end])
    }

    fn string_literal(&mut self) -> Result<String, QueryParseError> {
        let Some(quote @ ('\'' | '"')) = self.peek() else {
            return Err(self.err("expected a quoted string"));
        };
        self.pos += 1;
        let rest = &self.input[self.pos..];
        let Some(end) = rest.find(quote) else {
            return Err(self.err("unterminated string literal"));
        };
        let s = rest[..end].to_string();
        self.pos += end + 1;
        Ok(s)
    }

    fn number(&mut self) -> Option<usize> {
        let rest = &self.input[self.pos..];
        let end = rest
            .char_indices()
            .find(|&(_, c)| !c.is_ascii_digit())
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return None;
        }
        let v = rest[..end].parse().ok()?;
        self.pos += end;
        Some(v)
    }
}

pub(crate) fn parse(input: &str) -> Result<Path, QueryParseError> {
    let mut p = P { input: input.trim(), pos: 0 };
    if p.at_end() {
        return Err(p.err("empty path"));
    }
    let mut steps: Vec<Step> = Vec::new();
    let mut output = Output::Nodes;

    while !p.at_end() {
        let axis = if p.eat("//") {
            Axis::Descendant
        } else if p.eat("/") {
            Axis::Child
        } else if steps.is_empty() {
            // A leading bare name is treated as a child step from the root.
            Axis::Child
        } else {
            return Err(p.err("expected '/' or '//'"));
        };

        // Trailing output selectors. `text()` is a real step (it selects
        // text-node children/descendants, XPath-style) that also switches
        // the output to the nodes' text content.
        if p.eat("text()") {
            if !p.at_end() {
                return Err(p.err("text() must be the last component"));
            }
            steps.push(Step { axis, test: NodeTest::Text, predicates: Vec::new() });
            output = Output::Text;
            break;
        }
        if p.eat("@") {
            let Some(name) = p.name() else {
                return Err(p.err("expected attribute name after '@'"));
            };
            if !p.at_end() {
                return Err(p.err("@attribute must be the last component"));
            }
            output = Output::Attr(name.to_string());
            break;
        }

        let test = if p.eat("*") {
            NodeTest::AnyElement
        } else if let Some(name) = p.name() {
            NodeTest::Name(name.to_string())
        } else {
            return Err(p.err("expected an element name, '*', 'text()' or '@attr'"));
        };

        let mut predicates = Vec::new();
        while p.eat("[") {
            let pred = parse_predicate(&mut p)?;
            if !p.eat("]") {
                return Err(p.err("expected ']'"));
            }
            predicates.push(pred);
        }
        steps.push(Step { axis, test, predicates });
    }

    if steps.is_empty() {
        return Err(P { input, pos: 0 }.err("path selects nothing"));
    }
    Ok(Path { steps, output })
}

fn parse_predicate(p: &mut P<'_>) -> Result<Predicate, QueryParseError> {
    if p.eat("@") {
        let Some(name) = p.name() else {
            return Err(p.err("expected attribute name after '@'"));
        };
        let name = name.to_string();
        if p.eat("=") {
            let v = p.string_literal()?;
            return Ok(Predicate::AttrEquals(name, v));
        }
        return Ok(Predicate::AttrExists(name));
    }
    if p.eat("text()") {
        if !p.eat("=") {
            return Err(p.err("expected '=' after text()"));
        }
        let v = p.string_literal()?;
        return Ok(Predicate::TextEquals(v));
    }
    if p.eat("contains(text(),") {
        let v = p.string_literal()?;
        if !p.eat(")") {
            return Err(p.err("expected ')'"));
        }
        return Ok(Predicate::TextContains(v));
    }
    if let Some(n) = p.number() {
        if n == 0 {
            return Err(p.err("positions are 1-based"));
        }
        return Ok(Predicate::Position(n));
    }
    Err(p.err("unrecognized predicate"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_paths() {
        let p = parse("/a/b//c").unwrap();
        assert_eq!(p.steps().len(), 3);
        assert_eq!(p.steps()[2].axis, Axis::Descendant);
        assert_eq!(p.output(), &Output::Nodes);
    }

    #[test]
    fn leading_bare_name_is_child_of_root() {
        let p = parse("catalog/product").unwrap();
        assert_eq!(p.steps().len(), 2);
        assert_eq!(p.steps()[0].axis, Axis::Child);
    }

    #[test]
    fn parses_all_predicates() {
        let p = parse("//x[@a='1'][@b][text()='t'][contains(text(),'n')][3]").unwrap();
        assert_eq!(
            p.steps()[0].predicates,
            vec![
                Predicate::AttrEquals("a".into(), "1".into()),
                Predicate::AttrExists("b".into()),
                Predicate::TextEquals("t".into()),
                Predicate::TextContains("n".into()),
                Predicate::Position(3),
            ]
        );
    }

    #[test]
    fn parses_outputs() {
        assert_eq!(parse("//x/text()").unwrap().output(), &Output::Text);
        assert_eq!(parse("//x/@id").unwrap().output(), &Output::Attr("id".into()));
    }

    #[test]
    fn double_quoted_strings() {
        let p = parse(r#"//x[@a="v"]"#).unwrap();
        assert_eq!(p.steps()[0].predicates, vec![Predicate::AttrEquals("a".into(), "v".into())]);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "/",
            "//",
            "/a[",
            "/a[@]",
            "/a[0]",
            "/a[text()]",
            "/a/text()/b",
            "/a/@id/b",
            "/a[unquoted=v]",
            "/a[@k='unterminated]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn error_reports_offset() {
        let e = parse("/a[@k='v'").unwrap_err();
        assert!(e.offset >= 9, "offset {} should point at the missing bracket", e.offset);
        assert!(e.to_string().contains("']'"));
    }
}
