//! End-to-end exercise of the full network stack: concurrent HTTP clients
//! ingest versioned corpora over loopback TCP, every stored version is
//! served back byte-identical, the metrics balance, and a restart from a
//! persisted snapshot serves the same documents.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use xydiff_suite::xydelta::XidDocument;
use xydiff_suite::xynet::{NetConfig, NetServer};
use xydiff_suite::xyserve::{ServeConfig, SnapshotPolicy};
use xydiff_suite::xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};

/// `docs` documents with `versions` snapshots each, as canonical XML.
fn corpus(docs: usize, versions: usize, nodes: usize, seed: u64) -> Vec<(String, Vec<String>)> {
    (0..docs)
        .map(|d| {
            let doc = generate(&DocGenConfig {
                kind: DocKind::Catalog,
                target_nodes: nodes,
                seed: seed + d as u64,
                id_attributes: false,
            });
            let mut cur = XidDocument::assign_initial(doc);
            let mut snaps = vec![cur.doc.to_xml()];
            for v in 1..versions {
                let step = seed ^ (d as u64 * 131 + v as u64);
                cur = simulate(&cur, &ChangeConfig::uniform(0.15, step)).new_version;
                snaps.push(cur.doc.to_xml());
            }
            (format!("doc-{d}"), snaps)
        })
        .collect()
}

/// One request with `Connection: close`; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes()).expect("write");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read");
    let status: u16 = text.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// POST one snapshot, retrying briefly on backpressure `503`s.
fn post_snapshot(addr: SocketAddr, key: &str, xml: &str) -> (u16, String) {
    for _ in 0..200 {
        let (status, body) = request(addr, "POST", &format!("/ingest/{key}"), xml);
        if status != 503 {
            return (status, body);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("{key}: backpressure never cleared");
}

/// Every client drives its own keys over its own connections; afterwards
/// every version of every document must be served back byte-identical and
/// the exposition must balance with what the clients saw.
#[test]
fn concurrent_http_clients_ingest_and_read_back_byte_identical() {
    let corpus = Arc::new(corpus(6, 4, 300, 77));
    let server = NetServer::start(
        NetConfig::new().with_io_timeout(Duration::from_secs(3)),
        ServeConfig::new()
            .with_workers(3)
            .unwrap()
            .with_queue_capacity(8)
            .unwrap()
            .with_shards(4)
            .unwrap(),
    )
    .expect("start");
    let addr = server.local_addr();

    let clients: Vec<_> = (0..3)
        .map(|c| {
            let corpus = Arc::clone(&corpus);
            std::thread::spawn(move || {
                // Disjoint keys per client; versions of one key in order.
                for (key, versions) in corpus.iter().skip(c).step_by(3) {
                    for (v, xml) in versions.iter().enumerate() {
                        let (status, body) = post_snapshot(addr, key, xml);
                        assert_eq!(status, 200, "{key} v{v}: {body}");
                        assert!(body.contains(&format!("\"version\":{v}")), "{key}: {body}");
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    // Read every version back over HTTP: byte-identical to what was posted.
    for (key, versions) in corpus.iter() {
        for (v, xml) in versions.iter().enumerate() {
            let (status, body) = request(addr, "GET", &format!("/doc/{key}/{v}"), "");
            assert_eq!(status, 200, "{key} v{v}");
            assert_eq!(&body, xml, "{key} v{v} diverged over the wire");
        }
    }

    // The exposition agrees with what the clients observed.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("ingest_succeeded_total 24"), "{metrics}");
    assert!(metrics.contains("ingest_dead_lettered_total 0"), "{metrics}");
    assert!(metrics.contains("http_requests_total{route=\"ingest\"}"), "{metrics}");

    // Drain over HTTP and account for everything.
    let (status, _) = request(addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 202);
    assert!(server.wait_for_shutdown_request(Duration::from_secs(5)));
    let report = server.shutdown();
    assert!(report.ingest.is_balanced(), "{report:?}");
    assert_eq!(report.ingest.succeeded, 24);
    assert_eq!(report.ingest.dead_lettered, 0);
}

/// The current value of a single-series metric family in an exposition.
fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| !l.starts_with('#') && l.starts_with(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{metrics}"))
}

/// A steal-heavy workload over HTTP: workers outnumber shards, and the hot
/// key's home worker is parked so its entire backlog is served by stealing
/// workers. Every version must read back byte-identical and the exposition
/// must show non-zero steal counters and the per-deque depth family.
#[test]
fn steal_heavy_workload_reads_back_byte_identical() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use xydiff_suite::xyserve::{home_worker, SchedEvent};

    let corpus = corpus(5, 3, 200, 55);
    let workers = 4;
    let home = home_worker("hot", workers);
    let hold = Arc::new(AtomicBool::new(true));
    let hold2 = Arc::clone(&hold);
    let server = NetServer::start(
        NetConfig::new().with_io_timeout(Duration::from_secs(3)),
        ServeConfig::new()
            .with_workers(workers)
            .unwrap()
            .with_queue_capacity(32)
            .unwrap()
            // Deliberately fewer shards than workers.
            .with_shards(2)
            .unwrap()
            .with_steal_batch(2)
            .unwrap()
            .with_sched_hook(Arc::new(move |e| {
                if let SchedEvent::PopOwn { worker } = e {
                    if worker == home {
                        while hold2.load(Ordering::SeqCst) {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
            })),
    )
    .expect("start");
    let addr = server.local_addr();

    // Imbalanced on purpose: the hot key gets many versions, all homed to
    // the parked worker's deque — each 200 below proves a successful steal.
    let hot: Vec<String> = (0..8).map(|v| format!("<d><v>{v}</v></d>")).collect();
    for (v, xml) in hot.iter().enumerate() {
        let (status, body) = post_snapshot(addr, "hot", xml);
        assert_eq!(status, 200, "hot v{v}: {body}");
    }
    // A spread of other keys keeps the rest of the pool busy too.
    for (key, versions) in &corpus {
        for xml in versions {
            assert_eq!(post_snapshot(addr, key, xml).0, 200);
        }
    }
    hold.store(false, Ordering::SeqCst);

    for (v, xml) in hot.iter().enumerate() {
        let (status, body) = request(addr, "GET", &format!("/doc/hot/{v}"), "");
        assert_eq!(status, 200, "hot v{v}");
        assert_eq!(&body, xml, "hot v{v} diverged over the wire");
    }
    for (key, versions) in &corpus {
        for (v, xml) in versions.iter().enumerate() {
            let (status, body) = request(addr, "GET", &format!("/doc/{key}/{v}"), "");
            assert_eq!(status, 200, "{key} v{v}");
            assert_eq!(&body, xml, "{key} v{v} diverged over the wire");
        }
    }

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metric_value(&metrics, "ingest_steals_total ") >= 1.0, "{metrics}");
    assert!(metric_value(&metrics, "ingest_stolen_jobs_total ") >= 1.0, "{metrics}");
    assert!(metrics.contains("ingest_deque_depth{deque=\"0\"}"), "{metrics}");
    assert!(metrics.contains(&format!("ingest_deque_depth{{deque=\"{}\"}}", workers - 1)));

    let report = server.shutdown();
    assert!(report.ingest.is_balanced(), "{report:?}");
    assert_eq!(report.ingest.succeeded as usize, 8 + 5 * 3);
    assert_eq!(report.ingest.dead_lettered, 0);
}

fn tmp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("xynet-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Kill a server that persisted a snapshot on drain, then boot a fresh one
/// from the same directory: it must serve the same versions and continue
/// the chains where the first instance stopped.
#[test]
fn restart_from_snapshot_serves_the_same_versions() {
    let dir = tmp_root("restart");
    let corpus = corpus(3, 3, 200, 91);
    let net =
        || NetConfig::new().with_io_timeout(Duration::from_secs(3)).with_http_workers(2);
    let serve = |shards: usize| {
        ServeConfig::new()
            .with_workers(2)
            .unwrap()
            .with_shards(shards)
            .unwrap()
            .with_snapshots(SnapshotPolicy::new(&dir).with_interval(Duration::from_secs(3600)))
    };

    let first = NetServer::start(net(), serve(2)).expect("first start");
    let addr = first.local_addr();
    for (key, versions) in &corpus {
        for xml in versions {
            assert_eq!(post_snapshot(addr, key, xml).0, 200);
        }
    }
    let report = first.shutdown(); // takes the final snapshot
    assert!(report.ingest.is_balanced());
    assert_eq!(report.ingest.succeeded, 9);

    // Second instance: different shard count, same snapshot directory.
    let second = NetServer::start(net(), serve(4)).expect("second start");
    let addr = second.local_addr();
    for (key, versions) in &corpus {
        for (v, xml) in versions.iter().enumerate() {
            let (status, body) = request(addr, "GET", &format!("/doc/{key}/{v}"), "");
            assert_eq!(status, 200, "{key} v{v} lost across restart");
            assert_eq!(&body, xml, "{key} v{v} diverged across restart");
        }
    }
    // Chains continue where the first instance stopped.
    let (status, body) = request(addr, "POST", "/ingest/doc-0", &corpus[0].1[0]);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"version\":3"), "restored chain must continue: {body}");

    let report = second.shutdown();
    assert!(report.ingest.is_balanced());
    let _ = std::fs::remove_dir_all(&dir);
}
