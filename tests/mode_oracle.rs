//! Cross-mode differential oracle: every matcher mode, fed the same
//! simulated document pairs, must produce a delta that (a) passes static
//! verification (`xydelta::verify`) and (b) patches the old version into
//! exactly the new one. The modes disagree on *cost* (ops per delta), never
//! on *correctness* — that is the redesigned `MatchMode` API's contract.
//!
//! Every run is derived from a `u64` seed, and every assertion message
//! carries the rerun recipe (`XYMODE_SEED_START=<seed> XYMODE_SEED_COUNT=1
//! cargo test --test mode_oracle`), so a CI failure line reproduces alone.
//! CI widens the sweep with the same env vars — no code change needed.
//!
//! The seed rotates through document kinds (including the `Grid` family
//! built to separate ordered from unordered matching) and change families
//! (the paper's uniform three-phase simulator, pure child-order shuffles,
//! and attribute churn). A final aggregate check pins the headline claim:
//! on the shuffle-only family the unordered (X-Diff style) matcher emits
//! strictly fewer ops on average than ordered BULD.

use proptest::prelude::*;
use xydiff_suite::xydelta::{verify, XidDocument};
use xydiff_suite::xydiff::{DiffResult, Differ, MatchMode};
use xydiff_suite::xysim::{
    attribute_churn, generate, shuffle_children, simulate, AttrChurnConfig, ChangeConfig,
    DocGenConfig, DocKind, ShuffleConfig, SimulatedChange,
};

/// SplitMix64, so consecutive seeds give uncorrelated parameter draws.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed range knobs: `XYMODE_SEED_START` / `XYMODE_SEED_COUNT` override the
/// defaults, so one failing seed reruns alone and CI can widen the sweep
/// without a code change.
fn seed_range(default_count: u64) -> std::ops::Range<u64> {
    let get = |name: &str, default: u64| {
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let start = get("XYMODE_SEED_START", 0);
    start..start + get("XYMODE_SEED_COUNT", default_count)
}

const KINDS: [DocKind; 4] = [DocKind::Catalog, DocKind::Grid, DocKind::AddressBook, DocKind::Feed];

/// The seed-determined document pair: document kind, size, and change
/// family all derive from `seed`.
fn pair_for(seed: u64) -> (XidDocument, SimulatedChange, &'static str) {
    let h = mix(seed);
    let kind = KINDS[(h % KINDS.len() as u64) as usize];
    let nodes = 120 + (mix(h) % 280) as usize;
    let doc = generate(&DocGenConfig { kind, target_nodes: nodes, seed, id_attributes: false });
    let old = XidDocument::assign_initial(doc);
    let (sim, family) = match seed % 3 {
        0 => (
            simulate(
                &old,
                &ChangeConfig {
                    p_delete: 0.03,
                    p_update: 0.08,
                    p_insert: 0.05,
                    p_move: 0.03,
                    seed: h,
                },
            ),
            "uniform",
        ),
        1 => (shuffle_children(&old, &ShuffleConfig { p_shuffle: 0.6, seed: h }), "shuffle"),
        _ => (
            attribute_churn(&old, &AttrChurnConfig { seed: h, ..Default::default() }),
            "attr-churn",
        ),
    };
    (old, sim, family)
}

/// Diff under `mode`, check verify-cleanliness and apply-roundtrip, and
/// return the result. `ctx` prefixes every failure with the rerun recipe.
fn check_mode(old: &XidDocument, sim: &SimulatedChange, mode: MatchMode, ctx: &str) -> DiffResult {
    let r = Differ::new().with_mode(mode).diff(old, &sim.new_version.doc);
    verify(&r.delta).unwrap_or_else(|e| panic!("{ctx} mode {mode}: delta fails verify: {e}"));
    let mut replay = old.clone();
    r.delta
        .apply_to(&mut replay)
        .unwrap_or_else(|e| panic!("{ctx} mode {mode}: delta fails to apply: {e}"));
    assert_eq!(
        replay.doc.to_xml(),
        sim.new_version.doc.to_xml(),
        "{ctx} mode {mode}: replay diverged"
    );
    r
}

fn recipe(seed: u64) -> String {
    format!(
        "[seed {seed}: rerun with XYMODE_SEED_START={seed} XYMODE_SEED_COUNT=1 \
         cargo test --test mode_oracle]"
    )
}

/// The oracle proper: every mode, same pairs, always verify-clean, always
/// an exact patch. Cross-mode, the cheapest delta is recorded so a future
/// cost regression in any matcher shows up as a changed winner histogram
/// (printed, not asserted — cost is compared family-wise below).
#[test]
fn all_modes_patch_every_simulated_pair() {
    let mut wins = [0usize; 3];
    let range = seed_range(48);
    for seed in range.clone() {
        let ctx = recipe(seed);
        let (old, sim, _family) = pair_for(seed);
        let ops: Vec<usize> = MatchMode::all()
            .iter()
            .map(|&m| check_mode(&old, &sim, m, &ctx).delta.ops.len())
            .collect();
        let best = ops.iter().copied().min().unwrap_or(0);
        for (i, &n) in ops.iter().enumerate() {
            if n == best {
                wins[i] += 1;
            }
        }
    }
    println!(
        "seeds {range:?}: cheapest-delta wins per mode {:?} = {wins:?}",
        MatchMode::all().map(|m| m.as_str())
    );
}

/// The headline cost claim: on shuffle-only changes over the `Grid` family
/// (heavy duplicate cells, light distinctive keys — adversarial for
/// position-based matching), the unordered matcher's mean ops-per-delta is
/// strictly lower than BULD's.
#[test]
fn unordered_beats_buld_on_shuffled_grids() {
    let mut buld_ops = 0usize;
    let mut unordered_ops = 0usize;
    let range = seed_range(24);
    for seed in range.clone() {
        let ctx = recipe(seed);
        let doc = generate(&DocGenConfig {
            kind: DocKind::Grid,
            target_nodes: 300 + (mix(seed) % 200) as usize,
            seed,
            id_attributes: false,
        });
        let old = XidDocument::assign_initial(doc);
        let sim = shuffle_children(&old, &ShuffleConfig { p_shuffle: 0.8, seed: mix(seed) });
        buld_ops += check_mode(&old, &sim, MatchMode::Buld, &ctx).delta.ops.len();
        unordered_ops += check_mode(&old, &sim, MatchMode::Unordered, &ctx).delta.ops.len();
    }
    println!("seeds {range:?}: total ops buld={buld_ops} unordered={unordered_ops}");
    assert!(
        unordered_ops < buld_ops,
        "unordered must beat BULD on shuffled grids: {unordered_ops} !< {buld_ops} ({range:?})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A pure child permutation never costs the unordered matcher a single
    /// structural op: every node pairs by signature, so the delta repairs
    /// order (moves) and nothing else.
    #[test]
    fn unordered_shuffles_cost_no_structural_ops(
        seed in 0u64..1 << 48,
        kind_idx in 0usize..KINDS.len(),
        nodes in 60usize..320,
    ) {
        let kind = KINDS[kind_idx];
        let doc = generate(&DocGenConfig { kind, target_nodes: nodes, seed, id_attributes: false });
        let old = XidDocument::assign_initial(doc);
        let sim = shuffle_children(&old, &ShuffleConfig { p_shuffle: 1.0, seed: mix(seed) });
        let r = Differ::new().with_mode(MatchMode::Unordered).diff(&old, &sim.new_version.doc);
        let c = r.delta.counts();
        prop_assert_eq!(
            (c.deletes, c.inserts, c.updates, c.attr_ops),
            (0, 0, 0, 0),
            "shuffle must cost only moves: {}",
            r.delta.describe()
        );
        let mut replay = old.clone();
        let applied = r.delta.apply_to(&mut replay);
        prop_assert!(applied.is_ok(), "apply failed: {applied:?}");
        prop_assert_eq!(replay.doc.to_xml(), sim.new_version.doc.to_xml());
    }
}
