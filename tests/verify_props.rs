//! Property suite for the static completed-delta validator (§4).
//!
//! Two directions, both quantified over simulator-generated document pairs:
//!
//! * **Soundness of the diff**: every delta `diff()` emits over an
//!   xysim-evolved pair satisfies the completed-delta invariants — and so
//!   does its inverse (completed deltas verify iff their inverses do).
//! * **Sensitivity of the validator**: mechanically corrupting a real delta
//!   (swapping anchor XIDs out from under their XID-maps, breaking a move's
//!   source/target pairing, making two ops claim one sibling position)
//!   must be rejected. A validator that accepts everything is no validator.

use proptest::prelude::*;
use xydiff_suite::xydelta::{verify, verify_all, Delta, Op, VerifyError, XidDocument};
use xydiff_suite::xydiff::{diff, DiffOptions};
use xydiff_suite::xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};

/// Generate an old version and a simulated new version, and diff them.
fn diffed_pair(kind: DocKind, nodes: usize, seed: u64, rate: f64) -> (XidDocument, Delta) {
    let doc = generate(&DocGenConfig {
        kind,
        target_nodes: nodes,
        seed,
        id_attributes: matches!(kind, DocKind::Catalog),
    });
    let old = XidDocument::assign_initial(doc);
    let sim = simulate(&old, &ChangeConfig::uniform(rate, seed.wrapping_mul(31).wrapping_add(7)));
    let r = diff(&old, &sim.new_version.doc, &DiffOptions::default());
    (old, r.delta)
}

fn arb_kind() -> impl Strategy<Value = DocKind> {
    prop_oneof![
        Just(DocKind::Catalog),
        Just(DocKind::AddressBook),
        Just(DocKind::Feed),
        Just(DocKind::Generic),
    ]
}

/// Swap the anchor XIDs of two subtree-carrying ops *without* touching
/// their XID-maps, so each map's postfix root no longer matches its op.
/// With a single such op, point its anchor at a fresh unused XID instead.
/// Returns `false` when the delta has no insert/delete to corrupt.
fn corrupt_swap_xids(delta: &mut Delta) -> bool {
    let idx: Vec<usize> = delta
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, Op::Insert { .. } | Op::Delete { .. }))
        .map(|(i, _)| i)
        .collect();
    fn anchor_mut(op: &mut Op) -> &mut xydiff_suite::xydelta::Xid {
        match op {
            Op::Insert { xid, .. } | Op::Delete { xid, .. } => xid,
            _ => unreachable!("filtered to subtree ops"),
        }
    }
    match idx.as_slice() {
        [] => false,
        [only] => {
            let fresh = delta.ops.iter().map(|op| op.anchor().0).max().unwrap_or(0) + 1000;
            *anchor_mut(&mut delta.ops[*only]) = xydiff_suite::xydelta::Xid(fresh);
            true
        }
        [first, .., last] => {
            let (a, b) = (*first, *last);
            let xa = *anchor_mut(&mut delta.ops[a]);
            let xb = *anchor_mut(&mut delta.ops[b]);
            if xa == xb {
                return false;
            }
            *anchor_mut(&mut delta.ops[a]) = xb;
            *anchor_mut(&mut delta.ops[b]) = xa;
            true
        }
    }
}

/// Make a move self-parenting: its target parent becomes the moved node
/// itself, which no document transformation can realize.
fn corrupt_move_pairing(delta: &mut Delta) -> bool {
    for op in &mut delta.ops {
        if let Op::Move { xid, to_parent, .. } = op {
            *to_parent = *xid;
            return true;
        }
    }
    false
}

/// Duplicate one op's sibling-position claim: clone the first op that
/// claims a new-version position (insert or move-target) and re-anchor the
/// clone at a fresh XID so the *only* defect is the shared `(parent, pos)`.
fn corrupt_positions(delta: &mut Delta) -> bool {
    let fresh = xydiff_suite::xydelta::Xid(
        delta.ops.iter().map(|op| op.anchor().0).max().unwrap_or(0) + 1000,
    );
    for i in 0..delta.ops.len() {
        match &delta.ops[i] {
            Op::Insert { parent, pos, .. } => {
                let (parent, pos) = (*parent, *pos);
                delta.ops.push(Op::Move {
                    xid: fresh,
                    from_parent: parent,
                    from_pos: usize::MAX / 2, // an old-side position nobody claims
                    to_parent: parent,
                    to_pos: pos,
                });
                return true;
            }
            Op::Move { to_parent, to_pos, .. } => {
                let (parent, pos) = (*to_parent, *to_pos);
                delta.ops.push(Op::Move {
                    xid: fresh,
                    from_parent: parent,
                    from_pos: usize::MAX / 2,
                    to_parent: parent,
                    to_pos: pos,
                });
                return true;
            }
            _ => {}
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every delta the differ emits over simulator pairs is a well-formed
    /// completed delta, and so is its inverse.
    #[test]
    fn diffed_deltas_always_verify(
        kind in arb_kind(),
        seed in 1u64..5000,
        rate in prop_oneof![Just(0.02f64), Just(0.1), Just(0.3)],
        nodes in prop_oneof![Just(40usize), Just(200)],
    ) {
        let (_, delta) = diffed_pair(kind, nodes, seed, rate);
        if let Err(e) = verify(&delta) {
            prop_assert!(false, "diffed delta failed verification: {e}\n{}", delta.describe());
        }
        if let Err(e) = verify(&delta.inverted()) {
            prop_assert!(false, "inverted delta failed verification: {e}");
        }
    }

    /// Swapping two ops' anchor XIDs out from under their XID-maps is
    /// always caught (RootXidMismatch at minimum).
    #[test]
    fn swapped_xids_are_rejected(
        kind in arb_kind(),
        seed in 1u64..5000,
    ) {
        let (_, mut delta) = diffed_pair(kind, 120, seed, 0.2);
        prop_assume!(corrupt_swap_xids(&mut delta));
        let all = verify_all(&delta);
        prop_assert!(!all.is_empty(), "swapped anchor XIDs went undetected");
        prop_assert!(
            all.iter().any(|e| matches!(
                e,
                VerifyError::RootXidMismatch { .. } | VerifyError::DuplicateXid { .. }
            )),
            "unexpected error set: {all:?}"
        );
    }

    /// A self-parenting move (broken source/target pairing) is always caught.
    #[test]
    fn broken_move_pairing_is_rejected(
        kind in arb_kind(),
        seed in 1u64..5000,
    ) {
        let (_, mut delta) = diffed_pair(kind, 120, seed, 0.3);
        prop_assume!(corrupt_move_pairing(&mut delta));
        let all = verify_all(&delta);
        prop_assert!(
            all.iter().any(|e| matches!(e, VerifyError::BrokenMovePairing { .. })),
            "self-parenting move went undetected: {all:?}"
        );
    }

    /// Two ops claiming one new-version sibling slot (a stale position) is
    /// always caught.
    #[test]
    fn stale_positions_are_rejected(
        kind in arb_kind(),
        seed in 1u64..5000,
    ) {
        let (_, mut delta) = diffed_pair(kind, 120, seed, 0.2);
        prop_assume!(corrupt_positions(&mut delta));
        let all = verify_all(&delta);
        prop_assert!(
            all.iter().any(|e| matches!(e, VerifyError::PositionConflict { side: "new", .. })),
            "duplicated sibling position went undetected: {all:?}"
        );
    }
}

/// Deterministic smoke check outside proptest: apply agrees with verify on
/// the clean delta (it really is the transformation it claims to be).
#[test]
fn verified_deltas_still_apply() {
    let (old, delta) = diffed_pair(DocKind::Generic, 150, 42, 0.25);
    verify(&delta).expect("clean delta must verify");
    let mut replay = old.clone();
    delta.apply_to(&mut replay).expect("clean delta must apply");
}

/// Guard against vacuous properties: on a fixed seed every corruption must
/// be applicable (the `prop_assume!` paths cannot all be skipping) and
/// rejected.
#[test]
fn corruptions_are_applicable_and_rejected() {
    // High change rate over a move-heavy generic document yields a delta
    // with inserts, deletes, and moves to corrupt (seed 35 produces 29
    // moves; most seeds at this rate produce at least one of each).
    let (_, delta) = diffed_pair(DocKind::Generic, 200, 35, 0.3);
    verify(&delta).expect("baseline must be clean");

    let mut d = delta.clone();
    assert!(corrupt_swap_xids(&mut d), "no insert/delete to corrupt");
    assert!(verify(&d).is_err(), "swapped XIDs accepted");

    let mut d = delta.clone();
    assert!(corrupt_move_pairing(&mut d), "no move to corrupt");
    assert!(verify(&d).is_err(), "broken move pairing accepted");

    let mut d = delta.clone();
    assert!(corrupt_positions(&mut d), "no position claim to corrupt");
    assert!(verify(&d).is_err(), "stale position accepted");
}
