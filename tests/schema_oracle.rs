//! Differential oracle for the static schema analyzer.
//!
//! The analyzer's soundness contract is checked against the real query
//! evaluator over ~1000 generated DTD-valid documents:
//!
//! - every generated document must validate against its family's grammar
//!   (`xysim::dtd_for` describes exactly what the generators emit);
//! - a query the analyzer proves **unsatisfiable** must select zero nodes
//!   in every document of the corpus;
//! - a **satisfiable** verdict must come with a witness document that
//!   parses, validates, and in which the evaluator selects at least one
//!   node (re-checked here, independently of the analyzer's internal
//!   self-check).

use xyquery::Path;
use xyschema::{analyze, validate, Grammar, Verdict};
use xysim::{dtd_for, generate, DocGenConfig, DocKind};
use xytree::{parse_dtd, Document};

/// Expected verdicts per document family: `(query, expect_satisfiable)`.
fn queries_for(kind: DocKind) -> &'static [(&'static str, bool)] {
    match kind {
        DocKind::Catalog => &[
            ("/catalog/category/product/name", true),
            ("//product/price", true),
            ("//product/stock", true),
            ("//product[@id='p1']", true),
            ("//title[2]", true),
            ("//category/title/text()", true),
            ("//widget", false),
            ("/catalog/product", false),
            ("//category/name", false),
            ("//product[@color='red']", false),
            ("//name[@id='x']", false),
            ("/catalog[2]", false),
            ("/catalog/text()", false),
        ],
        DocKind::AddressBook => &[
            ("//person/name", true),
            ("//address/city", true),
            ("/addressbook/person/phone", true),
            ("//person[2]", true),
            ("//city/text()", true),
            ("//street/city", false),
            ("//email[@domain='x']", false),
            ("/addressbook/name", false),
            ("/addressbook[2]", false),
            ("//address/text()", false),
        ],
        DocKind::Feed => &[
            ("//entry/title", true),
            ("/feed/title", true),
            ("//link[@href='http://x']", true),
            ("//entry/summary/text()", true),
            ("/feed/entry/date", true),
            ("//link/text()", false),
            ("//entry/author", false),
            ("/feed[2]", false),
            ("//summary[@href='x']", false),
        ],
        DocKind::Grid => &[
            ("/grid/row/key", true),
            ("//cell", true),
            ("//row/cell/text()", true),
            ("//row[2]", true),
            ("//key/text()", true),
            ("/grid/cell", false),
            ("//row/row", false),
            ("//cell[@id='x']", false),
            ("/grid/text()", false),
            ("//key/cell", false),
            ("/grid[2]", false),
        ],
        DocKind::Generic => &[],
    }
}

fn grammar_for(kind: DocKind) -> Grammar {
    let dtd = dtd_for(kind).expect("record families carry a DTD");
    let dt = parse_dtd(dtd, None).expect("family DTD parses");
    Grammar::from_doctype(&dt).expect("family DTD builds a grammar")
}

fn corpus(kind: DocKind) -> Vec<Document> {
    let mut docs = Vec::new();
    for seed in 0..84u64 {
        for target_nodes in [80usize, 240] {
            for id_attributes in [false, true] {
                docs.push(generate(&DocGenConfig { kind, target_nodes, seed, id_attributes }));
            }
        }
    }
    docs
}

#[test]
fn generated_documents_validate_against_their_family_grammar() {
    for kind in [DocKind::Catalog, DocKind::AddressBook, DocKind::Feed, DocKind::Grid] {
        let g = grammar_for(kind);
        for (i, doc) in corpus(kind).iter().enumerate() {
            let violations = validate(doc, &g);
            assert!(
                violations.is_empty(),
                "{kind:?} doc #{i} violates its own DTD: {:?}",
                violations.first()
            );
        }
    }
}

#[test]
fn unsat_verdicts_mean_zero_matches_and_witnesses_are_real() {
    for kind in [DocKind::Catalog, DocKind::AddressBook, DocKind::Feed, DocKind::Grid] {
        let g = grammar_for(kind);
        let docs = corpus(kind);
        for &(expr, expect_sat) in queries_for(kind) {
            let path = Path::parse(expr).expect(expr);
            match analyze(&path, &g).unwrap_or_else(|e| panic!("{kind:?} {expr}: {e}")) {
                Verdict::Satisfiable(w) => {
                    assert!(expect_sat, "{kind:?} {expr}: expected unsat, got witness {w:?}");
                    // Independent re-check of the witness evidence.
                    let wdoc = Document::parse(&w.document)
                        .unwrap_or_else(|e| panic!("{kind:?} {expr}: witness parse: {e}"));
                    let violations = validate(&wdoc, &g);
                    assert!(
                        violations.is_empty(),
                        "{kind:?} {expr}: witness invalid: {:?}",
                        violations.first()
                    );
                    assert!(
                        !path.select_doc(&wdoc).is_empty(),
                        "{kind:?} {expr}: evaluator finds nothing in the witness"
                    );
                }
                Verdict::Unsatisfiable(u) => {
                    assert!(!expect_sat, "{kind:?} {expr}: expected sat, got {}", u.describe());
                    // The heart of the oracle: a proof of deadness must
                    // agree with the evaluator on every valid document.
                    for (i, doc) in docs.iter().enumerate() {
                        let hits = path.select_doc(doc);
                        assert!(
                            hits.is_empty(),
                            "{kind:?} {expr}: proven unsat ({}) but doc #{i} has {} match(es)",
                            u.describe(),
                            hits.len()
                        );
                    }
                }
            }
        }
    }
}
