//! Golden-equivalence suite: serialized documents and delta XML must stay
//! byte-identical across substrate changes (interned labels, zero-copy
//! parsing, scratch reuse, signature caching — none of them may alter a
//! single output byte).
//!
//! The goldens under `tests/goldens/` were captured from the pre-interning
//! substrate. Regenerate deliberately with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden_equivalence
//! ```

use std::fs;
use std::path::PathBuf;
use xydelta::XidDocument;
use xydiff::{diff, DiffOptions};
use xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};
use xytree::{Document, SerializeOptions};

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn check_golden(name: &str, actual: &str) {
    let path = goldens_dir().join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::create_dir_all(goldens_dir()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDENS=1"));
    assert_eq!(
        expected, actual,
        "golden {name} diverged — the substrate changed an output byte"
    );
}

/// A hand-written sample covering the parser paths byte-identity depends on:
/// DTD entities, ID attributes, CDATA, comments, PIs, namespaces, numeric
/// character references, and attribute values needing escapes.
const HANDMADE: &str = "<!DOCTYPE cat [\
<!ATTLIST product sku ID #REQUIRED>\
<!ENTITY co \"Xyleme&#32;SA\">\
]>\
<?xml-stylesheet href=\"c.css\"?>\
<cat owner='&co;' note=\"a&lt;b&quot;c\">\
<!--intro-->\
<ns:product sku=\"A1\" xmlns:ns=\"u\"><name>wid&amp;get</name></ns:product>\
<product sku=\"B2\"><desc>one<![CDATA[<raw&>]]>two &#x1F600;</desc></product>\
<product sku=\"C3\">AT&amp;T &co;</product>\
</cat>";

fn corpus_docs() -> Vec<(String, String)> {
    let mut docs: Vec<(String, String)> = vec![
        ("fig2-old".into(), xysim::corpus::FIGURE2_OLD.into()),
        ("fig2-new".into(), xysim::corpus::FIGURE2_NEW.into()),
        ("catalog-ids".into(), xysim::corpus::CATALOG_WITH_IDS.into()),
        ("feed".into(), xysim::corpus::FEED_SAMPLE.into()),
        ("handmade".into(), HANDMADE.into()),
    ];
    for (kind, tag) in [
        (DocKind::Catalog, "catalog"),
        (DocKind::AddressBook, "addressbook"),
        (DocKind::Feed, "feed"),
        (DocKind::Generic, "generic"),
    ] {
        for seed in [11u64, 12] {
            let doc = generate(&DocGenConfig {
                kind,
                target_nodes: 400,
                seed,
                id_attributes: matches!(kind, DocKind::Catalog) && seed == 12,
            });
            docs.push((format!("gen-{tag}-{seed}"), doc.to_xml()));
        }
    }
    docs
}

#[test]
fn serialized_documents_match_goldens() {
    for (name, xml) in corpus_docs() {
        let doc = Document::parse(&xml).unwrap_or_else(|e| panic!("{name}: {e}"));
        check_golden(&format!("{name}.xml"), &doc.to_xml());
        check_golden(&format!("{name}.canonical.xml"), &doc.to_canonical_xml());
        // Reparse of our own output must be a fixpoint.
        let again = Document::parse(&doc.to_xml()).unwrap();
        assert_eq!(again.to_xml(), doc.to_xml(), "{name}: serialize is not a fixpoint");
    }
}

#[test]
fn delta_xml_matches_goldens() {
    for (kind, tag) in [
        (DocKind::Catalog, "catalog"),
        (DocKind::AddressBook, "addressbook"),
        (DocKind::Feed, "feed"),
        (DocKind::Generic, "generic"),
    ] {
        for (rate, seed) in [(0.05f64, 21u64), (0.25, 22)] {
            let doc = generate(&DocGenConfig {
                kind,
                target_nodes: 400,
                seed,
                id_attributes: matches!(kind, DocKind::Catalog),
            });
            let old = XidDocument::assign_initial(doc);
            let sim = simulate(&old, &ChangeConfig::uniform(rate, seed * 7 + 1));
            let r = diff(&old, &sim.new_version.doc, &DiffOptions::default());
            let name = format!("delta-{tag}-{seed}-{}", (rate * 100.0) as u32);
            check_golden(
                &format!("{name}.delta.xml"),
                &xydelta::xml_io::delta_to_xml_pretty(&r.delta),
            );
            check_golden(&format!("{name}.new.xml"), &r.new_version.doc.to_xml());
            // Every emitted delta must satisfy the static invariants —
            // directly, after inversion, and after an XML round-trip of the
            // stored (pretty) golden form.
            xydelta::verify(&r.delta).unwrap_or_else(|e| panic!("{name}: {e}"));
            xydelta::verify(&r.delta.inverted()).unwrap_or_else(|e| panic!("{name} inverted: {e}"));
            let reparsed =
                xydelta::xml_io::parse_delta(&fs::read_to_string(goldens_dir().join(format!("{name}.delta.xml"))).unwrap())
                    .unwrap_or_else(|e| panic!("{name}: reparse: {e}"));
            xydelta::verify(&reparsed).unwrap_or_else(|e| panic!("{name} reparsed: {e}"));
            // The delta must still replay exactly.
            let mut replay = old.clone();
            r.delta.apply_to(&mut replay).unwrap();
            assert_eq!(replay.doc.to_xml(), sim.new_version.doc.to_xml());
            // …and so must its golden XML form (pretty-printing must not
            // change delta semantics).
            let mut replay2 = old.clone();
            reparsed.apply_to(&mut replay2).unwrap_or_else(|e| panic!("{name}: reparsed apply: {e}"));
            assert_eq!(replay2.doc.to_xml(), sim.new_version.doc.to_xml());
        }
    }
}

#[test]
fn pretty_serialization_matches_goldens() {
    let doc = Document::parse(xysim::corpus::CATALOG_WITH_IDS).unwrap();
    check_golden("catalog-ids.pretty.xml", &doc.to_xml_with(&SerializeOptions::pretty()));
}
