//! Seeded deterministic torture tests for the xynet reactor.
//!
//! Every test drives a real [`Reactor`] over the in-memory [`SimNet`]
//! driver — no sockets, no kernel, and a virtual clock that only moves
//! when the test says so. Traffic shapes (request mixes, byte-boundary
//! splits, disconnect points) all derive from a single `u64` seed via
//! SplitMix64, and every assertion message carries that seed: a CI failure
//! line is a complete reproduction recipe
//! (`XYNET_SEED_START=<seed> XYNET_SEED_COUNT=1 cargo test --test
//! net_torture`).
//!
//! The harness mirrors `tests/sched_determinism.rs`, which does the same
//! for the work-stealing scheduler underneath this front.

use std::time::Duration;

use xydiff_suite::xynet::{NetConfig, Reactor, SimClient, SimDriver, SimNet};
use xydiff_suite::xyserve::ServeConfig;

/// SplitMix64: tiny, deterministic, and good enough to scatter traffic.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seed range knobs: `XYNET_SEED_START` / `XYNET_SEED_COUNT` override the
/// defaults, so one failing seed reruns alone and CI can widen the sweep
/// without a code change.
fn seed_range(default_count: u64) -> std::ops::Range<u64> {
    let get = |name: &str, default: u64| {
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let start = get("XYNET_SEED_START", 0);
    start..start + get("XYNET_SEED_COUNT", default_count)
}

/// A reactor over a simulated network, plus a small ingest pipeline.
fn sim_reactor(net: NetConfig) -> (Reactor<SimDriver>, SimNet) {
    let (driver, sim) = SimNet::new();
    let serve = ServeConfig::new()
        .with_workers(2)
        .expect("valid worker count")
        .with_queue_capacity(512)
        .expect("valid capacity");
    let reactor = Reactor::new(driver, net, serve).expect("reactor start");
    (reactor, sim)
}

/// Turn the reactor until `cond` holds, or panic with `what` (and the
/// caller's seed, which should be part of `what`).
fn drive_until(
    reactor: &mut Reactor<SimDriver>,
    mut cond: impl FnMut() -> bool,
    what: &str,
) {
    for _ in 0..20_000 {
        if cond() {
            return;
        }
        reactor.turn(Some(Duration::from_millis(1)));
    }
    panic!("drive_until stalled: {what}");
}

/// Split `buf` into complete HTTP responses by `Content-Length` framing:
/// returns `(status, full response text)` per response plus unconsumed
/// leftover bytes.
fn parse_responses(buf: &[u8]) -> (Vec<(u16, String)>, Vec<u8>) {
    let mut out = Vec::new();
    let mut rest = buf;
    loop {
        let Some(head_end) = rest.windows(4).position(|w| w == b"\r\n\r\n") else {
            break;
        };
        let head = String::from_utf8_lossy(&rest[..head_end + 4]).to_string();
        let Some(len) = head.lines().find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .and_then(|v| v.trim().parse::<usize>().ok())
        }) else {
            panic!("response without Content-Length: {head:?}");
        };
        let total = head_end + 4 + len;
        if rest.len() < total {
            break;
        }
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable status line: {head:?}"));
        out.push((status, String::from_utf8_lossy(&rest[..total]).to_string()));
        rest = &rest[total..];
    }
    (out, rest.to_vec())
}

/// One scripted request: raw bytes plus the status it must produce.
struct Scripted {
    raw: Vec<u8>,
    expect: u16,
}

/// A seeded mix of requests for one connection, all keep-alive.
fn scripted_requests(rng: &mut SplitMix64, conn: u64, count: usize) -> Vec<Scripted> {
    (0..count)
        .map(|i| match rng.next() % 6 {
            0 | 1 => {
                let body = format!("<d><v>{i}</v><pad>{}</pad></d>", "x".repeat((rng.next() % 200) as usize));
                Scripted {
                    raw: format!(
                        "POST /ingest/torture-{conn} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len(),
                    )
                    .into_bytes(),
                    expect: 200,
                }
            }
            2 => Scripted {
                raw: b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
                expect: 200,
            },
            3 => Scripted {
                raw: format!("GET /doc/ghost-{conn} HTTP/1.1\r\nHost: t\r\n\r\n").into_bytes(),
                expect: 404,
            },
            4 => Scripted {
                raw: b"DELETE /metrics HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
                expect: 405,
            },
            _ => Scripted {
                raw: b"GET /nowhere HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
                expect: 404,
            },
        })
        .collect()
}

/// Feed one connection's whole pipelined byte stream in seeded chunks and
/// check the responses come back with the scripted statuses, in order.
fn explore_byte_splits(seed: u64) {
    let mut rng = SplitMix64(seed);
    let (mut reactor, sim) = sim_reactor(NetConfig::new());
    let client = sim.connect();

    let count = 3 + (rng.next() % 4) as usize;
    let scripts = scripted_requests(&mut rng, 0, count);
    let raw: Vec<u8> = scripts.iter().flat_map(|s| s.raw.iter().copied()).collect();
    let expect: Vec<u16> = scripts.iter().map(|s| s.expect).collect();

    // Seeded split points: deliver in 1..=17 byte chunks with turns between.
    let mut sent = 0;
    while sent < raw.len() {
        let n = (1 + rng.next() % 17) as usize;
        let n = n.min(raw.len() - sent);
        client.send(&raw[sent..sent + n]);
        sent += n;
        if rng.next() % 3 == 0 {
            reactor.turn(Some(Duration::from_millis(1)));
        }
    }
    client.finish();

    let mut buf = Vec::new();
    drive_until(
        &mut reactor,
        || {
            buf.extend(client.take_output());
            let (responses, _) = parse_responses(&buf);
            responses.len() >= expect.len()
        },
        &format!("seed {seed}: responses never completed"),
    );
    let (responses, leftover) = parse_responses(&buf);
    assert!(leftover.is_empty(), "seed {seed}: trailing bytes {leftover:?}");
    let got: Vec<u16> = responses.iter().map(|(s, _)| *s).collect();
    assert_eq!(got, expect, "seed {seed}: statuses out of order");
    drive_until(
        &mut reactor,
        || client.server_closed(),
        &format!("seed {seed}: connection never closed after half-close"),
    );

    let report = reactor.into_report();
    assert!(report.ingest.is_balanced(), "seed {seed}: {report:?}");
}

#[test]
fn byte_boundary_splits_over_seed_range() {
    for seed in seed_range(40) {
        explore_byte_splits(seed);
    }
}

/// 100+ connections pipelining seeded request mixes, deliveries interleaved
/// across connections in seeded order: every connection must get exactly
/// its scripted statuses, in its own order.
fn explore_many_connections(seed: u64) {
    let mut rng = SplitMix64(seed ^ 0x00C0_FFEE);
    let conns = 100 + (rng.next() % 28) as usize;
    let (mut reactor, sim) = sim_reactor(NetConfig::new());

    struct Lane {
        client: SimClient,
        raw: Vec<u8>,
        sent: usize,
        expect: Vec<u16>,
        buf: Vec<u8>,
    }
    let mut lanes: Vec<Lane> = (0..conns)
        .map(|c| {
            let count = 1 + (rng.next() % 3) as usize;
            let scripts = scripted_requests(&mut rng, c as u64, count);
            Lane {
                client: sim.connect(),
                raw: scripts.iter().flat_map(|s| s.raw.iter().copied()).collect(),
                sent: 0,
                expect: scripts.iter().map(|s| s.expect).collect(),
                buf: Vec::new(),
            }
        })
        .collect();

    // Interleave deliveries across lanes until every lane's bytes are out.
    let mut remaining: Vec<usize> = (0..conns).collect();
    while !remaining.is_empty() {
        let pick = (rng.next() % remaining.len() as u64) as usize;
        let lane = &mut lanes[remaining[pick]];
        let n = (1 + rng.next() % 64) as usize;
        let n = n.min(lane.raw.len() - lane.sent);
        lane.client.send(&lane.raw[lane.sent..lane.sent + n]);
        lane.sent += n;
        if lane.sent == lane.raw.len() {
            lane.client.finish();
            remaining.swap_remove(pick);
        }
        if rng.next() % 5 == 0 {
            reactor.turn(Some(Duration::from_millis(1)));
        }
    }

    drive_until(
        &mut reactor,
        || {
            lanes.iter_mut().all(|lane| {
                lane.buf.extend(lane.client.take_output());
                parse_responses(&lane.buf).0.len() >= lane.expect.len()
            })
        },
        &format!("seed {seed}: some lane never finished"),
    );
    for (c, lane) in lanes.iter().enumerate() {
        let (responses, _) = parse_responses(&lane.buf);
        let got: Vec<u16> = responses.iter().map(|(s, _)| *s).collect();
        assert_eq!(got, lane.expect, "seed {seed} conn {c}: statuses out of order");
    }

    let report = reactor.into_report();
    assert!(report.ingest.is_balanced(), "seed {seed}: {report:?}");
    assert_eq!(report.connections, conns as u64, "seed {seed}");
}

#[test]
fn pipelined_requests_across_many_connections() {
    for seed in seed_range(8) {
        explore_many_connections(seed);
    }
}

/// Seeded disconnects: connections drop mid-head, mid-body, or right after
/// a full request — none of which may disturb a well-behaved neighbour.
fn explore_disconnects(seed: u64) {
    let mut rng = SplitMix64(seed ^ 0xD15C_0000);
    let (mut reactor, sim) = sim_reactor(NetConfig::new());

    let good = sim.connect();
    let victims: Vec<SimClient> = (0..12)
        .map(|v| {
            let client = sim.connect();
            let body = format!("<d>{v}</d>");
            let raw = format!(
                "POST /ingest/victim-{v} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len(),
            );
            let raw = raw.as_bytes();
            match rng.next() % 3 {
                // Drop mid-head.
                0 => client.send(&raw[..(4 + rng.next() % 10) as usize]),
                // Drop mid-body: head plus an incomplete body.
                1 => client.send(&raw[..raw.len() - 3]),
                // Half-close mid-head: parsed as 400, answered, closed.
                _ => {
                    client.send(&raw[..8]);
                    client.finish();
                    return client;
                }
            }
            client.reset();
            client
        })
        .collect();

    // The well-behaved connection still gets served, repeatedly.
    let mut buf = Vec::new();
    for i in 0..3 {
        good.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        drive_until(
            &mut reactor,
            || {
                buf.extend(good.take_output());
                parse_responses(&buf).0.len() > i
            },
            &format!("seed {seed}: healthy connection starved (round {i})"),
        );
    }
    let (responses, _) = parse_responses(&buf);
    assert!(responses.iter().all(|(s, _)| *s == 200), "seed {seed}: {responses:?}");

    // Every victim ends closed; half-closed ones got a 400 first.
    drive_until(
        &mut reactor,
        || victims.iter().all(SimClient::server_closed),
        &format!("seed {seed}: victims never reaped"),
    );
    for (v, client) in victims.iter().enumerate() {
        let out = client.take_output();
        if !out.is_empty() {
            let (responses, _) = parse_responses(&out);
            assert!(
                responses.iter().all(|(s, _)| *s == 400),
                "seed {seed} victim {v}: unexpected responses {responses:?}"
            );
        }
    }

    drop((good, victims));
    let report = reactor.into_report();
    assert!(report.ingest.is_balanced(), "seed {seed}: {report:?}");
}

#[test]
fn mid_request_disconnects_leave_neighbours_unharmed() {
    for seed in seed_range(30) {
        explore_disconnects(seed);
    }
}

/// A slow-loris connection trickling header bytes must be evicted when the
/// virtual clock passes the idle deadline — while a well-behaved neighbour
/// keeps getting answers, before and after the eviction.
#[test]
fn slow_loris_is_evicted_without_stalling_others() {
    let (mut reactor, sim) =
        sim_reactor(NetConfig::new().with_idle_timeout(Duration::from_secs(5)));
    let handle = reactor.handle();

    let loris = sim.connect();
    let good = sim.connect();
    let mut buf = Vec::new();

    // The loris dribbles one header byte per virtual second — each arrival
    // is processed (so this is not a dead socket) but no request ever
    // completes, so `last_progress` must not advance. The neighbour
    // completes a full request every second, which keeps its own deadline
    // fresh and proves the loop never stalls on the loris.
    let dribble = b"GET /healthz HT";
    for (i, byte) in dribble.iter().enumerate() {
        loris.send(std::slice::from_ref(byte));
        sim.advance(Duration::from_secs(1));
        reactor.turn(Some(Duration::from_millis(1)));
        good.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        drive_until(
            &mut reactor,
            || {
                buf.extend(good.take_output());
                parse_responses(&buf).0.len() > i
            },
            "neighbour starved while the loris dribbled",
        );
    }

    drive_until(&mut reactor, || loris.server_closed(), "slow loris never evicted");
    assert!(loris.take_output().is_empty(), "an unfinished request deserves no response");
    assert_eq!(handle.http_metrics().evicted.get(), 1);
    assert!(!good.server_closed(), "the in-deadline neighbour was evicted too");

    // The neighbour keeps working after the eviction.
    good.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    drive_until(
        &mut reactor,
        || {
            buf.extend(good.take_output());
            parse_responses(&buf).0.len() > dribble.len()
        },
        "neighbour starved after the eviction",
    );

    drop(handle);
    let report = reactor.into_report();
    assert!(report.ingest.is_balanced(), "{report:?}");
}

/// An idle keep-alive connection (complete requests, then silence) is also
/// evicted on the same deadline.
#[test]
fn idle_keep_alive_is_evicted_on_the_same_deadline() {
    let (mut reactor, sim) =
        sim_reactor(NetConfig::new().with_idle_timeout(Duration::from_secs(5)));
    let client = sim.connect();
    client.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    let mut buf = Vec::new();
    drive_until(
        &mut reactor,
        || {
            buf.extend(client.take_output());
            !parse_responses(&buf).0.is_empty()
        },
        "first request never answered",
    );
    sim.advance(Duration::from_secs(6));
    drive_until(&mut reactor, || client.server_closed(), "idle keep-alive never evicted");
    drop(reactor.into_report());
}

/// A peer that never reads its response (zero receive window) cannot pin
/// a buffer forever: the unflushed connection hits the same deadline.
#[test]
fn write_stalled_connection_is_evicted() {
    let (mut reactor, sim) =
        sim_reactor(NetConfig::new().with_idle_timeout(Duration::from_secs(5)));
    let stalled = sim.connect();
    stalled.set_recv_window(Some(0));
    stalled.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    for _ in 0..20 {
        reactor.turn(Some(Duration::from_millis(1)));
    }
    assert_eq!(stalled.output_len(), 0, "zero window must block the response");
    sim.advance(Duration::from_secs(6));
    drive_until(&mut reactor, || stalled.server_closed(), "write-stalled conn never evicted");
    drop(reactor.into_report());
}

/// Oversized heads and bodies get their status (431 / 413) written and the
/// connection closed, under the reactor just as under the blocking front.
#[test]
fn oversized_head_and_body_are_rejected_and_closed() {
    let (mut reactor, sim) =
        sim_reactor(NetConfig::new().with_max_head_bytes(256).with_max_body_bytes(64));
    let handle = reactor.handle();

    let fat_head = sim.connect();
    fat_head.send(
        format!("GET /healthz HTTP/1.1\r\nCookie: {}\r\n\r\n", "c".repeat(400)).as_bytes(),
    );
    let fat_body = sim.connect();
    let body = "x".repeat(65);
    fat_body.send(
        format!(
            "POST /ingest/fat HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        )
        .as_bytes(),
    );

    for (client, expect) in [(&fat_head, 431), (&fat_body, 413)] {
        let mut buf = Vec::new();
        drive_until(
            &mut reactor,
            || {
                buf.extend(client.take_output());
                !parse_responses(&buf).0.is_empty()
            },
            &format!("{expect} never written"),
        );
        let (responses, _) = parse_responses(&buf);
        assert_eq!(responses[0].0, expect, "{:?}", responses[0].1);
        assert!(responses[0].1.contains("Connection: close"), "{:?}", responses[0].1);
        drive_until(
            &mut reactor,
            || client.server_closed(),
            &format!("{expect} connection never closed"),
        );
    }
    assert_eq!(handle.http_metrics().rejected.get(), 2);
    assert_eq!(handle.ingest().metrics().enqueued.get(), 0, "nothing reached the pipeline");

    drop(handle);
    let report = reactor.into_report();
    assert!(report.ingest.is_balanced(), "{report:?}");
}

/// Above `shed_connections` open connections, new arrivals get a
/// best-effort 503 + `Retry-After` and are dropped without registration.
#[test]
fn connection_count_backpressure_sheds_with_503() {
    let (mut reactor, sim) = sim_reactor(
        NetConfig::new().with_max_connections(8).with_shed_connections(4).with_retry_after_secs(9),
    );
    let handle = reactor.handle();

    // Four idle connections occupy the soft cap.
    let held: Vec<SimClient> = (0..4).map(|_| sim.connect()).collect();
    drive_until(&mut reactor, || handle.http_metrics().connections.get() >= 4, "accepts stalled");

    let shed = sim.connect();
    drive_until(&mut reactor, || shed.output_len() > 0, "shed 503 never written");
    let (responses, _) = parse_responses(&shed.take_output());
    assert_eq!(responses[0].0, 503, "{:?}", responses[0].1);
    assert!(responses[0].1.contains("Retry-After: 9"), "{:?}", responses[0].1);
    drive_until(&mut reactor, || shed.server_closed(), "shed connection never dropped");
    assert_eq!(handle.http_metrics().shed.get(), 1);
    assert!(!held.iter().any(|c| c.server_closed()), "held connections must survive");

    drop(handle);
    drop(reactor.into_report());
}

/// A drain requested while many idle keep-alive connections sit open must
/// close them, finish the in-flight request, and exit loss-free.
#[test]
fn drain_with_many_idle_connections_is_loss_free() {
    let (mut reactor, sim) = sim_reactor(NetConfig::new());
    let handle = reactor.handle();

    // 64 idle keep-alive connections: each completes one request first so
    // the reactor has them registered and idle, not merely accepted.
    let idle: Vec<SimClient> = (0..64).map(|_| sim.connect()).collect();
    for client in &idle {
        client.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    }
    let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); idle.len()];
    drive_until(
        &mut reactor,
        || {
            idle.iter().zip(&mut bufs).all(|(c, buf)| {
                buf.extend(c.take_output());
                !parse_responses(buf).0.is_empty()
            })
        },
        "idle connections never got their first response",
    );

    // One request in flight when the drain lands.
    let busy = sim.connect();
    let body = "<d><final>1</final></d>";
    busy.send(
        format!(
            "POST /ingest/drain-k HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        )
        .as_bytes(),
    );
    drive_until(
        &mut reactor,
        || handle.ingest().metrics().enqueued.get() >= 1,
        "in-flight ingest never submitted",
    );

    handle.request_shutdown();
    // The loop must now wind down on its own: idle connections closed, the
    // in-flight response delivered, then `turn` reports completion.
    let mut done = false;
    for _ in 0..20_000 {
        if !reactor.turn(Some(Duration::from_millis(1))) {
            done = true;
            break;
        }
    }
    assert!(done, "reactor never finished draining");
    assert!(idle.iter().all(SimClient::server_closed), "idle connections survived the drain");

    let (responses, _) = parse_responses(&busy.take_output());
    assert_eq!(responses.len(), 1, "in-flight request lost in the drain");
    assert_eq!(responses[0].0, 200, "{:?}", responses[0].1);
    assert!(
        responses[0].1.contains("Connection: close"),
        "drain responses must end the session: {:?}",
        responses[0].1
    );

    drop(handle);
    let report = reactor.into_report();
    assert!(report.ingest.is_balanced(), "{report:?}");
    assert_eq!(report.ingest.succeeded, 1);
}
