//! Property-based tests over arbitrary documents.
//!
//! The hardest property in this suite: for *any* two documents — related or
//! not — the BULD delta applied to the old version must reproduce the new
//! one byte-for-byte, and its inverse must restore the old one. This is the
//! paper's correctness claim ("it misses no changes", §1) quantified over
//! random trees rather than simulator outputs.

use proptest::prelude::*;
use xydiff_suite::xydelta::{xml_io, XidDocument};
use xydiff_suite::xydiff::{diff_documents, DiffOptions};
use xydiff_suite::xytree::{Document, NodeKind, Tree};

/// A recursively generated node spec.
#[derive(Debug, Clone)]
enum Spec {
    Element { name: &'static str, attrs: Vec<(&'static str, String)>, children: Vec<Spec> },
    Text(String),
    Comment(String),
}

/// Small vocabularies force label collisions — the regime the candidate
/// machinery has to disambiguate.
const NAMES: &[&str] = &["a", "b", "item", "list", "x"];
const ATTRS: &[&str] = &["id", "k", "lang"];

fn arb_spec() -> impl Strategy<Value = Spec> {
    let leaf = prop_oneof![
        "[a-z]{1,8}".prop_map(Spec::Text),
        "[a-z ]{0,6}".prop_map(Spec::Comment),
        (0usize..NAMES.len()).prop_map(|i| Spec::Element {
            name: NAMES[i],
            attrs: vec![],
            children: vec![]
        }),
    ];
    leaf.prop_recursive(4, 48, 5, |inner| {
        (
            0usize..NAMES.len(),
            proptest::collection::vec((0usize..ATTRS.len(), "[a-z0-9]{0,4}"), 0..3),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(n, attrs, children)| {
                let mut seen = std::collections::HashSet::new();
                let attrs = attrs
                    .into_iter()
                    .filter(|(i, _)| seen.insert(*i))
                    .map(|(i, v)| (ATTRS[i], v))
                    .collect();
                Spec::Element { name: NAMES[n], attrs, children }
            })
    })
}

/// Build a document from a spec, merging adjacent text (as the parser
/// would), so serialization round-trips are exact.
fn build(spec: &Spec) -> Document {
    fn add(tree: &mut Tree, parent: xydiff_suite::xytree::NodeId, spec: &Spec) {
        match spec {
            Spec::Text(t) => {
                if t.trim().is_empty() {
                    return;
                }
                if let Some(last) = tree.last_child(parent) {
                    if let NodeKind::Text(prev) = tree.kind_mut(last) {
                        prev.push_str(t);
                        return;
                    }
                }
                let n = tree.new_text(t.clone());
                tree.append_child(parent, n);
            }
            Spec::Comment(c) => {
                let n = tree.new_node(NodeKind::Comment(c.clone()));
                tree.append_child(parent, n);
            }
            Spec::Element { name, attrs, children } => {
                let n = tree.new_element(*name);
                for (k, v) in attrs {
                    tree.element_mut(n).unwrap().set_attr(*k, v.clone());
                }
                tree.append_child(parent, n);
                for c in children {
                    add(tree, n, c);
                }
            }
        }
    }
    let mut tree = Tree::new();
    let root_elem = tree.new_element("root");
    let root = tree.root();
    tree.append_child(root, root_elem);
    if let Spec::Element { children, .. } = spec {
        for c in children {
            add(&mut tree, root_elem, c);
        }
    } else {
        add(&mut tree, root_elem, spec);
    }
    Document::from_tree(tree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// diff(a, b) is always a correct transformation, even for unrelated
    /// random documents, and its inverse restores the original.
    #[test]
    fn diff_of_arbitrary_documents_is_correct(sa in arb_spec(), sb in arb_spec()) {
        let a = build(&sa);
        let b = build(&sb);
        let r = diff_documents(&a, &b, &DiffOptions::default());
        let mut replay = XidDocument::assign_initial(a.clone());
        r.delta.apply_to(&mut replay).unwrap();
        prop_assert_eq!(replay.doc.to_canonical_xml(), b.to_canonical_xml());
        r.delta.inverted().apply_to(&mut replay).unwrap();
        prop_assert_eq!(replay.doc.to_canonical_xml(), a.to_canonical_xml());
    }

    /// Deltas survive serialization to XML and back.
    #[test]
    fn delta_xml_roundtrip_applies(sa in arb_spec(), sb in arb_spec()) {
        let a = build(&sa);
        let b = build(&sb);
        let r = diff_documents(&a, &b, &DiffOptions::default());
        let xml = xml_io::delta_to_xml(&r.delta);
        let back = xml_io::parse_delta(&xml).unwrap();
        let mut replay = XidDocument::assign_initial(a);
        back.apply_to(&mut replay).unwrap();
        prop_assert_eq!(replay.doc.to_canonical_xml(), b.to_canonical_xml());
    }

    /// Document serialization and re-parsing is a fixpoint on generated
    /// trees (text merged, no whitespace-only nodes).
    #[test]
    fn serialize_parse_fixpoint(s in arb_spec()) {
        let doc = build(&s);
        let xml = doc.to_xml();
        let back = Document::parse(&xml).unwrap();
        prop_assert!(doc.tree.subtree_eq(doc.tree.root(), &back.tree, back.tree.root()),
            "parse(serialize(d)) must equal d for {xml}");
        prop_assert_eq!(back.to_xml(), xml);
    }

    /// Diffing a document against itself is always empty.
    #[test]
    fn self_diff_is_empty(s in arb_spec()) {
        let doc = build(&s);
        let r = diff_documents(&doc, &doc, &DiffOptions::default());
        prop_assert!(r.delta.is_empty(), "self-diff produced: {}", r.delta.describe());
    }

    /// The arena invariants hold after building arbitrary trees.
    #[test]
    fn built_trees_validate(s in arb_spec()) {
        let doc = build(&s);
        prop_assert!(doc.tree.validate().is_ok());
    }

    /// Option ablations never break correctness, only quality.
    #[test]
    fn ablated_options_stay_correct(sa in arb_spec(), sb in arb_spec(), which in 0usize..4) {
        let opts = match which {
            0 => DiffOptions { enable_propagation: false, ..Default::default() },
            1 => DiffOptions { enable_unique_child_propagation: false, ..Default::default() },
            2 => DiffOptions { exact_lis: true, ..Default::default() },
            _ => DiffOptions { depth_factor: 0.0, ..Default::default() },
        };
        let a = build(&sa);
        let b = build(&sb);
        let r = diff_documents(&a, &b, &opts);
        let mut replay = XidDocument::assign_initial(a);
        r.delta.apply_to(&mut replay).unwrap();
        prop_assert_eq!(replay.doc.to_canonical_xml(), b.to_canonical_xml());
    }
}
