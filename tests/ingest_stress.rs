//! End-to-end stress tests for the `xyserve` ingestion pipeline: concurrent
//! ingestion must store exactly what a serial loop would, the alerter must
//! deliver every notification exactly once, and poison documents must end
//! in the dead-letter queue without disturbing anything else.

use std::collections::HashSet;
use std::sync::Arc;
use xydiff_suite::xyserve::{IngestServer, ServeConfig};
use xydiff_suite::xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};
use xydiff_suite::xywarehouse::{Alerter, OpFilter, Repository, Subscription};
use xydiff_suite::xydelta::XidDocument;

/// `docs` documents with `versions` snapshots each, as canonical XML.
fn corpus(docs: usize, versions: usize, nodes: usize, seed: u64) -> Vec<(String, Vec<String>)> {
    (0..docs)
        .map(|d| {
            let doc = generate(&DocGenConfig {
                kind: DocKind::Catalog,
                target_nodes: nodes,
                seed: seed + d as u64,
                id_attributes: false,
            });
            let mut cur = XidDocument::assign_initial(doc);
            let mut snaps = vec![cur.doc.to_xml()];
            for v in 1..versions {
                let step = seed ^ (d as u64 * 131 + v as u64);
                cur = simulate(&cur, &ChangeConfig::uniform(0.15, step)).new_version;
                snaps.push(cur.doc.to_xml());
            }
            (format!("doc-{d}"), snaps)
        })
        .collect()
}

/// Multi-producer, multi-worker ingestion over a small (backpressuring)
/// queue must reconstruct every stored version byte-for-byte identical to
/// a serial `Repository` ingesting the same snapshots.
#[test]
fn concurrent_ingestion_matches_serial_byte_for_byte() {
    let corpus = corpus(8, 5, 400, 2024);

    // Serial reference: one repository, versions loaded in order.
    let serial = Repository::new();
    for (key, versions) in &corpus {
        for xml in versions {
            serial.load_version(key, xml).unwrap();
        }
    }

    let server = Arc::new(IngestServer::start(
        ServeConfig::new()
            .with_workers(4)
            .unwrap()
            // Tiny on purpose: producers must hit backpressure.
            .with_queue_capacity(4)
            .unwrap()
            .with_shards(4)
            .unwrap(),
    ));

    // Four producer threads, each owning a disjoint slice of the documents
    // (per-key submission order must come from one thread).
    let corpus = Arc::new(corpus);
    let producers: Vec<_> = (0..4)
        .map(|p| {
            let server = Arc::clone(&server);
            let corpus = Arc::clone(&corpus);
            std::thread::spawn(move || {
                for (key, versions) in corpus.iter().skip(p).step_by(4) {
                    for xml in versions {
                        server.submit(key, xml.clone()).unwrap();
                    }
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    server.wait_idle();

    for (key, versions) in corpus.iter() {
        let repo = server.repository_for(key);
        assert_eq!(repo.version_count(key), versions.len(), "{key}");
        for (v, snapshot) in versions.iter().enumerate() {
            let concurrent = repo.version_xml(key, v).unwrap();
            let reference = serial.version_xml(key, v).unwrap();
            assert_eq!(concurrent, reference, "{key} V({v}) diverged from serial ingestion");
            assert_eq!(&concurrent, snapshot, "{key} V({v}) diverged from the snapshot");
        }
    }

    let server = Arc::into_inner(server).expect("all producers joined");
    let report = server.shutdown();
    assert!(report.is_balanced(), "{report:?}");
    assert_eq!(report.succeeded, 8 * 5);
    assert_eq!(report.dead_lettered, 0);
}

/// Every subscription match is delivered exactly once: no notification is
/// lost in the worker pool and none is duplicated by retries.
#[test]
fn alerter_delivers_every_notification_exactly_once() {
    let mut alerter = Alerter::new();
    alerter.subscribe(
        Subscription::everything("new-products")
            .at_path(["catalog", "product"])
            .only(OpFilter::Insert),
    );
    let server = IngestServer::start(
        ServeConfig::new()
            .with_workers(4)
            .unwrap()
            .with_queue_capacity(8)
            .unwrap()
            .with_shards(4)
            .unwrap()
            .with_alerter(alerter)
            // Every snapshot fails transiently once: retries must not
            // duplicate notifications.
            .with_fault_hook(Arc::new(|_, _, attempt| attempt == 1)),
    );

    // Each version of each document appends exactly one uniquely-labeled
    // product, so version v of any document fires exactly one insert alert.
    let docs = 6;
    let versions = 5;
    for v in 0..versions {
        for d in 0..docs {
            let products: String =
                (0..=v).map(|i| format!("<product>p{d}-{i}</product>")).collect();
            let xml = format!("<catalog>{products}</catalog>");
            server.submit(&format!("doc-{d}"), xml).unwrap();
        }
    }

    let report = server.shutdown();
    assert!(report.is_balanced(), "{report:?}");
    assert_eq!(report.succeeded as usize, docs * versions);
    assert_eq!(report.retries as usize, docs * versions);

    // V(0) runs no diff, so each document alerts once per later version.
    let expected = docs * (versions - 1);
    assert_eq!(report.notifications.len(), expected, "lost or duplicated notifications");
    assert_eq!(report.alerts_fired as usize, expected);
    let unique: HashSet<(String, String)> = report
        .notifications
        .iter()
        .map(|n| (n.doc_key.clone(), n.snippet.clone()))
        .collect();
    assert_eq!(unique.len(), expected, "duplicate notifications: {:?}", report.notifications);
}

/// A corpus laced with malformed snapshots and one persistently failing
/// document: the good work is stored, the bad work is dead-lettered, and
/// the shutdown accounting covers every enqueued item.
#[test]
fn poison_corpus_is_dead_lettered_with_full_accounting() {
    let server = IngestServer::start(
        ServeConfig::new()
            .with_workers(3)
            .unwrap()
            .with_queue_capacity(8)
            .unwrap()
            .with_shards(2)
            .unwrap()
            .with_max_retries(1)
            .with_fault_hook(Arc::new(|key, _, _| key == "cursed")),
    );

    let mut good = 0u64;
    let mut poison = 0u64;
    for v in 0..6 {
        server.submit("healthy", format!("<d><v>{v}</v></d>")).unwrap();
        good += 1;
        if v % 2 == 0 {
            // Malformed XML in the middle of another document's chain.
            server.submit("flaky", format!("<d><broken v{v}")).unwrap();
            poison += 1;
        } else {
            server.submit("flaky", format!("<d><v>{v}</v></d>")).unwrap();
            good += 1;
        }
        server.submit("cursed", format!("<d><v>{v}</v></d>")).unwrap();
    }
    server.wait_idle();

    // Good documents are fully stored; the poison versions are simply
    // missing from flaky's chain.
    assert_eq!(server.repository_for("healthy").version_count("healthy"), 6);
    assert_eq!(server.repository_for("flaky").version_count("flaky"), 3);
    assert_eq!(server.repository_for("cursed").version_count("cursed"), 0);

    let report = server.shutdown();
    assert!(report.is_balanced(), "{report:?}");
    assert_eq!(report.submitted, good + poison + 6);
    assert_eq!(report.succeeded, good);
    assert_eq!(report.dead_lettered, poison + 6);
    // One retry per cursed snapshot (max_retries = 1), none for poison.
    assert_eq!(report.retries, 6);
    for dl in &report.dead_letters {
        match dl.key.as_str() {
            "flaky" => assert!(dl.error.contains("parse error"), "{dl:?}"),
            "cursed" => assert!(dl.error.contains("retries exhausted"), "{dl:?}"),
            other => panic!("unexpected dead letter for {other}: {dl:?}"),
        }
    }
}

/// Poison accounting on the *steal* path: the hot key's home worker is
/// parked, so every one of its snapshots — including the malformed one — is
/// executed by a stealing worker. The poison must be dead-lettered exactly
/// once and the key's later versions must still apply in order.
#[test]
fn poison_on_the_steal_path_is_dead_lettered_exactly_once() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;
    use xydiff_suite::xyserve::{home_worker, SchedEvent};

    let workers = 4;
    let home = home_worker("hot", workers);
    let hold = Arc::new(AtomicBool::new(true));
    let hold2 = Arc::clone(&hold);
    let server = IngestServer::start(
        ServeConfig::new()
            .with_workers(workers)
            .unwrap()
            .with_queue_capacity(64)
            .unwrap()
            .with_shards(2)
            .unwrap()
            .with_steal_batch(2)
            .unwrap()
            .with_sched_hook(Arc::new(move |e| {
                // Park the hot key's home worker inside its own pop: while
                // held, only thieves can run the hot key's jobs.
                if let SchedEvent::PopOwn { worker } = e {
                    if worker == home {
                        while hold2.load(Ordering::SeqCst) {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
            })),
    );

    for v in 0..30 {
        if v == 13 {
            server.submit("hot", "<d><broken v13").unwrap();
        } else {
            server.submit("hot", format!("<d><v>{v}</v></d>")).unwrap();
        }
    }
    server.wait_idle();
    hold.store(false, Ordering::SeqCst);

    assert!(
        server.metrics().steals.get() >= 1,
        "every hot job ran on the steal path, so steals must be non-zero"
    );
    // The poison version is simply missing; everything after it applied.
    let repo = server.repository_for("hot");
    assert_eq!(repo.version_count("hot"), 29);
    assert_eq!(repo.latest_xml("hot").unwrap(), "<d><v>29</v></d>");

    let report = server.shutdown();
    assert!(report.is_balanced(), "{report:?}");
    assert_eq!(report.succeeded, 29);
    assert_eq!(report.dead_lettered, 1, "dead-lettered exactly once");
    assert_eq!(report.dead_letters.len(), 1);
    assert_eq!(report.dead_letters[0].seq, 13);
    assert!(report.dead_letters[0].error.contains("parse error"), "{:?}", report.dead_letters);
}
