//! Robustness: the parsers must never panic, whatever bytes arrive — the
//! warehouse ingests crawled web content (§2), which is adversarially messy.

use proptest::prelude::*;
use xydiff_suite::xyhtml::htmlize;
use xydiff_suite::xytree::Document;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The XML parser returns Ok or Err but never panics.
    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        let _ = Document::parse(&input);
    }

    /// Markup-dense input: bias toward XML-ish characters.
    #[test]
    fn xml_parser_never_panics_on_markup_soup(input in "[<>/='\"a-z0-9 &;!\\-\\[\\]?]{0,200}") {
        let _ = Document::parse(&input);
    }

    /// htmlize is total: never panics, and its output is always well-formed
    /// XML that re-parses.
    #[test]
    fn htmlize_output_always_reparses(input in "[<>/='\"a-zA-Z0-9 &;!\\-]{0,200}") {
        let doc = htmlize(&input);
        let xml = doc.to_xml();
        let back = Document::parse(&xml);
        prop_assert!(back.is_ok(), "htmlize({input:?}) -> {xml:?}: {:?}", back.err());
    }

    /// Whatever parses must re-serialize to something that parses to the
    /// same tree (fixpoint under serialize∘parse).
    #[test]
    fn parse_serialize_parse_is_stable(input in "[<>/='\"a-z0-9 ]{0,150}") {
        if let Ok(doc) = Document::parse(&input) {
            let once = doc.to_xml();
            let doc2 = Document::parse(&once)
                .unwrap_or_else(|e| panic!("serialize of parsed {input:?} fails: {e} in {once:?}"));
            prop_assert_eq!(doc2.to_xml(), once);
        }
    }

    /// Delta parsing is similarly total.
    #[test]
    fn delta_parser_never_panics(input in ".{0,200}") {
        let _ = xydiff_suite::xydelta::xml_io::parse_delta(&input);
    }

    /// Path-expression parsing is total.
    #[test]
    fn query_parser_never_panics(input in ".{0,80}") {
        let _ = xydiff_suite::xyquery::Path::parse(&input);
    }
}
