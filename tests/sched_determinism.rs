//! Deterministic schedule exploration for the work-stealing scheduler.
//!
//! Every test here derives the whole run — dimensions, operation sequence,
//! injected yields — from a single `u64` seed via SplitMix64, and every
//! assertion message carries that seed: a CI failure line is a complete
//! reproduction recipe (`XYSCHED_SEED_START=<seed> XYSCHED_SEED_COUNT=1
//! cargo test --test sched_determinism`).
//!
//! Three layers:
//!
//! 1. Single-threaded exploration: random `try_push`/`try_pop`/`close`
//!    walks where the exact scheduler state is checkable after every step
//!    (`Full` exactly at capacity, `Retry` never, depth bookkeeping exact,
//!    multiset of pops equal to the multiset of pushes).
//! 2. Multi-threaded exploration: producer/worker pools race over a small
//!    scheduler while a seeded [`SchedHook`] injects yields at scheduling
//!    decision points, shaking out interleavings around steals and close.
//! 3. An oversubscription smoke test: a full `IngestServer` with more
//!    workers than the host has cores drains loss-free.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use xydiff_suite::xyserve::{IngestServer, Scheduler, ServeConfig, Steal, TryPushError};

/// SplitMix64: tiny, deterministic, and good enough to scatter schedules.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One stateless SplitMix64 step, for seeding decisions inside hooks.
fn mix(x: u64) -> u64 {
    SplitMix64(x).next()
}

/// Seed range knobs: `XYSCHED_SEED_START` / `XYSCHED_SEED_COUNT` override
/// the defaults, so one failing seed reruns alone and CI can widen the
/// sweep without a code change.
fn seed_range(default_count: u64) -> std::ops::Range<u64> {
    let get = |name: &str, default: u64| {
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let start = get("XYSCHED_SEED_START", 0);
    start..start + get("XYSCHED_SEED_COUNT", default_count)
}

/// Sorted copy, for multiset comparison.
fn sorted(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    v
}

/// One single-threaded walk: with no concurrency the scheduler's visible
/// state is exactly predictable, so every step is checked against a
/// counting model.
fn explore_single_threaded(seed: u64) {
    let mut rng = SplitMix64(seed);
    let workers = 1 + (rng.next() % 4) as usize;
    let capacity = 1 + (rng.next() % 8) as usize;
    let batch = 1 + (rng.next() % 3) as usize;
    let s: Scheduler<(u64, u64)> = Scheduler::new(workers, capacity, batch);

    let mut pushed: Vec<(u64, u64)> = Vec::new();
    let mut popped: Vec<(u64, u64)> = Vec::new();
    let mut next_id = 0u64;
    let mut closed = false;
    let steps = 100 + rng.next() % 150;
    for step in 0..steps {
        match rng.next() % 10 {
            0..=4 => {
                let key = rng.next() % 6;
                let item = (key, next_id);
                match s.try_push(key, item) {
                    Ok(()) => {
                        assert!(!closed, "seed {seed} step {step}: push accepted after close");
                        pushed.push(item);
                        next_id += 1;
                    }
                    Err(TryPushError::Full(_)) => assert_eq!(
                        pushed.len() - popped.len(),
                        capacity,
                        "seed {seed} step {step}: Full below capacity"
                    ),
                    Err(TryPushError::Closed(_)) => {
                        assert!(closed, "seed {seed} step {step}: spurious Closed");
                    }
                }
            }
            5..=8 => {
                let w = (rng.next() % workers as u64) as usize;
                match s.try_pop(w) {
                    Steal::Item(item) => popped.push(item),
                    Steal::Empty => assert_eq!(
                        pushed.len(),
                        popped.len(),
                        "seed {seed} step {step}: Empty with jobs queued"
                    ),
                    Steal::Retry => {
                        panic!("seed {seed} step {step}: Retry is impossible single-threaded")
                    }
                }
            }
            _ => {
                if !closed && rng.next().is_multiple_of(4) {
                    s.close();
                    closed = true;
                }
            }
        }
        let depth = pushed.len() - popped.len();
        assert_eq!(s.len(), depth, "seed {seed} step {step}: depth bookkeeping drifted");
        assert_eq!(
            (0..workers).map(|d| s.depth_of(d)).sum::<usize>(),
            depth,
            "seed {seed} step {step}: per-deque depths disagree with the global depth"
        );
        assert_eq!(s.is_closed(), closed, "seed {seed} step {step}: close flag");
    }

    // Drain and compare multisets: nothing lost, nothing invented.
    s.close();
    let mut w = 0usize;
    loop {
        match s.try_pop(w % workers) {
            Steal::Item(item) => popped.push(item),
            Steal::Empty => break,
            Steal::Retry => panic!("seed {seed}: Retry is impossible single-threaded"),
        }
        w += 1;
    }
    assert_eq!(
        sorted(pushed),
        sorted(popped),
        "seed {seed}: drained multiset differs from the pushed multiset"
    );
}

#[test]
fn single_threaded_exploration_over_seed_range() {
    for seed in seed_range(700) {
        explore_single_threaded(seed);
    }
}

/// One multi-threaded run: producers race workers over a small scheduler
/// while the hook injects seeded yields at every scheduling decision point,
/// perturbing the interleaving deterministically per (seed, event index).
fn explore_multi_threaded(seed: u64) {
    let mut rng = SplitMix64(seed ^ 0xDEAD_BEEF);
    let workers = 2 + (rng.next() % 3) as usize;
    let capacity = 2 + (rng.next() % 12) as usize;
    let batch = 1 + (rng.next() % 3) as usize;
    let producers = 2usize;
    let per_producer = 40u64;

    let events = Arc::new(AtomicU64::new(0));
    let hook_events = Arc::clone(&events);
    let s: Arc<Scheduler<(u64, u64)>> = Arc::new(
        Scheduler::new(workers, capacity, batch).with_hook(Arc::new(move |_| {
            let n = hook_events.fetch_add(1, Ordering::Relaxed);
            if mix(seed ^ n).is_multiple_of(4) {
                std::thread::yield_now();
            }
        })),
    );

    let pushers: Vec<_> = (0..producers as u64)
        .map(|p| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut rng = SplitMix64(seed.wrapping_add(p));
                for i in 0..per_producer {
                    let key = rng.next() % 5;
                    // Blocking push: backpressure stalls are part of the
                    // schedule being explored.
                    s.push(key, (key, p * per_producer + i)).unwrap();
                }
            })
        })
        .collect();
    let poppers: Vec<_> = (0..workers)
        .map(|w| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = s.pop(w) {
                    got.push(item);
                }
                got
            })
        })
        .collect();

    for p in pushers {
        p.join().unwrap();
    }
    s.close();
    let drained: Vec<(u64, u64)> =
        poppers.into_iter().flat_map(|p| p.join().unwrap()).collect();

    let expect: Vec<(u64, u64)> = (0..producers as u64)
        .flat_map(|p| {
            let mut rng = SplitMix64(seed.wrapping_add(p));
            (0..per_producer).map(move |i| (rng.next() % 5, p * per_producer + i))
        })
        .collect();
    assert_eq!(
        sorted(drained),
        sorted(expect),
        "seed {seed}: {workers} workers / cap {capacity} / batch {batch} lost or duplicated jobs"
    );
}

#[test]
fn multi_threaded_exploration_over_seed_range() {
    for seed in seed_range(300) {
        explore_multi_threaded(seed);
    }
}

/// A pool oversubscribed well past the host's core count (CI runs this on a
/// single-core runner) must still drain loss-free with per-key order intact.
#[test]
fn oversubscribed_pool_drains_loss_free() {
    let server = IngestServer::start(
        ServeConfig::new()
            .with_workers(8)
            .unwrap()
            .with_queue_capacity(16)
            .unwrap()
            .with_shards(2)
            .unwrap()
            .with_steal_batch(2)
            .unwrap(),
    );
    let docs = 6;
    let versions = 10;
    for v in 0..versions {
        for d in 0..docs {
            server.submit(&format!("doc-{d}"), format!("<d><v>{v}</v></d>")).unwrap();
        }
    }
    server.wait_idle();

    let mut latest: HashMap<String, String> = HashMap::new();
    for d in 0..docs {
        let key = format!("doc-{d}");
        let repo = server.repository_for(&key);
        assert_eq!(repo.version_count(&key), versions, "{key} lost versions");
        latest.insert(key.clone(), repo.latest_xml(&key).unwrap());
    }
    for (key, xml) in &latest {
        assert_eq!(xml, &format!("<d><v>{}</v></d>", versions - 1), "{key} out of order");
    }

    let report = server.shutdown();
    assert!(report.is_balanced(), "{report:?}");
    assert_eq!(report.succeeded as usize, docs * versions);
    assert_eq!(report.dead_lettered, 0);
}
