//! Algebraic properties of delta chains over realistic change streams:
//! reconstruction, inversion, aggregation, and the diff's idempotence.

use xydiff_suite::xydelta::{aggregate::aggregate_chain, VersionChain, XidDocument};
use xydiff_suite::xydiff::{diff, DiffOptions};
use xydiff_suite::xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};

/// Build a chain of `steps` simulated versions, returning the chain plus
/// every version's canonical XML.
fn build_chain(kind: DocKind, nodes: usize, rate: f64, steps: u64, seed: u64) -> (VersionChain, Vec<String>) {
    let doc = generate(&DocGenConfig { kind, target_nodes: nodes, seed, id_attributes: false });
    let mut chain = VersionChain::new(XidDocument::assign_initial(doc));
    let mut snapshots = vec![chain.latest().doc.to_xml()];
    for step in 0..steps {
        let sim = simulate(chain.latest(), &ChangeConfig::uniform(rate, seed ^ (step + 1)));
        let r = diff(chain.latest(), &sim.new_version.doc, &DiffOptions::default());
        chain.push_version(r.new_version, r.delta);
        snapshots.push(chain.latest().doc.to_xml());
    }
    (chain, snapshots)
}

#[test]
fn every_version_reconstructs_across_a_long_chain() {
    let (chain, snapshots) = build_chain(DocKind::Catalog, 500, 0.12, 6, 11);
    for (i, want) in snapshots.iter().enumerate() {
        assert_eq!(&chain.version(i).unwrap().doc.to_xml(), want, "version {i}");
    }
}

#[test]
#[allow(clippy::needless_range_loop)]
fn aggregate_of_any_range_equals_endpoint_diff() {
    let (chain, snapshots) = build_chain(DocKind::Feed, 400, 0.1, 4, 7);
    for from in 0..snapshots.len() {
        for to in from..snapshots.len() {
            let agg = chain.delta_between(from, to).unwrap();
            let mut replay = chain.version(from).unwrap();
            agg.apply_to(&mut replay).unwrap();
            assert_eq!(
                replay.doc.to_xml(),
                snapshots[to],
                "aggregate {from}->{to} must land on the endpoint"
            );
            if from == to {
                assert!(agg.is_empty());
            }
        }
    }
}

#[test]
fn aggregate_chain_matches_delta_between() {
    let (chain, _) = build_chain(DocKind::AddressBook, 350, 0.1, 3, 3);
    let base = chain.version(0).unwrap();
    let deltas: Vec<_> = (0..3).map(|i| chain.delta(i).unwrap().clone()).collect();
    let a = aggregate_chain(&base, &deltas).unwrap();
    let b = chain.delta_between(0, 3).unwrap();
    // Both express the same transformation (ops may be ordered differently).
    let mut va = base.clone();
    a.apply_to(&mut va).unwrap();
    let mut vb = base.clone();
    b.apply_to(&mut vb).unwrap();
    assert_eq!(va.doc.to_xml(), vb.doc.to_xml());
    assert_eq!(a.len(), b.len());
}

#[test]
fn inverse_chain_walks_back_to_v0() {
    let (chain, snapshots) = build_chain(DocKind::Catalog, 400, 0.15, 5, 19);
    let mut doc = chain.latest().clone();
    for i in (0..5).rev() {
        chain.delta(i).unwrap().inverted().apply_to(&mut doc).unwrap();
        assert_eq!(doc.doc.to_xml(), snapshots[i], "walking back to version {i}");
    }
}

#[test]
fn rediffing_identical_versions_is_empty_along_the_chain() {
    let (chain, _) = build_chain(DocKind::Feed, 300, 0.1, 3, 23);
    for i in 0..=3 {
        let v = chain.version(i).unwrap();
        let r = diff(&v, &v.doc, &DiffOptions::default());
        assert!(r.delta.is_empty(), "self-diff of version {i} not empty: {}", r.delta.describe());
    }
}

#[test]
fn delta_sizes_scale_with_range_width() {
    // Aggregating a longer range should never be smaller than the largest
    // single step it contains by more than noise — sanity of aggregation
    // (it cancels work, but v0->vN must still describe the net change).
    let (chain, snapshots) = build_chain(DocKind::Catalog, 600, 0.08, 4, 29);
    let whole = chain.delta_between(0, 4).unwrap();
    assert!(!whole.is_empty());
    // The aggregated delta is never larger than the sum of the parts.
    let sum: usize = (0..4).map(|i| chain.delta(i).unwrap().size_bytes()).sum();
    assert!(
        whole.size_bytes() <= sum,
        "aggregate {} B must not exceed the sum of steps {} B",
        whole.size_bytes(),
        sum
    );
    let _ = snapshots;
}
