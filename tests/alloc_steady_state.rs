//! Heap-instrumented proof of the allocation-free hot path.
//!
//! A counting global allocator tracks net live bytes. After a warm-up that
//! fills the `DiffScratch` capacity, interns every symbol, and touches every
//! lazily initialised global, repeating the same diff workload must not grow
//! the heap at all: every transient allocation (delta ops, the cloned new
//! version) is freed with its `DiffResult`, and the scratch reuses its
//! capacity instead of reallocating.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};

use xydiff_suite::xydelta::XidDocument;
use xydiff_suite::xydiff::Differ;
use xydiff_suite::xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};

struct CountingAlloc;

static LIVE_BYTES: AtomicIsize = AtomicIsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(new_size as isize - layout.size() as isize, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_diffing_does_not_grow_the_heap() {
    // A mixed workload: three kinds, two change rates, parsed once up front.
    let mut cases = Vec::new();
    for (i, kind) in [DocKind::Catalog, DocKind::Feed, DocKind::Generic].into_iter().enumerate() {
        for (j, rate) in [0.05f64, 0.2].into_iter().enumerate() {
            let seed = 500 + (i * 7 + j) as u64;
            let doc = generate(&DocGenConfig {
                kind,
                target_nodes: 400,
                seed,
                id_attributes: matches!(kind, DocKind::Catalog),
            });
            let old = XidDocument::assign_initial(doc);
            let sim = simulate(&old, &ChangeConfig::uniform(rate, seed ^ 0xbeef));
            cases.push((old, sim.new_version.doc.clone()));
        }
    }

    let mut differ = Differ::new();

    // Warm-up: grows the differ's scratch to workload capacity and
    // initialises every lazy global on this path (symbol interner, hash
    // tables).
    for _ in 0..5 {
        for (old, new) in &cases {
            let _ = differ.diff(old, new);
        }
    }

    let before = LIVE_BYTES.load(Ordering::Relaxed);
    for _ in 0..25 {
        for (old, new) in &cases {
            let _ = differ.diff(old, new);
        }
    }
    let growth = LIVE_BYTES.load(Ordering::Relaxed) - before;

    assert_eq!(
        growth, 0,
        "steady-state diffing leaked {growth} net bytes over 150 diffs \
         (the scratch must reuse its capacity and every per-diff allocation \
         must die with its DiffResult)"
    );
}
