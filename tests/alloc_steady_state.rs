//! Heap-instrumented proof of the allocation-free hot path.
//!
//! A counting global allocator tracks net live bytes. After a warm-up that
//! fills the `DiffScratch` capacity, interns every symbol, and touches every
//! lazily initialised global, repeating the same diff workload must not grow
//! the heap at all: every transient allocation (delta ops, the cloned new
//! version) is freed with its `DiffResult`, and the scratch reuses its
//! capacity instead of reallocating.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Mutex;

use xydiff_suite::xydelta::{CaptureMode, PayloadSource, XidDocument};
use xydiff_suite::xydiff::Differ;
use xydiff_suite::xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};
use xydiff_suite::xytree::Document;

/// The harness runs `#[test]` fns on concurrent threads, but every test
/// here reads the one global byte counter — serialize them.
static GATE: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static LIVE_BYTES: AtomicIsize = AtomicIsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(new_size as isize - layout.size() as isize, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The shared workload: three kinds, two change rates, parsed once up front.
fn workload() -> Vec<(XidDocument, Document)> {
    let mut cases = Vec::new();
    for (i, kind) in [DocKind::Catalog, DocKind::Feed, DocKind::Generic].into_iter().enumerate() {
        for (j, rate) in [0.05f64, 0.2].into_iter().enumerate() {
            let seed = 500 + (i * 7 + j) as u64;
            let doc = generate(&DocGenConfig {
                kind,
                target_nodes: 400,
                seed,
                id_attributes: matches!(kind, DocKind::Catalog),
            });
            let old = XidDocument::assign_initial(doc);
            let sim = simulate(&old, &ChangeConfig::uniform(rate, seed ^ 0xbeef));
            cases.push((old, sim.new_version.doc.clone()));
        }
    }
    cases
}

#[test]
fn steady_state_diffing_does_not_grow_the_heap() {
    let _gate = GATE.lock().unwrap();
    let cases = workload();
    let mut differ = Differ::new();

    // Warm-up: grows the differ's scratch to workload capacity and
    // initialises every lazy global on this path (symbol interner, hash
    // tables).
    for _ in 0..5 {
        for (old, new) in &cases {
            let _ = differ.diff(old, new);
        }
    }

    let before = LIVE_BYTES.load(Ordering::Relaxed);
    for _ in 0..25 {
        for (old, new) in &cases {
            let _ = differ.diff(old, new);
        }
    }
    let growth = LIVE_BYTES.load(Ordering::Relaxed) - before;

    assert_eq!(
        growth, 0,
        "steady-state diffing leaked {growth} net bytes over 150 diffs \
         (the scratch must reuse its capacity and every per-diff allocation \
         must die with its DiffResult)"
    );
}

/// Same property over the zero-copy phase-5 capture path: borrowed
/// payloads reference the source arenas instead of cloning subtrees, and
/// materializing them at the `into_owned()` boundary is a transient whose
/// bytes die with the owned delta. Net heap growth must still be zero.
#[test]
fn steady_state_zero_copy_capture_does_not_grow_the_heap() {
    let _gate = GATE.lock().unwrap();
    let cases = workload();

    let mut differ = Differ::new().with_capture(CaptureMode::Borrowed);

    let run_round = |differ: &mut Differ| {
        for (old, new) in &cases {
            let result = differ.diff_consume(old, new.clone());
            let src = PayloadSource {
                old: &old.doc.tree,
                new: &result.new_version.doc.tree,
            };
            let owned = result.delta.into_owned(&src);
            assert!(!owned.has_borrowed_payloads());
        }
    };

    for _ in 0..5 {
        run_round(&mut differ);
    }

    let before = LIVE_BYTES.load(Ordering::Relaxed);
    for _ in 0..25 {
        run_round(&mut differ);
    }
    let growth = LIVE_BYTES.load(Ordering::Relaxed) - before;

    assert_eq!(
        growth, 0,
        "steady-state zero-copy capture leaked {growth} net bytes over 150 \
         diffs (borrowed payloads, their excluded-node lists and the \
         materialized owned delta must all die with each round)"
    );
}
