//! Large-scale end-to-end runs. The enabled test covers a mid-size site;
//! the `#[ignore]`d one reproduces the full §6.2 INRIA scale (run with
//! `cargo test --release -- --ignored heavy`).

use xydiff_suite::xydelta::XidDocument;
use xydiff_suite::xydiff::{diff, DiffOptions};
use xydiff_suite::xysim::{evolve_site, site_snapshot, SiteConfig};

fn site_roundtrip(pages: usize, churn: f64) {
    let old = XidDocument::assign_initial(site_snapshot(&SiteConfig {
        pages,
        sections: (pages / 250).max(4),
        seed: 31,
    }));
    let evolved = evolve_site(&old, churn, 77);
    let r = diff(&old, &evolved.new_version.doc, &DiffOptions::default());
    let mut replay = old.clone();
    r.delta.apply_to(&mut replay).unwrap();
    assert_eq!(replay.doc.to_xml(), evolved.new_version.doc.to_xml());
    // Inverse too — reconstruction is the warehouse's storage model.
    r.delta.inverted().apply_to(&mut replay).unwrap();
    assert_eq!(replay.doc.to_xml(), old.doc.to_xml());
    // Low churn must produce a delta far smaller than the snapshot.
    let delta_bytes = r.delta.size_bytes();
    let doc_bytes = old.doc.to_xml().len();
    assert!(
        delta_bytes < doc_bytes,
        "delta {delta_bytes} B vs snapshot {doc_bytes} B"
    );
}

#[test]
fn two_thousand_page_site_roundtrips() {
    site_roundtrip(2_000, 0.02);
}

#[test]
#[ignore = "INRIA-scale (~3 MB, several seconds in debug builds)"]
fn heavy_inria_scale_site_roundtrips() {
    site_roundtrip(14_000, 0.02);
}
