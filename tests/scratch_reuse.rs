//! Scratch reuse and signature-cache equivalence.
//!
//! The working memory a [`Differ`] owns (its scratch) and `SignatureCache`
//! are pure allocation optimisations: the diff's observable output — delta,
//! new version, statistics — must be byte-identical whether the working
//! memory is fresh, reused across many unrelated diffs, or seeded from a
//! previous version's cache. These tests quantify that over random documents
//! and over warehouse version chains, and pin the deprecated multi-arg
//! entry points to the `Differ` results.

use std::cell::RefCell;

use proptest::prelude::*;
use xydiff_suite::xydelta::{xml_io, XidDocument};
use xydiff_suite::xydiff::{diff, Differ, DiffOptions, SignatureCache};
use xydiff_suite::xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};
use xydiff_suite::xytree::{Document, NodeKind, Tree};
use xydiff_suite::xywarehouse::{Alerter, Repository};

/// A recursively generated node spec (same shape as tests/props.rs: a small
/// vocabulary forces the label collisions the candidate machinery resolves).
#[derive(Debug, Clone)]
enum Spec {
    Element { name: &'static str, attrs: Vec<(&'static str, String)>, children: Vec<Spec> },
    Text(String),
    Comment(String),
}

const NAMES: &[&str] = &["a", "b", "item", "list", "x"];
const ATTRS: &[&str] = &["id", "k", "lang"];

fn arb_spec() -> impl Strategy<Value = Spec> {
    let leaf = prop_oneof![
        "[a-z]{1,8}".prop_map(Spec::Text),
        "[a-z ]{0,6}".prop_map(Spec::Comment),
        (0usize..NAMES.len()).prop_map(|i| Spec::Element {
            name: NAMES[i],
            attrs: vec![],
            children: vec![]
        }),
    ];
    leaf.prop_recursive(4, 48, 5, |inner| {
        (
            0usize..NAMES.len(),
            proptest::collection::vec((0usize..ATTRS.len(), "[a-z0-9]{0,4}"), 0..3),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(n, attrs, children)| {
                let mut seen = std::collections::HashSet::new();
                let attrs = attrs
                    .into_iter()
                    .filter(|(i, _)| seen.insert(*i))
                    .map(|(i, v)| (ATTRS[i], v))
                    .collect();
                Spec::Element { name: NAMES[n], attrs, children }
            })
    })
}

fn build(spec: &Spec) -> Document {
    fn add(tree: &mut Tree, parent: xydiff_suite::xytree::NodeId, spec: &Spec) {
        match spec {
            Spec::Text(t) => {
                if t.trim().is_empty() {
                    return;
                }
                if let Some(last) = tree.last_child(parent) {
                    if let NodeKind::Text(prev) = tree.kind_mut(last) {
                        prev.push_str(t);
                        return;
                    }
                }
                let n = tree.new_text(t.clone());
                tree.append_child(parent, n);
            }
            Spec::Comment(c) => {
                let n = tree.new_node(NodeKind::Comment(c.clone()));
                tree.append_child(parent, n);
            }
            Spec::Element { name, attrs, children } => {
                let n = tree.new_element(*name);
                for (k, v) in attrs {
                    tree.element_mut(n).unwrap().set_attr(*k, v.clone());
                }
                tree.append_child(parent, n);
                for c in children {
                    add(tree, n, c);
                }
            }
        }
    }
    let mut tree = Tree::new();
    let root_elem = tree.new_element("root");
    let root = tree.root();
    tree.append_child(root, root_elem);
    if let Spec::Element { children, .. } = spec {
        for c in children {
            add(&mut tree, root_elem, c);
        }
    } else {
        add(&mut tree, root_elem, spec);
    }
    Document::from_tree(tree)
}

thread_local! {
    /// One differ shared by every proptest case on this thread, so by the
    /// end of a run its scratch has been reused across 100+ diffs of
    /// unrelated documents of wildly different sizes — the dirtiest state
    /// it can be in.
    static SHARED: RefCell<Differ> = RefCell::new(Differ::new());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A reused differ produces exactly the result a fresh diff does.
    #[test]
    fn reused_differ_matches_fresh(sa in arb_spec(), sb in arb_spec()) {
        let a = XidDocument::assign_initial(build(&sa));
        let b = build(&sb);
        let fresh = diff(&a, &b, &DiffOptions::default());
        let reused = SHARED.with(|s| s.borrow_mut().diff(&a, &b));
        prop_assert_eq!(
            xml_io::delta_to_xml(&fresh.delta),
            xml_io::delta_to_xml(&reused.delta),
        );
        prop_assert_eq!(fresh.new_version.doc.to_xml(), reused.new_version.doc.to_xml());
        prop_assert_eq!(fresh.stats.matched_nodes, reused.stats.matched_nodes);
    }

    /// Same with an external cache: a cache warmed by an unrelated earlier
    /// diff never changes the outcome (its entries are keyed by XID, so at
    /// worst they miss — the coherence contract is exercised by the chain
    /// tests).
    #[test]
    fn cached_diff_matches_fresh(sa in arb_spec(), sb in arb_spec()) {
        let a = XidDocument::assign_initial(build(&sa));
        let b = build(&sb);
        let fresh = diff(&a, &b, &DiffOptions::default());
        let mut differ = Differ::new();
        let mut cache = SignatureCache::new();
        // First run refreshes the cache for `a`'s XIDs; second run replays it.
        let warm = differ.diff_with_cache(&a, &b, &mut cache);
        prop_assert_eq!(
            xml_io::delta_to_xml(&fresh.delta),
            xml_io::delta_to_xml(&warm.delta),
        );
        prop_assert_eq!(fresh.new_version.doc.to_xml(), warm.new_version.doc.to_xml());
    }

    /// Interleaving matchers on one differ must not let one mode's run
    /// perturb another's: a BULD diff after an unordered and a similarity
    /// diff (same differ, same scratch) stays byte-identical to a
    /// fresh-memory BULD diff. (The deprecated multi-arg entry points this
    /// block used to pin are gone; every caller holds a `Differ` now.)
    #[test]
    fn mode_interleaving_leaves_scratch_coherent(sa in arb_spec(), sb in arb_spec()) {
        use xydiff_suite::xydiff::MatchMode;
        let a = XidDocument::assign_initial(build(&sa));
        let b = build(&sb);
        let fresh = diff(&a, &b, &DiffOptions::default());
        let mut differ = Differ::new();
        for mode in [MatchMode::Unordered, MatchMode::Similarity] {
            differ.options_mut().mode = mode;
            let r = differ.diff(&a, &b);
            let mut replay = a.clone();
            r.delta.apply_to(&mut replay).unwrap_or_else(|e| panic!("{mode}: {e}"));
            prop_assert_eq!(replay.doc.to_xml(), b.to_xml());
        }
        differ.options_mut().mode = MatchMode::Buld;
        let reused = differ.diff(&a, &b);
        prop_assert_eq!(
            xml_io::delta_to_xml(&fresh.delta),
            xml_io::delta_to_xml(&reused.delta),
        );
    }
}

/// A version chain of `n` successive simulator edits over a generated doc.
fn version_chain(kind: DocKind, n: usize, seed: u64) -> Vec<String> {
    let doc = generate(&DocGenConfig {
        kind,
        target_nodes: 600,
        seed,
        id_attributes: matches!(kind, DocKind::Catalog),
    });
    let mut latest = XidDocument::assign_initial(doc);
    let mut xmls = vec![latest.doc.to_xml()];
    for i in 0..n {
        let sim = simulate(&latest, &ChangeConfig::uniform(0.12, seed ^ (i as u64 + 1)));
        latest = sim.new_version;
        xmls.push(latest.doc.to_xml());
    }
    xmls
}

/// Across a whole version chain, diffing with a carried-over signature cache
/// (the warehouse steady state) equals diffing cold — and the cache actually
/// hits, otherwise this test would be vacuous.
#[test]
fn cached_chain_equals_cold_chain() {
    for (kind, seed) in [(DocKind::Catalog, 11u64), (DocKind::Feed, 23), (DocKind::Generic, 37)] {
        let chain = version_chain(kind, 5, seed);
        let mut differ = Differ::new();
        let mut cache = SignatureCache::new();
        let mut latest = XidDocument::parse_initial(&chain[0]).unwrap();
        for new_xml in &chain[1..] {
            let new_doc = Document::parse(new_xml).unwrap();
            let cold = diff(&latest, &new_doc, &DiffOptions::default());
            let cached = differ.diff_with_cache(&latest, &new_doc, &mut cache);
            assert_eq!(
                xml_io::delta_to_xml(&cold.delta),
                xml_io::delta_to_xml(&cached.delta),
                "cached delta must be byte-identical ({kind:?})"
            );
            assert_eq!(cold.new_version.doc.to_xml(), cached.new_version.doc.to_xml());
            latest = cached.new_version;
        }
        let (hits, misses) = cache.counters();
        assert!(hits > 0, "the cache never hit on a {kind:?} chain (misses: {misses})");
        // After the first diff warms it, the old side of each later diff
        // should be mostly replayed, not re-hashed.
        assert!(
            hits > misses,
            "expected mostly hits on the old sides of a 5-version chain, got {hits} hits / {misses} misses"
        );
    }
}

/// The repository-level toggle: a cache-enabled warehouse and a cache-
/// disabled one ingest the same chains and must store byte-identical deltas
/// and reconstruct byte-identical historical versions.
#[test]
fn warehouse_cache_on_off_is_equivalent() {
    let mut repo_off = Repository::with_options(DiffOptions::default(), Alerter::new());
    repo_off.set_signature_cache(false);
    let repo_on = Repository::with_options(DiffOptions::default(), Alerter::new());

    let chains: Vec<(String, Vec<String>)> = [DocKind::Catalog, DocKind::AddressBook]
        .into_iter()
        .enumerate()
        .map(|(i, kind)| (format!("doc-{i}"), version_chain(kind, 4, 100 + i as u64)))
        .collect();

    for (key, xmls) in &chains {
        for xml in xmls {
            let out_on = repo_on.load_version(key, xml).unwrap();
            let out_off = repo_off.load_version(key, xml).unwrap();
            assert_eq!(out_on.version, out_off.version);
            assert_eq!(
                xml_io::delta_to_xml(&out_on.delta),
                xml_io::delta_to_xml(&out_off.delta),
                "cache on/off deltas diverged for {key} v{}",
                out_on.version
            );
        }
    }
    for (key, xmls) in &chains {
        for (v, xml) in xmls.iter().enumerate() {
            let on = repo_on.version_xml(key, v).unwrap();
            let off = repo_off.version_xml(key, v).unwrap();
            assert_eq!(on, off, "reconstructed {key} v{v} diverged");
            assert_eq!(&on, xml, "reconstruction must reproduce the ingested bytes");
        }
        let (hits, _misses) = repo_on.cache_counters(key);
        assert!(hits > 0, "cache-enabled repository never hit for {key}");
        assert_eq!(repo_off.cache_counters(key), (0, 0), "disabled cache must stay cold");
    }
}
