//! Cross-crate integration: the full Xyleme-Change loop (Figure 1) driven by
//! the change simulator, plus baseline cross-checks.

use xydiff_suite::xybase;
use xydiff_suite::xydelta::XidDocument;
use xydiff_suite::xydiff::{diff, DiffOptions};
use xydiff_suite::xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};
use xydiff_suite::xywarehouse::{Alerter, OpFilter, Repository, Subscription};

/// Feed a simulated stream of versions through the repository and verify
/// every stored version reconstructs exactly.
#[test]
fn warehouse_ingest_loop_with_simulator() {
    let repo = Repository::new();
    let doc = generate(&DocGenConfig {
        kind: DocKind::Catalog,
        target_nodes: 400,
        seed: 1,
        id_attributes: false,
    });
    let mut history = vec![doc.to_xml()];
    repo.load_version("cat.xml", &history[0]).unwrap();

    let mut current = XidDocument::assign_initial(doc);
    for step in 0..5u64 {
        let sim = simulate(&current, &ChangeConfig::uniform(0.08, step));
        let xml = sim.new_version.doc.to_xml();
        let out = repo.load_version("cat.xml", &xml).unwrap();
        assert_eq!(out.version, step as usize + 1);
        history.push(xml);
        current = sim.new_version;
    }

    assert_eq!(repo.version_count("cat.xml"), history.len());
    for (i, xml) in history.iter().enumerate() {
        assert_eq!(
            &repo.version_xml("cat.xml", i).unwrap(),
            xml,
            "version {i} must reconstruct"
        );
    }
    // Aggregated deltas across the whole history replay correctly too.
    let agg = repo.delta_between("cat.xml", 0, history.len() - 1).unwrap();
    let mut v0 = XidDocument::assign_initial(
        xydiff_suite::xytree::Document::parse(&history[0]).unwrap(),
    );
    // delta_between is expressed over the chain's own XID space; re-diff the
    // reconstructed endpoints instead for an independent check.
    assert!(!agg.is_empty());
    let last = repo.version_xml("cat.xml", history.len() - 1).unwrap();
    let last_doc = xydiff_suite::xytree::Document::parse(&last).unwrap();
    let r = diff(&v0, &last_doc, &DiffOptions::default());
    r.delta.apply_to(&mut v0).unwrap();
    assert_eq!(v0.doc.to_xml(), last);
}

/// Subscriptions fire exactly for matching operations in a realistic stream.
#[test]
fn subscriptions_fire_on_simulated_changes() {
    let mut alerter = Alerter::new();
    alerter.subscribe(Subscription::everything("any-change"));
    alerter.subscribe(
        Subscription::everything("product-inserts")
            .at_path(["product"])
            .only(OpFilter::Insert),
    );
    let repo = Repository::with_options(DiffOptions::default(), alerter);

    let doc = generate(&DocGenConfig {
        kind: DocKind::Catalog,
        target_nodes: 500,
        seed: 9,
        id_attributes: false,
    });
    repo.load_version("cat.xml", &doc.to_xml()).unwrap();
    let old = XidDocument::assign_initial(doc);
    let sim = simulate(&old, &ChangeConfig::uniform(0.15, 3));
    let out = repo
        .load_version("cat.xml", &sim.new_version.doc.to_xml())
        .unwrap();

    assert_eq!(
        out.notifications
            .iter()
            .filter(|n| n.subscription == "any-change")
            .count(),
        out.delta.len(),
        "the catch-all subscription fires once per op"
    );
    for n in &out.notifications {
        if n.subscription == "product-inserts" {
            assert_eq!(n.op_kind, "insert");
            assert!(n.path.ends_with("product"), "path {} must end in product", n.path);
        }
    }
}

/// BULD vs the exact XID diff: given the same two versions, BULD's delta may
/// differ in shape but must never be wildly larger on record-structured data.
#[test]
fn buld_close_to_perfect_across_kinds_and_rates() {
    for kind in [DocKind::Catalog, DocKind::AddressBook, DocKind::Feed] {
        for rate in [0.02, 0.1, 0.25] {
            let doc = generate(&DocGenConfig {
                kind,
                target_nodes: 900,
                seed: 17,
                id_attributes: false,
            });
            let old = XidDocument::assign_initial(doc);
            let sim = simulate(&old, &ChangeConfig::uniform(rate, 23));
            let r = diff(&old, &sim.new_version.doc, &DiffOptions::default());
            let ours = r.delta.size_bytes();
            let perfect = sim.perfect_delta.size_bytes().max(1);
            let ratio = ours as f64 / perfect as f64;
            assert!(
                ratio < 2.5,
                "{kind:?} at {rate}: {ours} B vs perfect {perfect} B ({ratio:.2})"
            );
        }
    }
}

/// The DiffMK baseline pays delete+insert for a move that XyDiff gets for
/// one op — the paper's §3 criticism, checked end to end.
#[test]
fn move_detection_beats_diffmk_on_reordered_sections() {
    let doc = generate(&DocGenConfig {
        kind: DocKind::Catalog,
        target_nodes: 600,
        seed: 4,
        id_attributes: false,
    });
    let old = XidDocument::assign_initial(doc.clone());
    // Rotate the categories: pure structural move.
    let mut new = doc;
    let root = new.root_element().unwrap();
    let first = new.tree.first_child(root).unwrap();
    new.tree.detach(first);
    new.tree.append_child(root, first);

    let r = diff(&old, &new, &DiffOptions::default());
    assert_eq!(r.delta.counts().moves, 1);
    assert_eq!(r.delta.counts().total(), 1);

    let mk = xybase::diffmk_diff(&old.doc, &new);
    assert!(
        mk.edit_ops() > 10,
        "DiffMK must pay per-token for the move, got {}",
        mk.edit_ops()
    );
    assert!(
        r.delta.size_bytes() < mk.patch_bytes,
        "xydelta {} B should beat DiffMK {} B on a big move",
        r.delta.size_bytes(),
        mk.patch_bytes
    );
}

/// The Selkow baseline agrees with XyDiff when nothing moved: both see the
/// same inserts/deletes on leaf-level edits.
#[test]
fn selkow_cost_tracks_simple_edit_sizes() {
    let old_doc = xydiff_suite::xytree::Document::parse(
        "<a><b>one</b><c><d/><e/></c></a>",
    )
    .unwrap();
    let new_doc = xydiff_suite::xytree::Document::parse(
        "<a><b>one</b><c><d/></c></a>",
    )
    .unwrap();
    let s = xybase::selkow_distance(&old_doc, &new_doc);
    assert_eq!(s.cost, 1, "deleting <e/> costs its single node");
    let old = XidDocument::assign_initial(old_doc);
    let r = diff(&old, &new_doc, &DiffOptions::default());
    assert_eq!(r.delta.counts().deletes, 1);
    assert_eq!(r.delta.counts().total(), 1);
}

/// Unix diff and XyDiff must both round-trip nothing on identical inputs.
#[test]
fn all_engines_agree_on_no_change()
{
    let doc = generate(&DocGenConfig {
        kind: DocKind::Feed,
        target_nodes: 300,
        seed: 2,
        id_attributes: false,
    });
    let xml = doc.to_xml();
    assert_eq!(xybase::unix_diff_size(&xml, &xml), 0);
    assert_eq!(xybase::diffmk_diff(&doc, &doc).edit_ops(), 0);
    assert_eq!(xybase::selkow_distance(&doc, &doc).cost, 0);
    let old = XidDocument::assign_initial(doc.clone());
    let r = diff(&old, &doc, &DiffOptions::default());
    assert!(r.delta.is_empty());
}
