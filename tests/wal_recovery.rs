//! Crash-point recovery properties over the write-ahead delta log.
//!
//! The durability contract says: whatever prefix of the log survives a
//! crash, `replay(empty warehouse, log prefix)` reconstructs a warehouse
//! byte-identical to the pre-crash reference truncated to that prefix.
//! The deterministic test sweeps *every* crash point — each record
//! boundary and several mid-record offsets — and the property test does
//! the same for random histories and random cut points. A third test
//! checks the last line of defence: a logged record whose frame checksum
//! holds but whose delta payload is semantically corrupt is rejected by
//! the static validator during replay, before it can reach a chain.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use xydiff_suite::xydelta::xml_io;
use xydiff_suite::xytree::Document;
use xydiff_suite::xywal::{Record, Wal, WalConfig};
use xydiff_suite::xywarehouse::{replay, ReplayError, Repository};

fn tmpdir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "xydiff-wal-recovery-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn canonical(xml: &str) -> String {
    Document::parse(xml).expect("test payload parses").to_xml()
}

/// The one segment file of a small log.
fn segment_path(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read wal dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
        .collect();
    assert_eq!(segs.len(), 1, "test log must fit one segment");
    segs.pop().expect("one segment")
}

/// Run `history` through a reference repository while logging each
/// completed version to a fresh WAL in `dir` — exactly the server's ack
/// path: `Init` with the canonical first version, then one `Delta` record
/// per ingest. Returns the reference and the segment length after each
/// append (= the record boundaries a crash can land between).
fn build_log(dir: &Path, history: &[(String, String)]) -> (Repository, Vec<u64>) {
    let reference = Repository::new();
    let (wal, recovery) = Wal::open(&WalConfig::new(dir)).expect("open fresh wal");
    assert_eq!(recovery.records.len(), 0, "fresh wal must be empty");
    let seg = segment_path(dir);
    let mut boundaries = Vec::new();
    for (key, xml) in history {
        let first = reference.version_count(key) == 0;
        let out = reference.load_version(key, xml).expect("reference ingest");
        let record = if first {
            Record::Init { key: key.clone(), xml: canonical(xml) }
        } else {
            Record::Delta {
                key: key.clone(),
                version: out.version as u64,
                delta_xml: xml_io::delta_to_xml(&out.delta),
            }
        };
        wal.append(&record).expect("append");
        boundaries.push(fs::metadata(&seg).expect("segment metadata").len());
    }
    (reference, boundaries)
}

/// Simulate a crash at byte offset `cut`: copy the segment into a fresh
/// directory, truncate it, and open the log there. Returns what recovery
/// handed back.
fn recover_at(seg: &Path, cut: u64, crash_dir: &Path) -> (Vec<(u64, Record)>, bool) {
    let dst = crash_dir.join(seg.file_name().expect("segment name"));
    fs::copy(seg, &dst).expect("copy segment");
    let file = fs::OpenOptions::new().write(true).open(&dst).expect("open copy");
    file.set_len(cut).expect("truncate copy");
    drop(file);
    let (_wal, recovery) = Wal::open(&WalConfig::new(crash_dir)).expect("open crashed wal");
    (recovery.records, recovery.torn)
}

/// Replay `records` into a fresh repository and demand byte-identical
/// agreement with the reference on every reconstructed version.
fn assert_prefix_replay(reference: &Repository, records: &[(u64, Record)]) {
    let shards = vec![Repository::new()];
    let stats = replay::apply_records(records, &shards, |_| 0).expect("replay clean prefix");
    assert_eq!(stats.total(), records.len());
    assert_eq!(stats.skipped, 0, "no snapshot, so nothing may be skipped");

    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for (_, record) in records {
        *counts.entry(record.key()).or_default() += 1;
    }
    let repo = &shards[0];
    assert_eq!(repo.doc_count(), counts.len());
    for (key, versions) in counts {
        assert_eq!(repo.version_count(key), versions, "key {key:?}");
        for v in 0..versions {
            assert_eq!(
                repo.version_xml(key, v).expect("replayed version"),
                reference.version_xml(key, v).expect("reference version"),
                "key {key:?} version {v} must be byte-identical after replay",
            );
        }
    }
}

/// A small three-key history with enough shape variety that every delta
/// carries inserts, deletes and updates.
fn fixed_history() -> Vec<(String, String)> {
    let keys = ["alpha", "beta", "gamma"];
    let mut history = Vec::new();
    for round in 0..4 {
        for (k, key) in keys.iter().enumerate() {
            let items: String = (0..=round + k)
                .map(|i| format!("<item id=\"{i}\">r{round}-{}</item>", "pad".repeat(i + 1)))
                .collect();
            history.push((
                (*key).to_string(),
                format!("<doc round=\"{round}\"><list>{items}</list></doc>"),
            ));
        }
    }
    history
}

#[test]
fn every_crash_point_recovers_exactly_the_acked_prefix() {
    let dir = tmpdir("sweep");
    let history = fixed_history();
    let (reference, boundaries) = build_log(&dir, &history);
    let seg = segment_path(&dir);
    const HEADER: u64 = 16;

    // Crash points: before/inside the header, at the bare header, at every
    // record boundary, and twice inside every record.
    let mut cuts: Vec<u64> = vec![0, 1, HEADER - 1, HEADER];
    let mut prev = HEADER;
    for &b in &boundaries {
        cuts.extend([prev + 1, prev + (b - prev) / 2, b]);
        prev = b;
    }

    for cut in cuts {
        let crash_dir = tmpdir("sweep-cut");
        let (records, torn) = recover_at(&seg, cut, &crash_dir);
        let expected = boundaries.iter().filter(|&&b| b <= cut).count();
        assert_eq!(
            records.len(),
            expected,
            "cut at byte {cut} must recover exactly the {expected} fully-written records",
        );
        let clean = cut == HEADER || boundaries.contains(&cut);
        assert_eq!(torn, !clean, "cut at byte {cut}: torn must mean mid-record");
        assert_prefix_replay(&reference, &records);
        let _ = fs::remove_dir_all(&crash_dir);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_logged_delta_is_rejected_before_reaching_the_chain() {
    let dir = tmpdir("corrupt");
    let history: Vec<(String, String)> = vec![
        ("doc".into(), "<doc><a>one</a></doc>".into()),
        ("doc".into(), "<doc><a>two</a><b/></doc>".into()),
    ];
    let (reference, _) = build_log(&dir, &history);
    // A frame-valid record whose payload is semantically corrupt: the
    // update's XID and value cannot belong to any chain state.
    {
        let (wal, _) = Wal::open(&WalConfig::new(&dir)).expect("reopen wal");
        wal.append(&Record::Delta {
            key: "doc".into(),
            version: 2,
            delta_xml: "<delta><update xid=\"99\" old=\"x\" new=\"y\"/></delta>".into(),
        })
        .expect("append corrupt payload");
    }

    let (_wal, recovery) = Wal::open(&WalConfig::new(&dir)).expect("open for replay");
    assert_eq!(recovery.records.len(), 3, "checksums hold, so all frames survive");
    assert!(!recovery.torn);

    let shards = vec![Repository::new()];
    let err = replay::apply_records(&recovery.records, &shards, |_| 0)
        .expect_err("corrupt payload must fail replay");
    assert!(
        matches!(
            err,
            ReplayError::Parse { .. } | ReplayError::Invalid { .. } | ReplayError::Apply { .. }
        ),
        "got {err:?}",
    );
    // The valid prefix was applied; the corrupt record never reached the
    // chain, and what did apply is still byte-identical to the reference.
    let repo = &shards[0];
    assert_eq!(repo.version_count("doc"), 2);
    for v in 0..2 {
        assert_eq!(
            repo.version_xml("doc", v).expect("replayed"),
            reference.version_xml("doc", v).expect("reference"),
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random histories, random crash offsets: the recovered record count
    /// is exactly the number of fully-persisted appends, and replaying
    /// them reconstructs the reference prefix byte-for-byte.
    #[test]
    fn replay_matches_reference_at_random_crash_points(
        ops in proptest::collection::vec(
            (0usize..3, proptest::collection::vec("[a-z]{1,6}", 1..5)),
            1..10,
        ),
        cut_permille in 0u64..=1000,
    ) {
        let history: Vec<(String, String)> = ops
            .iter()
            .map(|(k, words)| {
                let items: String =
                    words.iter().map(|w| format!("<i>{w}</i>")).collect();
                (format!("k{k}"), format!("<doc>{items}</doc>"))
            })
            .collect();
        let dir = tmpdir("prop");
        let (reference, boundaries) = build_log(&dir, &history);
        let seg = segment_path(&dir);
        let last = *boundaries.last().expect("at least one record");
        let cut = 16 + (last - 16) * cut_permille / 1000;

        let crash_dir = tmpdir("prop-cut");
        let (records, _) = recover_at(&seg, cut, &crash_dir);
        prop_assert_eq!(
            records.len(),
            boundaries.iter().filter(|&&b| b <= cut).count(),
        );
        assert_prefix_replay(&reference, &records);
        let _ = fs::remove_dir_all(&crash_dir);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Run `history` through a bare `Differ` with the given capture mode,
/// logging Init + Delta records exactly like the server's ack path, and
/// return the raw segment bytes. With `CaptureMode::Borrowed` every delta
/// crosses the `into_owned()` boundary before serialization — the path
/// the warehouse uses in production since the zero-copy capture landed.
fn log_with_capture(
    dir: &Path,
    history: &[(String, String)],
    capture: xydiff_suite::xydelta::CaptureMode,
) -> Vec<u8> {
    use xydiff_suite::xydelta::{PayloadSource, XidDocument};
    use xydiff_suite::xydiff::Differ;

    let (wal, recovery) = Wal::open(&WalConfig::new(dir)).expect("open fresh wal");
    assert!(recovery.records.is_empty(), "fresh wal must be empty");
    let mut current: BTreeMap<String, (XidDocument, u64)> = BTreeMap::new();
    let mut differ = Differ::new().with_capture(capture);
    for (key, xml) in history {
        match current.get_mut(key) {
            None => {
                let doc = Document::parse(xml).expect("history parses");
                wal.append(&Record::Init { key: key.clone(), xml: doc.to_xml() })
                    .expect("append init");
                current.insert(key.clone(), (XidDocument::assign_initial(doc), 0));
            }
            Some((old, version)) => {
                let new = Document::parse(xml).expect("history parses");
                let result = differ.diff_consume(old, new);
                let delta = {
                    let src = PayloadSource {
                        old: &old.doc.tree,
                        new: &result.new_version.doc.tree,
                    };
                    result.delta.into_owned(&src)
                };
                xydiff_suite::xydelta::verify(&delta).expect("materialized delta verifies");
                *version += 1;
                wal.append(&Record::Delta {
                    key: key.clone(),
                    version: *version,
                    delta_xml: xml_io::delta_to_xml(&delta),
                })
                .expect("append delta");
                *old = result.new_version;
            }
        }
    }
    fs::read(segment_path(dir)).expect("read segment")
}

/// The durable format must not notice the zero-copy capture: a WAL
/// segment whose deltas came from arena-borrowed payloads materialized at
/// the `into_owned()` boundary is bit-identical to one logged from owned
/// captures, and it replays into the full history.
#[test]
fn zero_copy_deltas_log_bit_identically_and_replay() {
    let history = fixed_history();
    let owned_dir = tmpdir("owned-capture");
    let borrowed_dir = tmpdir("borrowed-capture");
    let owned = log_with_capture(&owned_dir, &history, xydiff_suite::xydelta::CaptureMode::Owned);
    let borrowed =
        log_with_capture(&borrowed_dir, &history, xydiff_suite::xydelta::CaptureMode::Borrowed);
    assert_eq!(
        owned, borrowed,
        "zero-copy capture must be invisible in the durable segment bytes"
    );

    let (_wal, recovery) = Wal::open(&WalConfig::new(&borrowed_dir)).expect("reopen");
    assert!(!recovery.torn);
    assert_eq!(recovery.records.len(), history.len());
    let shards = vec![Repository::new()];
    let stats =
        replay::apply_records(&recovery.records, &shards, |_| 0).expect("replay zero-copy log");
    assert_eq!(stats.total(), history.len());
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for (key, xml) in &history {
        let v = *seen.entry(key.as_str()).and_modify(|v| *v += 1).or_insert(0);
        assert_eq!(
            shards[0].version_xml(key, v).expect("replayed version"),
            canonical(xml),
            "key {key:?} version {v}",
        );
    }
    let _ = fs::remove_dir_all(&owned_dir);
    let _ = fs::remove_dir_all(&borrowed_dir);
}

/// Backward compatibility: a segment written by the pre-zero-copy code
/// (checked in under `tests/fixtures/wal-v1/`) still opens, passes every
/// frame checksum, and replays into the exact `fixed_history()` state on
/// the current code.
#[test]
fn v1_fixture_segment_replays_on_current_code() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/wal-v1/seg-00000001.wal");
    let dir = tmpdir("fixture");
    fs::copy(&fixture, dir.join(fixture.file_name().expect("fixture name")))
        .expect("copy checked-in fixture");

    let (_wal, recovery) = Wal::open(&WalConfig::new(&dir)).expect("open v1 fixture");
    assert!(!recovery.torn, "fixture must be a clean segment");
    let history = fixed_history();
    assert_eq!(recovery.records.len(), history.len());

    let shards = vec![Repository::new()];
    let stats =
        replay::apply_records(&recovery.records, &shards, |_| 0).expect("replay v1 fixture");
    assert_eq!(stats.total(), history.len());
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for (key, xml) in &history {
        let v = *seen.entry(key.as_str()).and_modify(|v| *v += 1).or_insert(0);
        assert_eq!(
            shards[0].version_xml(key, v).expect("replayed version"),
            canonical(xml),
            "key {key:?} version {v} must replay from the v1 segment",
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
