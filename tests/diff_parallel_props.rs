//! Equivalence properties for the zero-copy capture path and the
//! intra-document parallel diff.
//!
//! The performance work (DESIGN.md §12) must be invisible in the output:
//! a delta captured with arena-borrowed payloads serializes byte-for-byte
//! like one captured with owned clones, and a diff sharded across worker
//! threads produces byte-for-byte the delta the serial diff produces — at
//! every thread count, including oversubscribed ones. On top of byte
//! equality, the serialized zero-copy delta must still parse and apply:
//! `apply(diff(a, b), a) == b` regardless of `--diff-threads`.

use proptest::prelude::*;
use std::sync::Arc;
use xydiff_suite::xydelta::{xml_io, CaptureMode, PayloadSource, XidDocument};
use xydiff_suite::xydiff::{diff, DiffOptions, Differ, ParallelRunner, StdScopeRunner};
use xydiff_suite::xyserve::DiffRunner;
use xydiff_suite::xysim::{generate, simulate, ChangeConfig, DocGenConfig, DocKind};
use xydiff_suite::xytree::Document;

/// The thread counts the CI matrix pins; 8 oversubscribes every CI host.
const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];

const KINDS: &[DocKind] = &[DocKind::Catalog, DocKind::Feed, DocKind::Generic];

fn corpus_case(kind: DocKind, nodes: usize, rate: f64, seed: u64) -> (XidDocument, Document) {
    let doc = generate(&DocGenConfig {
        kind,
        target_nodes: nodes,
        seed,
        id_attributes: matches!(kind, DocKind::Catalog),
    });
    let old = XidDocument::assign_initial(doc);
    let sim = simulate(&old, &ChangeConfig::uniform(rate, seed ^ 0x5eed));
    (old, sim.new_version.doc.clone())
}

/// Reference output: the plain serial, owned-capture entry point.
fn reference_xml(old: &XidDocument, new: &Document) -> String {
    xml_io::delta_to_xml(&diff(old, new, &DiffOptions::default()).delta)
}

#[test]
fn zero_copy_capture_serializes_byte_identically() {
    for (i, &kind) in KINDS.iter().enumerate() {
        for (j, rate) in [0.05f64, 0.25].into_iter().enumerate() {
            let seed = 900 + (i * 11 + j) as u64;
            let (old, new) = corpus_case(kind, 500, rate, seed);
            let want = reference_xml(&old, &new);

            let mut differ = Differ::new().with_capture(CaptureMode::Borrowed);
            let result = differ.diff_consume(&old, new.clone());
            let src = PayloadSource {
                old: &old.doc.tree,
                new: &result.new_version.doc.tree,
            };
            // Serializing straight off the borrowed arena slices…
            assert_eq!(
                xml_io::delta_to_xml_with(&result.delta, &src),
                want,
                "{kind:?}@{rate}: borrowed serialization diverged from owned"
            );
            // …and materializing first must both match the owned capture.
            let owned = result.delta.into_owned(&src);
            assert!(!owned.has_borrowed_payloads());
            assert_eq!(
                xml_io::delta_to_xml(&owned),
                want,
                "{kind:?}@{rate}: into_owned() changed the serialized delta"
            );
        }
    }
}

#[test]
fn parallel_diff_is_byte_identical_at_every_thread_count() {
    let (old, new) = corpus_case(DocKind::Catalog, 900, 0.15, 41);
    let want = reference_xml(&old, &new);
    for &threads in THREAD_COUNTS {
        // Both runner implementations: the reference scoped-thread runner
        // and the production work-stealing facade.
        let runners: [Arc<dyn ParallelRunner>; 2] = [
            Arc::new(StdScopeRunner::new(threads)),
            Arc::new(DiffRunner::new(threads)),
        ];
        for runner in runners {
            let label = format!("{runner:?} at {threads} threads");
            let mut differ = Differ::new().with_runner(runner);
            let result = differ.diff_consume(&old, new.clone());
            assert_eq!(
                xml_io::delta_to_xml(&result.delta),
                want,
                "{label}: parallel delta diverged from serial"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The full stack at once — zero-copy capture *and* the parallel
    /// runner — against the serial owned reference, plus the end-to-end
    /// patch property on the serialized output: parse the delta XML the
    /// zero-copy path emitted and apply it to `a`; the result must equal
    /// `b` at every thread count.
    #[test]
    fn prop_zero_copy_parallel_diff_applies(
        seed in 0u64..10_000,
        rate_pct in 0u32..35,
        kind_idx in 0usize..3,
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let (old, new) = corpus_case(KINDS[kind_idx], 350, rate, seed);
        let want = reference_xml(&old, &new);
        for &threads in THREAD_COUNTS {
            let mut differ = Differ::new()
                .with_capture(CaptureMode::Borrowed)
                .with_runner(Arc::new(DiffRunner::new(threads)));
            let result = differ.diff_consume(&old, new.clone());
            let src = PayloadSource {
                old: &old.doc.tree,
                new: &result.new_version.doc.tree,
            };
            let got = xml_io::delta_to_xml_with(&result.delta, &src);
            prop_assert_eq!(&got, &want, "threads={}", threads);

            let parsed = xml_io::parse_delta(&got).expect("zero-copy delta XML parses");
            let mut replay = old.clone();
            parsed.apply_to(&mut replay).expect("zero-copy delta applies");
            prop_assert_eq!(
                replay.doc.to_xml(),
                new.to_xml(),
                "threads={}: apply(diff(a,b), a) != b",
                threads
            );
        }
    }
}
