//! Change monitoring: the paper's subscription scenario (§2).
//!
//! "We implemented a subscription system that allows to detect changes of
//! interest in XML documents, e.g., that a new product has been added to a
//! catalog." This example wires the Figure 1 pipeline: crawled versions go
//! into the repository, the diff runs, and the alerter matches every delta
//! against standing subscriptions.
//!
//! ```text
//! cargo run --example catalog_monitoring
//! ```

use xydiff_suite::xywarehouse::{Alerter, OpFilter, Repository, Subscription};
use xydiff_suite::xydiff::DiffOptions;

fn main() {
    let mut alerter = Alerter::new();
    // Fire whenever a product is added anywhere under a catalog.
    alerter.subscribe(
        Subscription::everything("new-products")
            .at_path(["catalog", "product"])
            .only(OpFilter::Insert),
    );
    // Fire on price updates mentioning a markdown.
    alerter.subscribe(
        Subscription::everything("price-changes")
            .at_path(["price"])
            .only(OpFilter::Update),
    );
    // Fire when anything disappears from the cameras document specifically.
    alerter.subscribe(
        Subscription::everything("camera-removals")
            .on_document("cameras.xml")
            .only(OpFilter::Delete),
    );

    let repo = Repository::with_options(DiffOptions::default(), alerter);

    // Crawl 1: initial versions (no notifications — nothing changed yet).
    let out = repo
        .load_version(
            "cameras.xml",
            "<catalog><product><name>tx123</name><price>$499</price></product>\
             <product><name>zy456</name><price>$799</price></product></catalog>",
        )
        .unwrap();
    println!("crawl 1: stored cameras.xml v{} ({} notifications)", out.version, out.notifications.len());

    // Crawl 2: a price drops and a product is added.
    let out = repo
        .load_version(
            "cameras.xml",
            "<catalog><product><name>tx123</name><price>$449</price></product>\
             <product><name>zy456</name><price>$799</price></product>\
             <product><name>abc900</name><price>$899</price></product></catalog>",
        )
        .unwrap();
    println!("\ncrawl 2: stored cameras.xml v{}, delta has {} ops", out.version, out.delta.len());
    for n in &out.notifications {
        println!("  [{}] {} at {} — {:?}", n.subscription, n.op_kind, n.path, n.snippet);
    }
    assert!(out.notifications.iter().any(|n| n.subscription == "new-products"));
    assert!(out.notifications.iter().any(|n| n.subscription == "price-changes"));

    // Crawl 3: a product is dropped.
    let out = repo
        .load_version(
            "cameras.xml",
            "<catalog><product><name>zy456</name><price>$799</price></product>\
             <product><name>abc900</name><price>$899</price></product></catalog>",
        )
        .unwrap();
    println!("\ncrawl 3: stored cameras.xml v{}", out.version);
    for n in &out.notifications {
        println!("  [{}] {} at {} — {:?}", n.subscription, n.op_kind, n.path, n.snippet);
    }
    assert!(out.notifications.iter().any(|n| n.subscription == "camera-removals"));

    // The whole history stays queryable.
    println!("\nstored versions: {}", repo.version_count("cameras.xml"));
    println!("v0 was: {}", repo.version_xml("cameras.xml", 0).unwrap());
}
