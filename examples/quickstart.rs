//! Quickstart: diff two XML documents, inspect the delta, apply and invert.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xydiff_suite::xydelta::{xml_io, XidDocument};
use xydiff_suite::xydiff::{diff, DiffOptions};
use xydiff_suite::xytree::Document;

fn main() {
    // The paper's Figure 2 catalog (§4): tx123 on discount, zy456 new.
    let old_xml = "<Category>\
        <Title>Digital Cameras</Title>\
        <Discount><Product><Name>tx123</Name><Price>$499</Price></Product></Discount>\
        <NewProducts><Product><Name>zy456</Name><Price>$799</Price></Product></NewProducts>\
        </Category>";
    // One week later: tx123 retired, zy456 moved to Discount at a new price,
    // and a fresh product appeared.
    let new_xml = "<Category>\
        <Title>Digital Cameras</Title>\
        <Discount><Product><Name>zy456</Name><Price>$699</Price></Product></Discount>\
        <NewProducts><Product><Name>abc</Name><Price>$899</Price></Product></NewProducts>\
        </Category>";

    // Version 0 gets persistent identifiers (XIDs) in postfix order.
    let v0 = XidDocument::parse_initial(old_xml).expect("old version parses");
    let v1_doc = Document::parse(new_xml).expect("new version parses");

    // Run the BULD diff.
    let result = diff(&v0, &v1_doc, &DiffOptions::default());

    println!("== operations ==");
    print!("{}", result.delta.describe());
    println!("\n== delta as XML ==");
    println!("{}", xml_io::delta_to_xml_pretty(&result.delta));

    let c = result.delta.counts();
    assert_eq!(
        (c.deletes, c.inserts, c.moves, c.updates),
        (1, 1, 1, 1),
        "the Figure 2 delta is one delete, one insert, one move, one update"
    );

    // The delta is sufficient: applying it to v0 reproduces v1 exactly.
    let mut replay = v0.clone();
    result.delta.apply_to(&mut replay).expect("delta applies");
    assert_eq!(replay.doc.to_xml(), v1_doc.to_xml());
    println!("applied delta: v0 -> v1 reproduced byte-for-byte");

    // Completed deltas are invertible: go back to v0.
    result.delta.inverted().apply_to(&mut replay).expect("inverse applies");
    assert_eq!(replay.doc.to_xml(), v0.doc.to_xml());
    println!("applied inverse: v1 -> v0 restored");

    println!(
        "\nmatched {} of {} nodes ({} by signature, {} by propagation) in {:?}",
        result.stats.matched_nodes,
        result.stats.new_nodes,
        result.stats.signature_matches,
        result.stats.propagation_matches,
        result.timings.total(),
    );
}
