//! The §6.2 experiment in miniature: diff two XML snapshots of a web site
//! and compare the delta with Unix diff output.
//!
//! ```text
//! cargo run --release --example site_snapshot
//! ```

use std::time::Instant;
use xydiff_suite::xybase::unix_diff_size;
use xydiff_suite::xydelta::{xml_io, XidDocument};
use xydiff_suite::xydiff::{diff, DiffOptions};
use xydiff_suite::xysim::{evolve_site, site_snapshot, SiteConfig};
use xydiff_suite::xytree::SerializeOptions;

fn main() {
    // A 2 000-page site (scale the paper's 14 000-page INRIA snapshot down
    // so the example runs instantly even in debug builds).
    let cfg = SiteConfig { pages: 2_000, sections: 20, seed: 42 };
    let snapshot = site_snapshot(&cfg);
    let bytes = snapshot.to_xml().len();
    println!("snapshot: {} pages, {} bytes of XML", cfg.pages, bytes);

    // One crawl interval later: 2% of the metadata churned.
    let old = XidDocument::assign_initial(snapshot);
    let evolved = evolve_site(&old, 0.02, 7);

    let t = Instant::now();
    let result = diff(&old, &evolved.new_version.doc, &DiffOptions::default());
    let elapsed = t.elapsed();

    let c = result.delta.counts();
    println!(
        "diff in {elapsed:?}: {} deletes, {} inserts, {} updates, {} moves, {} attr ops",
        c.deletes, c.inserts, c.updates, c.moves, c.attr_ops
    );

    // Compare against Unix diff on the pretty-printed serializations.
    let pretty = SerializeOptions::pretty();
    let old_txt = old.doc.to_xml_with(&pretty);
    let new_txt = evolved.new_version.doc.to_xml_with(&pretty);
    let unix = unix_diff_size(&old_txt, &new_txt);
    let ours = result.delta.size_bytes();
    println!(
        "delta: {ours} bytes vs Unix diff: {unix} bytes (ratio {:.2})",
        ours as f64 / unix as f64
    );

    // The delta still reconstructs the new snapshot exactly.
    let mut replay = old.clone();
    result.delta.apply_to(&mut replay).unwrap();
    assert_eq!(replay.doc.to_xml(), evolved.new_version.doc.to_xml());
    println!("replay check: new snapshot reproduced exactly");

    // Show a few operations as the alerter would see them.
    let delta_doc = xml_io::delta_to_xml_pretty(&result.delta);
    let preview: String = delta_doc.lines().take(8).collect::<Vec<_>>().join("\n");
    println!("\nfirst lines of the delta document:\n{preview}\n…");
}
