//! Diffing HTML pages by XMLizing them first (§1 of the paper), with the
//! full pipeline attached: path queries over the result and an incrementally
//! maintained full-text index.
//!
//! ```text
//! cargo run --example html_diff
//! ```

use xydiff_suite::xydelta::XidDocument;
use xydiff_suite::xydiff::{diff, DiffOptions};
use xydiff_suite::xyhtml::htmlize;
use xydiff_suite::xyindex::DocumentIndex;
use xydiff_suite::xyquery::query;

fn main() {
    // Monday's crawl of a (messy) product page.
    let monday = htmlize(
        "<HTML><BODY>\
         <h1>Weekly specials\
         <ul>\
           <li>Digital camera &mdash; <b>$499</b>\
           <li>Film scanner &mdash; <b>$250</b>\
         </ul>\
         <p>Prices include VAT<p>Offers end Sunday\
         </BODY></HTML>",
    );
    println!("XMLized Monday page:\n{}\n", monday.to_xml_pretty());

    // Friday: the camera price dropped, a new item appeared, the scanner
    // moved to the bottom.
    let friday = htmlize(
        "<html><body>\
         <h1>Weekly specials\
         <ul>\
           <li>Digital camera &mdash; <b>$449</b>\
           <li>Tripod &mdash; <b>$59</b>\
           <li>Film scanner &mdash; <b>$250</b>\
         </ul>\
         <p>Prices include VAT<p>Offers end Sunday\
         </body></html>",
    );

    let v0 = XidDocument::assign_initial(monday);
    let mut index = DocumentIndex::build(&v0);
    assert!(index.contains("camera"));
    assert!(!index.contains("tripod"));

    let result = diff(&v0, &friday, &DiffOptions::default());
    let c = result.delta.counts();
    println!(
        "delta: {} inserts, {} deletes, {} updates, {} moves",
        c.inserts, c.deletes, c.updates, c.moves
    );
    print!("{}", result.delta.describe());

    // The delta reconstructs Friday's page exactly.
    let mut replay = v0.clone();
    result.delta.apply_to(&mut replay).unwrap();
    assert_eq!(replay.doc.to_xml(), friday.to_xml());

    // Query the new version with the path language.
    let prices = query(&result.new_version.doc, "//li/b/text()").unwrap();
    println!("\ncurrent prices: {prices:?}");
    assert!(prices.contains(&"$449".to_string()));

    // The index follows the delta stream — "tripod" is now findable.
    index.apply_delta(&result.delta, &result.new_version);
    assert!(index.contains("tripod"));
    let hits = index.postings_under("tripod", "li");
    println!("index: 'tripod' now has {} posting(s) under <li>", hits.len());
    assert_eq!(hits.len(), 1);
    println!("\nhtml_diff: all assertions passed");
}
