//! Versions and querying the past (§2): version chains, reconstruction,
//! delta aggregation and inversion.
//!
//! ```text
//! cargo run --example version_warehouse
//! ```

use xydiff_suite::xydelta::{aggregate::aggregate_chain, VersionChain, XidDocument};
use xydiff_suite::xydiff::{diff, DiffOptions};
use xydiff_suite::xytree::Document;

fn main() {
    // A feed that evolves over four crawls.
    let versions = [
        "<feed><entry><title>alpha</title></entry></feed>",
        "<feed><entry><title>alpha</title></entry><entry><title>beta</title></entry></feed>",
        "<feed><entry><title>alpha!</title></entry><entry><title>beta</title></entry></feed>",
        "<feed><entry><title>beta</title></entry><entry><title>alpha!</title></entry></feed>",
    ];

    let v0 = XidDocument::parse_initial(versions[0]).unwrap();
    let mut chain = VersionChain::new(v0);

    // Ingest each new version through the diff; the chain stores only the
    // latest snapshot plus the delta sequence (Figure 1: "the old version is
    // then possibly removed from the repository").
    for (i, xml) in versions.iter().enumerate().skip(1) {
        let new_doc = Document::parse(xml).unwrap();
        let result = diff(chain.latest(), &new_doc, &DiffOptions::default());
        println!(
            "v{} -> v{}: {} ops, {} bytes as XML",
            i - 1,
            i,
            result.delta.len(),
            result.delta.size_bytes()
        );
        chain.push_version(result.new_version, result.delta);
    }

    // Querying the past: any version reconstructs from the latest snapshot
    // by applying inverted deltas backwards.
    println!();
    for (i, expected) in versions.iter().enumerate() {
        let vi = chain.version(i).unwrap();
        assert_eq!(&vi.doc.to_xml(), expected);
        println!("reconstructed v{i}: {}", vi.doc.to_xml());
    }

    // Aggregation: one delta describing v0 -> v3 directly.
    let direct = chain.delta_between(0, 3).unwrap();
    println!("\naggregated delta v0 -> v3 ({} ops):", direct.len());
    print!("{}", direct.describe());
    let mut replay = chain.version(0).unwrap();
    direct.apply_to(&mut replay).unwrap();
    assert_eq!(replay.doc.to_xml(), versions[3]);

    // The same computed via the standalone aggregate_chain helper.
    let base = chain.version(0).unwrap();
    let deltas: Vec<_> = (0..3).map(|i| chain.delta(i).unwrap().clone()).collect();
    let agg = aggregate_chain(&base, &deltas).unwrap();
    assert_eq!(agg.len(), direct.len());
    println!("\naggregate_chain agrees: {} ops", agg.len());
}
