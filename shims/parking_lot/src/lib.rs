//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (guards come back directly, no `Result`). A poisoned std lock means a
//! thread panicked while holding it; like `parking_lot`, we keep going —
//! the protected data is still structurally valid for this workspace's
//! usage, and propagating the panic to unrelated threads helps nobody.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock with `parking_lot`'s signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
