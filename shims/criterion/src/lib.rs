//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the `xybench` benches use — groups, ids,
//! throughput annotation, `iter` / `iter_batched` — over a plain
//! wall-clock loop: a short warm-up, then timed iterations bounded by both
//! the configured sample count and a per-benchmark time budget. No
//! statistics beyond mean/min/max, no HTML reports, no comparison with
//! previous runs. Good enough to (a) keep the benches compiling and
//! runnable offline and (b) give order-of-magnitude numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark time budget (after warm-up).
const TIME_BUDGET: Duration = Duration::from_millis(400);

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_bench(&id.render(), self.sample_size, None, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotate subsequent benchmarks with an input size, so the report
    /// can show a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().render());
        run_bench(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().render());
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Close the group (upstream flushes reports here; we print as we go).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// Only a parameter value (the group name carries the function).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: Some(s.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: Some(s), parameter: None }
    }
}

/// Input-size annotation for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// How much setup output `iter_batched` keeps alive at once (accepted for
/// API compatibility; every batch here is one iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Time `f` repeatedly.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up (untimed).
        black_box(f());
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.budget {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Time `routine` over fresh setup output each iteration; only the
    /// routine is timed.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn run_bench(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { samples: Vec::new(), budget: sample_size.max(1) };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
            let bps = n as f64 / mean.as_secs_f64();
            format!("  {:>10}/s", fmt_bytes(bps))
        }
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            format!("  {:>10.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{name:<50} time: [{} {} {}]{rate}  ({} samples)",
        fmt_dur(*min),
        fmt_dur(mean),
        fmt_dur(*max),
        b.samples.len(),
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
