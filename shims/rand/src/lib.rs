//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`SeedableRng::seed_from_u64`] on
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! splitmix64 — deterministic, seedable, and statistically solid for
//! simulation and property-testing workloads. It is **not** the upstream
//! ChaCha12 `StdRng`, so seeded streams differ from real `rand 0.8`;
//! nothing in this workspace depends on the exact stream, only on
//! determinism per seed.

#![forbid(unsafe_code)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset of upstream's trait we need).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (upstream: provided method; here it is
    /// the only constructor the workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types `gen_range` can sample uniformly. The blanket [`SampleRange`]
/// impls below go through this trait so type inference sees exactly one
/// applicable impl per range type (this is what lets integer-literal
/// fallback resolve `rng.gen_range(0..500)` the way upstream does).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128)
                    .wrapping_sub(lo as i128)
                    .wrapping_add(inclusive as i128) as u128;
                assert!(span > 0, "cannot sample empty range");
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self {
        f64::sample_uniform(lo as f64, hi as f64, inclusive, rng) as f32
    }
}

/// Types that `gen_range` accepts: `a..b` and `a..=b` over [`SampleUniform`]
/// element types.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range. Panics on empty ranges, like
    /// upstream.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing convenience methods, blanket-implemented for every
/// [`RngCore`] exactly as upstream does.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, the recommended seeding procedure.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(42).gen_range(0u64..u64::MAX)
                    == c.gen_range(0u64..u64::MAX)
            })
            .count();
        assert!(same < 100);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..=8);
            assert!((3..=8).contains(&v));
            let w: usize = rng.gen_range(0..5);
            assert!(w < 5);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
