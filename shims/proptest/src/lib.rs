//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the slice of proptest's API that this workspace's test suites use:
//!
//! - the [`Strategy`] trait with `prop_map` and `prop_recursive`;
//! - strategies for integer ranges, regex-like string patterns (a small
//!   subset: classes, `.`, escapes, `{m,n}` repetition), tuples,
//!   `option::of`, `collection::vec`, and `any::<T>()`;
//! - the [`proptest!`] macro with `#![proptest_config(..)]` support and the
//!   `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberately accepted: **no shrinking** (a
//! failing case reports its case number and seed instead — generation is
//! deterministic, so rerunning the test reproduces it), and
//! `*.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::fmt::Debug;

pub mod strategy;
pub use strategy::{BoxedStrategy, Just, Strategy};

/// Everything the test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig, TestCaseError,
    };
}

/// Per-property configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carries the rendered assertion message).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy for the type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// The canonical strategy for `T` (`any::<usize>()` etc.).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                // Bias toward small values the way upstream does, so
                // generated indices land near real collection sizes often
                // enough to exercise the in-bounds paths.
                strategy::from_fn(|rng| {
                    match rng.gen_range(0u32..4) {
                        0 => rng.gen_range(0u64..16) as $t,
                        1 => rng.gen_range(0u64..256) as $t,
                        2 => rng.gen_range(0u64..65536) as $t,
                        _ => (rng.next_u64() as $t),
                    }
                })
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<Self> {
        strategy::from_fn(|rng| rng.gen_bool(0.5))
    }
}

/// `proptest::option::of` — generates `Some` ~75% of the time.
pub mod option {
    use super::*;

    /// Strategy for `Option<S::Value>`.
    pub fn of<S: Strategy + 'static>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S::Value: Debug + 'static,
    {
        strategy::from_fn(move |rng| {
            if rng.gen_bool(0.75) {
                Some(inner.new_value(rng))
            } else {
                None
            }
        })
    }
}

/// `proptest::collection::vec`.
pub mod collection {
    use super::*;

    /// Strategy for vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy + 'static>(
        elem: S,
        size: std::ops::Range<usize>,
    ) -> BoxedStrategy<Vec<S::Value>>
    where
        S::Value: Debug + 'static,
    {
        strategy::from_fn(move |rng| {
            let n = if size.is_empty() { size.start } else { rng.gen_range(size.clone()) };
            (0..n).map(|_| elem.new_value(rng)).collect()
        })
    }
}

/// Equal-weight choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The property-test harness macro. Supports the forms used in this
/// workspace: an optional `#![proptest_config(expr)]` header followed by
/// `fn name(pat in strategy, ...) { body }` items, each already carrying
/// its own `#[test]` attribute (matched as part of the meta list).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    cfg,
                    |__proptest_rng| {
                        $(let $pat = $crate::Strategy::new_value(&$strat, __proptest_rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Run `cfg.cases` deterministic random cases of `f`, panicking with the
/// case number and seed on the first failure.
pub fn run_cases(
    test_name: &str,
    cfg: ProptestConfig,
    mut f: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    use rand::SeedableRng;
    let base = fxhash(test_name);
    for case in 0..cfg.cases as u64 {
        let seed = base ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = f(&mut rng) {
            panic!("property failed at case {case} (seed {seed:#x}) of {test_name}: {e}");
        }
    }
}

fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// `prop_assume!(cond)`: discard the current case when its inputs do not
/// satisfy a precondition. Upstream redraws rejected cases; this stand-in
/// simply skips them (the case still counts toward `cases`), which keeps
/// the macro's contract — a failed assumption never fails the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`: fail the
/// current case without panicking (the harness reports it).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), left
            )));
        }
    }};
}
