//! The [`Strategy`] trait and the concrete strategies the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of random values of one type.
///
/// Upstream proptest strategies also know how to *shrink*; this stand-in
/// only generates (see the crate docs for the rationale).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one random value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive structures: `recurse` receives a strategy for the
    /// shallower levels and returns the strategy for one level up.
    /// `depth` bounds nesting; the other two size hints are accepted for
    /// API compatibility but not used.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            // 3:1 in favor of recursion; the leaf arm (and any empty
            // collection inside `recurse`) keeps generated depth varied.
            cur = union(vec![leaf.clone(), deeper.clone(), deeper.clone(), deeper]).boxed();
        }
        cur
    }

    /// Type-erase into a cloneable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T: Debug>(Arc<dyn Strategy<Value = T>>);

impl<T: Debug> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        self
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value (`Just(x)`), mostly
/// useful as a `prop_oneof!` arm.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Equal-weight choice among `arms` (the engine behind `prop_oneof!`).
pub fn union<T: Debug>(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }
}

/// See [`union`].
pub struct Union<T: Debug> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].new_value(rng)
    }
}

/// A strategy from a plain generation closure.
pub fn from_fn<T, F>(f: F) -> BoxedStrategy<T>
where
    T: Debug + 'static,
    F: Fn(&mut StdRng) -> T + 'static,
{
    FnStrategy(f).boxed()
}

struct FnStrategy<F>(F);

impl<T: Debug, F: Fn(&mut StdRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals are regex-like patterns. The supported subset is what
/// this workspace's tests write: character classes (`[a-z0-9 ]`, with
/// `\`-escapes for `-`, `[`, `]`, `\`), the `.` wildcard (anything but
/// newline, biased toward ASCII), bare literal characters, and one
/// `{n}` / `{m,n}` repetition per atom.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        generate_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        generate_pattern(self, rng)
    }
}

enum Atom {
    /// Any character except `\n`.
    Dot,
    /// Inclusive character ranges (single chars are 1-length ranges).
    Class(Vec<(char, char)>),
}

fn generate_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Dot,
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let Some(c) = chars.next() else {
                        panic!("unterminated character class in pattern {pattern:?}")
                    };
                    let c = match c {
                        ']' => break,
                        '\\' => chars.next().unwrap_or('\\'),
                        c => c,
                    };
                    // `a-z` range (a trailing `-` is a literal).
                    if chars.peek() == Some(&'-')
                        && chars.clone().nth(1).is_some_and(|n| n != ']')
                    {
                        chars.next();
                        let mut hi = chars.next().unwrap();
                        if hi == '\\' {
                            hi = chars.next().unwrap_or('\\');
                        }
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => {
                let e = chars.next().unwrap_or('\\');
                let lit = match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                Atom::Class(vec![(lit, lit)])
            }
            other => Atom::Class(vec![(other, other)]),
        };
        // Optional {n} or {m,n} repetition.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition"),
                    n.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n: usize = spec.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.gen_range(lo..=hi.max(lo));
        for _ in 0..count {
            out.push(gen_char(&atom, rng));
        }
    }
    out
}

fn gen_char(atom: &Atom, rng: &mut StdRng) -> char {
    match atom {
        Atom::Dot => loop {
            // Mostly printable ASCII, sometimes wider Unicode, occasionally
            // control characters — mirrors upstream's bias well enough for
            // the robustness suites.
            let c = match rng.gen_range(0u32..20) {
                0..=15 => char::from_u32(rng.gen_range(0x20u32..0x7F)),
                16 | 17 => char::from_u32(rng.gen_range(0xA0u32..0x2FF)),
                18 => char::from_u32(rng.gen_range(0x370u32..0xFFFD)),
                _ => char::from_u32(rng.gen_range(0u32..0x20)),
            };
            match c {
                Some('\n') | None => continue,
                Some(c) => return c,
            }
        },
        Atom::Class(ranges) => {
            let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
            let mut pick = rng.gen_range(0..total);
            for &(a, b) in ranges {
                let span = b as u32 - a as u32 + 1;
                if pick < span {
                    return char::from_u32(a as u32 + pick)
                        .expect("class range produced invalid char");
                }
                pick -= span;
            }
            unreachable!()
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn class_pattern_stays_in_alphabet() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[a-z0-9 ]{0,6}".new_value(&mut r);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
    }

    #[test]
    fn escaped_class_members_work() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[<>/='\"a-z0-9 &;!\\-\\[\\]?]{1,20}".new_value(&mut r);
            assert!(s.chars().all(|c| "<>/='\"& ;!-[]?".contains(c)
                || c.is_ascii_lowercase()
                || c.is_ascii_digit()), "unexpected char in {s:?}");
        }
    }

    #[test]
    fn dot_never_emits_newline() {
        let mut r = rng();
        for _ in 0..200 {
            let s = ".{0,50}".new_value(&mut r);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn fixed_repetition_is_exact() {
        let mut r = rng();
        let s = "[ab]{4}".new_value(&mut r);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn tuples_and_maps_compose() {
        let mut r = rng();
        let strat = (0usize..4, "[a-z]{1,3}").prop_map(|(n, s)| format!("{n}:{s}"));
        for _ in 0..100 {
            let v = strat.new_value(&mut r);
            let (n, s) = v.split_once(':').unwrap();
            assert!(n.parse::<usize>().unwrap() < 4);
            assert!((1..=3).contains(&s.len()));
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = crate::prop_oneof![(0u8..1).prop_map(|_| T::Leaf)].prop_recursive(
            3,
            16,
            4,
            |inner| crate::collection::vec(inner, 0..4).prop_map(T::Node),
        );
        let mut r = rng();
        let depths: Vec<usize> = (0..200).map(|_| depth(&strat.new_value(&mut r))).collect();
        assert!(depths.iter().all(|&d| d <= 4), "{depths:?}");
        assert!(depths.contains(&0));
        assert!(depths.iter().any(|&d| d >= 2));
    }
}
