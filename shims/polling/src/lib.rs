//! Offline stand-in for the `polling` crate.
//!
//! Portable readiness polling with **oneshot** semantics, exactly the
//! subset `xynet`'s reactor uses: register a socket with a `key`, wait for
//! readiness events, and re-arm with [`Poller::modify`] after each
//! delivery (like the real crate, a delivered source stays dormant until
//! re-armed). [`Poller::notify`] wakes a blocked [`Poller::wait`] from any
//! thread.
//!
//! Two backends, both over raw syscalls declared here (the environment has
//! no registry access, so no `libc` crate either):
//!
//! - **epoll** (Linux, default): `epoll_create1` + `EPOLLONESHOT`, woken
//!   by an `eventfd`.
//! - **poll(2)** (portable fallback): a `poll` sweep over the registered
//!   descriptor set, woken by a self-pipe. Forced with
//!   `XYPOLL_BACKEND=poll` so CI exercises it on Linux too.
//!
//! This file is the one place in the workspace allowed to contain `unsafe`
//! (every `crates/*` root keeps `#![forbid(unsafe_code)]`, enforced by
//! xylint L3); each unsafe block is a direct FFI call with its argument
//! validity argued on the spot.

use std::collections::HashMap;
use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

/// Raw syscall declarations: the tiny slice of the platform libc this shim
/// needs. Signatures match the Linux ABI (the only target this workspace
/// builds on; `poll`/`pipe`/`fcntl` are POSIX-portable regardless).
mod sys {
    use std::os::raw::{c_int, c_uint, c_ulong, c_void};

    /// Linux `struct epoll_event`; packed on x86 so the layout matches the
    /// kernel ABI.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// POSIX `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLONESHOT: u32 = 1 << 30;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// The key reserved for [`Poller::notify`] wake-ups; sources must not use it.
pub const NOTIFY_KEY: usize = usize::MAX;

/// A readiness interest or delivered readiness event for one source,
/// identified by the caller-chosen `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier registered with [`Poller::add`].
    pub key: usize,
    /// Interested in / ready for reading. Errors and hang-ups are
    /// delivered as readable **and** writable, like the real crate.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event { key, readable: false, writable: true }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event { key, readable: true, writable: true }
    }

    /// No interest: keeps the source registered but dormant.
    pub fn none(key: usize) -> Event {
        Event { key, readable: false, writable: false }
    }
}

/// A reusable buffer of delivered [`Event`]s.
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty buffer.
    pub fn new() -> Events {
        Events::default()
    }

    /// Iterate over the events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Number of delivered events.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no events were delivered.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Discard all events (done automatically by [`Poller::wait`]).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

/// An owned file descriptor closed on drop.
#[derive(Debug)]
struct OwnedFd(RawFd);

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // One close of a descriptor this struct exclusively owns.
        unsafe { sys::close(self.0) };
    }
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            // Round sub-millisecond timeouts up so `Some(tiny)` cannot spin.
            let ms = if ms == 0 && d.as_nanos() > 0 { 1 } else { ms };
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

/// Per-source registration state for the poll(2) backend.
#[derive(Debug, Clone, Copy)]
struct Reg {
    key: usize,
    readable: bool,
    writable: bool,
}

enum Backend {
    /// Linux epoll: the kernel owns the interest set; `EPOLLONESHOT`
    /// implements the disarm-on-delivery contract.
    Epoll { epfd: OwnedFd, event_fd: OwnedFd },
    /// Portable poll(2): the interest set lives here and is swept on every
    /// wait; delivery disarms the source in the map.
    Poll { regs: Mutex<HashMap<RawFd, Reg>>, pipe_read: OwnedFd, pipe_write: OwnedFd },
}

/// An oneshot readiness poller over sockets (and anything else with a file
/// descriptor).
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Create a poller: epoll on Linux, poll(2) elsewhere or when the
    /// `XYPOLL_BACKEND=poll` environment variable forces the fallback.
    pub fn new() -> io::Result<Poller> {
        let force_poll = std::env::var("XYPOLL_BACKEND").is_ok_and(|v| v == "poll");
        if cfg!(target_os = "linux") && !force_poll {
            Poller::with_epoll()
        } else {
            Poller::with_poll()
        }
    }

    /// Create an epoll-backed poller explicitly (Linux only).
    pub fn with_epoll() -> io::Result<Poller> {
        // Plain FFI calls; no pointers passed.
        let epfd = OwnedFd(cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?);
        let event_fd =
            OwnedFd(cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?);
        // The eventfd is level-triggered and permanently armed so a notify
        // is never lost between waits.
        let mut ev = sys::EpollEvent { events: sys::EPOLLIN, data: NOTIFY_KEY as u64 };
        // `ev` is a live stack value for the duration of the call.
        cvt(unsafe { sys::epoll_ctl(epfd.0, sys::EPOLL_CTL_ADD, event_fd.0, &mut ev) })?;
        Ok(Poller { backend: Backend::Epoll { epfd, event_fd } })
    }

    /// Create a poll(2)-backed poller explicitly.
    pub fn with_poll() -> io::Result<Poller> {
        let mut fds = [0i32; 2];
        // `fds` is a live 2-element array, exactly what pipe() writes.
        cvt(unsafe { sys::pipe(fds.as_mut_ptr()) })?;
        let (pipe_read, pipe_write) = (OwnedFd(fds[0]), OwnedFd(fds[1]));
        for fd in [pipe_read.0, pipe_write.0] {
            // Plain FFI calls on descriptors we just created.
            let flags = cvt(unsafe { sys::fcntl(fd, sys::F_GETFL, 0) })?;
            cvt(unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) })?;
        }
        Ok(Poller {
            backend: Backend::Poll { regs: Mutex::new(HashMap::new()), pipe_read, pipe_write },
        })
    }

    /// The active backend, for banners and tests: `"epoll"` or `"poll"`.
    pub fn backend(&self) -> &'static str {
        match &self.backend {
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        }
    }

    /// Register `source` with the given interest. Delivery disarms the
    /// source: re-arm with [`Poller::modify`]. The key must not be
    /// [`NOTIFY_KEY`].
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "NOTIFY_KEY is reserved"));
        }
        let fd = source.as_raw_fd();
        match &self.backend {
            Backend::Epoll { epfd, .. } => {
                let mut ev = epoll_interest(interest);
                // `ev` is a live stack value for the duration of the call;
                // the caller guarantees `fd` is open (it borrows the source).
                cvt(unsafe { sys::epoll_ctl(epfd.0, sys::EPOLL_CTL_ADD, fd, &mut ev) })?;
                Ok(())
            }
            Backend::Poll { regs, .. } => {
                let mut regs = regs.lock().unwrap_or_else(|e| e.into_inner());
                if regs.contains_key(&fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "descriptor already registered",
                    ));
                }
                regs.insert(
                    fd,
                    Reg { key: interest.key, readable: interest.readable, writable: interest.writable },
                );
                Ok(())
            }
        }
    }

    /// Replace the interest set of an already-registered source (the
    /// re-arm operation of the oneshot contract).
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "NOTIFY_KEY is reserved"));
        }
        let fd = source.as_raw_fd();
        match &self.backend {
            Backend::Epoll { epfd, .. } => {
                let mut ev = epoll_interest(interest);
                // `ev` is a live stack value for the duration of the call;
                // the caller guarantees `fd` is open (it borrows the source).
                cvt(unsafe { sys::epoll_ctl(epfd.0, sys::EPOLL_CTL_MOD, fd, &mut ev) })?;
                Ok(())
            }
            Backend::Poll { regs, .. } => {
                let mut regs = regs.lock().unwrap_or_else(|e| e.into_inner());
                match regs.get_mut(&fd) {
                    Some(reg) => {
                        *reg = Reg {
                            key: interest.key,
                            readable: interest.readable,
                            writable: interest.writable,
                        };
                        Ok(())
                    }
                    None => Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        "descriptor is not registered",
                    )),
                }
            }
        }
    }

    /// Remove a source from the poller. Call before closing the descriptor.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &self.backend {
            Backend::Epoll { epfd, .. } => {
                // Plain FFI call; a null event pointer is allowed for DEL
                // on every kernel this workspace targets (>= 2.6.9).
                cvt(unsafe {
                    sys::epoll_ctl(epfd.0, sys::EPOLL_CTL_DEL, fd, std::ptr::null_mut())
                })?;
                Ok(())
            }
            Backend::Poll { regs, .. } => {
                regs.lock().unwrap_or_else(|e| e.into_inner()).remove(&fd);
                Ok(())
            }
        }
    }

    /// Block until at least one source is ready, the timeout elapses, or
    /// [`Poller::notify`] is called. Returns the number of events
    /// delivered into `events` (cleared first). Interrupted waits return
    /// `Ok(0)`.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        match &self.backend {
            Backend::Epoll { epfd, event_fd } => {
                let mut raw = [sys::EpollEvent { events: 0, data: 0 }; 256];
                // `raw` is a live buffer of exactly the advertised length.
                let n = unsafe {
                    sys::epoll_wait(epfd.0, raw.as_mut_ptr(), raw.len() as i32, timeout_ms(timeout))
                };
                let n = match cvt(n) {
                    Ok(n) => n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
                for ev in &raw[..n] {
                    let (bits, key) = (ev.events, ev.data as usize);
                    if key == NOTIFY_KEY {
                        drain_fd(event_fd.0);
                        continue;
                    }
                    events.inner.push(Event {
                        key,
                        readable: bits
                            & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP)
                            != 0,
                        writable: bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
                    });
                }
                Ok(events.inner.len())
            }
            Backend::Poll { regs, pipe_read, .. } => {
                // Snapshot the armed subset; the notify pipe is always slot 0.
                let mut fds = vec![sys::PollFd { fd: pipe_read.0, events: sys::POLLIN, revents: 0 }];
                {
                    let regs = regs.lock().unwrap_or_else(|e| e.into_inner());
                    for (fd, reg) in regs.iter() {
                        let mut bits = 0i16;
                        if reg.readable {
                            bits |= sys::POLLIN;
                        }
                        if reg.writable {
                            bits |= sys::POLLOUT;
                        }
                        if bits != 0 {
                            fds.push(sys::PollFd { fd: *fd, events: bits, revents: 0 });
                        }
                    }
                }
                // `fds` is a live vec of exactly the advertised length.
                let n = unsafe {
                    sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout))
                };
                match cvt(n) {
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(0),
                    Err(e) => return Err(e),
                }
                let mut regs = regs.lock().unwrap_or_else(|e| e.into_inner());
                for pfd in &fds {
                    if pfd.revents == 0 {
                        continue;
                    }
                    if pfd.fd == pipe_read.0 {
                        drain_fd(pipe_read.0);
                        continue;
                    }
                    let Some(reg) = regs.get_mut(&pfd.fd) else {
                        continue; // deleted concurrently
                    };
                    let err = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
                    events.inner.push(Event {
                        key: reg.key,
                        readable: pfd.revents & sys::POLLIN != 0 || err,
                        writable: pfd.revents & sys::POLLOUT != 0 || err,
                    });
                    // Oneshot: dormant until the caller re-arms via modify.
                    reg.readable = false;
                    reg.writable = false;
                }
                Ok(events.inner.len())
            }
        }
    }

    /// Wake the current (or next) [`Poller::wait`] from any thread.
    pub fn notify(&self) -> io::Result<()> {
        let fd = match &self.backend {
            Backend::Epoll { event_fd, .. } => event_fd.0,
            Backend::Poll { pipe_write, .. } => pipe_write.0,
        };
        let one: u64 = 1;
        // An 8-byte write satisfies both an eventfd (which requires exactly
        // 8 bytes) and a pipe; a full pipe (EAGAIN) already has a wake-up
        // pending, which is all notify promises.
        let ret = unsafe { sys::write(fd, (&raw const one).cast(), 8) };
        if ret < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(e);
        }
        Ok(())
    }
}

/// Read a wake-up fd until empty (both eventfd and pipe are non-blocking).
fn drain_fd(fd: RawFd) {
    let mut buf = [0u8; 64];
    loop {
        // `buf` is a live buffer of exactly the advertised length.
        let n = unsafe { sys::read(fd, buf.as_mut_ptr().cast(), buf.len()) };
        if n <= 0 {
            return;
        }
    }
}

fn epoll_interest(interest: Event) -> sys::EpollEvent {
    let mut bits = sys::EPOLLONESHOT | sys::EPOLLRDHUP;
    if interest.readable {
        bits |= sys::EPOLLIN;
    }
    if interest.writable {
        bits |= sys::EPOLLOUT;
    }
    sys::EpollEvent { events: bits, data: interest.key as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn backends() -> Vec<Poller> {
        vec![Poller::with_epoll().unwrap(), Poller::with_poll().unwrap()]
    }

    #[test]
    fn readable_event_is_oneshot_until_rearmed() {
        for poller in backends() {
            let (mut client, server) = pair();
            server.set_nonblocking(true).unwrap();
            poller.add(&server, Event::readable(7)).unwrap();

            let mut events = Events::new();
            assert_eq!(
                poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(),
                0,
                "{}: no data yet",
                poller.backend()
            );

            client.write_all(b"x").unwrap();
            assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
            let ev = events.iter().next().unwrap();
            assert_eq!(ev.key, 7);
            assert!(ev.readable);

            // Oneshot: without a re-arm the still-unread byte reports nothing.
            assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
            poller.modify(&server, Event::readable(7)).unwrap();
            assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
            poller.delete(&server).unwrap();
        }
    }

    #[test]
    fn writable_and_hangup_are_reported() {
        for poller in backends() {
            let (client, mut server) = pair();
            server.set_nonblocking(true).unwrap();
            poller.add(&server, Event::writable(3)).unwrap();
            let mut events = Events::new();
            assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
            assert!(events.iter().next().unwrap().writable, "{}", poller.backend());

            drop(client);
            poller.modify(&server, Event::readable(3)).unwrap();
            assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
            let ev = events.iter().next().unwrap();
            assert!(ev.readable, "hang-up must deliver readable: {ev:?}");
            let mut buf = [0u8; 8];
            assert_eq!(server.read(&mut buf).unwrap(), 0, "read observes EOF");
            poller.delete(&server).unwrap();
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait_from_another_thread() {
        for poller in backends() {
            let poller = std::sync::Arc::new(poller);
            let waker = std::sync::Arc::clone(&poller);
            let t = Instant::now();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.notify().unwrap();
            });
            let mut events = Events::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
            assert_eq!(n, 0, "notify delivers no source event");
            assert!(t.elapsed() < Duration::from_secs(5), "woke early via notify");
            handle.join().unwrap();

            // A notify with no waiter wakes the next wait immediately.
            poller.notify().unwrap();
            let t = Instant::now();
            poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
            assert!(t.elapsed() < Duration::from_secs(5));
        }
    }

    #[test]
    fn reserved_key_is_rejected() {
        for poller in backends() {
            let (_client, server) = pair();
            let err = poller.add(&server, Event::readable(NOTIFY_KEY)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{}", poller.backend());
        }
    }
}
